"""Setup shim: enables `python setup.py develop` and legacy editable
installs in offline environments lacking the `wheel` package."""
from setuptools import setup

setup()
