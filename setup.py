"""Legacy shim for offline environments lacking ``wheel``: enables
``python setup.py develop``.  All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
