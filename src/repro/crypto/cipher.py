"""Symmetric ciphers for the CFS baseline and the IPsec-like channel.

CFS (Blaze, 1993) encrypted file contents with DES in a two-pass OFB/ECB
construction; our reproduction needs *a* cipher with the same structural
properties (deterministic per-block encryption keyed by a per-file key and
block offset), not DES itself.  We provide:

* :class:`StreamCipher` — a ChaCha20-style ARX stream cipher used by the
  secure channel (seekable keystream, nonce + counter),
* :class:`BlockCipher` — a small 16-round Feistel block cipher (128-bit
  blocks) with ECB/CBC helpers used by the CFS encryption layer, where
  random access to file blocks requires position-keyed encryption.

Reproduction-grade: structurally faithful and fully tested, not an audited
primitive.
"""

from __future__ import annotations

import hashlib
import struct

from repro.errors import CryptoError

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _rotl32(v: int, c: int) -> int:
    return ((v << c) & _MASK32) | (v >> (32 - c))


class StreamCipher:
    """ChaCha20-style stream cipher with a seekable keystream.

    The keystream is generated in 64-byte blocks from (key, nonce, counter),
    so records can be encrypted/decrypted independently — exactly what the
    ESP-like record layer needs.
    """

    BLOCK = 64

    def __init__(self, key: bytes, nonce: bytes):
        if len(key) != 32:
            raise CryptoError("StreamCipher requires a 32-byte key")
        if len(nonce) != 12:
            raise CryptoError("StreamCipher requires a 12-byte nonce")
        self._key_words = struct.unpack("<8I", key)
        self._nonce_words = struct.unpack("<3I", nonce)

    def _block(self, counter: int) -> bytes:
        constants = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
        state = list(constants + self._key_words + (counter & _MASK32,) + self._nonce_words)
        working = state[:]

        def quarter(a: int, b: int, c: int, d: int) -> None:
            working[a] = (working[a] + working[b]) & _MASK32
            working[d] = _rotl32(working[d] ^ working[a], 16)
            working[c] = (working[c] + working[d]) & _MASK32
            working[b] = _rotl32(working[b] ^ working[c], 12)
            working[a] = (working[a] + working[b]) & _MASK32
            working[d] = _rotl32(working[d] ^ working[a], 8)
            working[c] = (working[c] + working[d]) & _MASK32
            working[b] = _rotl32(working[b] ^ working[c], 7)

        for _ in range(10):  # 20 rounds = 10 double rounds
            quarter(0, 4, 8, 12)
            quarter(1, 5, 9, 13)
            quarter(2, 6, 10, 14)
            quarter(3, 7, 11, 15)
            quarter(0, 5, 10, 15)
            quarter(1, 6, 11, 12)
            quarter(2, 7, 8, 13)
            quarter(3, 4, 9, 14)

        out = [(working[i] + state[i]) & _MASK32 for i in range(16)]
        return struct.pack("<16I", *out)

    def keystream(self, offset: int, length: int) -> bytes:
        """Keystream bytes [offset, offset+length) — supports random access."""
        first_block = offset // self.BLOCK
        last_block = (offset + length + self.BLOCK - 1) // self.BLOCK
        chunks = [self._block(c) for c in range(first_block, last_block)]
        stream = b"".join(chunks)
        start = offset - first_block * self.BLOCK
        return stream[start : start + length]

    def process(self, data: bytes, offset: int = 0) -> bytes:
        """Encrypt or decrypt ``data`` positioned at ``offset`` (XOR cipher)."""
        ks = self.keystream(offset, len(data))
        return bytes(a ^ b for a, b in zip(data, ks))


class BlockCipher:
    """A 16-round Feistel cipher on 128-bit blocks with SHA-256 round function.

    Luby-Rackoff tells us >=4 Feistel rounds with a strong PRF yield a strong
    pseudorandom permutation; we use 16.  Slow (Python + hashing per round)
    but only the CFS *encrypting* baseline pays for it — CFS-NE and DisCFS
    never touch it, matching the paper's configuration.
    """

    BLOCK = 16
    ROUNDS = 16

    def __init__(self, key: bytes):
        if len(key) < 16:
            raise CryptoError("BlockCipher requires a key of at least 16 bytes")
        self._round_keys = [
            hashlib.sha256(key + bytes([r])).digest() for r in range(self.ROUNDS)
        ]

    def _round(self, r: int, half: bytes) -> bytes:
        return hashlib.sha256(self._round_keys[r] + half).digest()[:8]

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != self.BLOCK:
            raise CryptoError(f"block must be {self.BLOCK} bytes")
        left, right = block[:8], block[8:]
        for r in range(self.ROUNDS):
            left, right = right, bytes(
                a ^ b for a, b in zip(left, self._round(r, right))
            )
        return right + left  # final swap

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != self.BLOCK:
            raise CryptoError(f"block must be {self.BLOCK} bytes")
        # Undo the final swap, then run the rounds backwards.
        right, left = block[:8], block[8:]
        for r in reversed(range(self.ROUNDS)):
            left, right = bytes(
                a ^ b for a, b in zip(right, self._round(r, left))
            ), left
        return left + right

    def encrypt_cbc(self, data: bytes, iv: bytes) -> bytes:
        """CBC-encrypt ``data`` (must be block-aligned)."""
        if len(data) % self.BLOCK:
            raise CryptoError("CBC input must be block-aligned")
        if len(iv) != self.BLOCK:
            raise CryptoError("IV must be one block")
        out = bytearray()
        prev = iv
        for i in range(0, len(data), self.BLOCK):
            block = bytes(a ^ b for a, b in zip(data[i : i + self.BLOCK], prev))
            enc = self.encrypt_block(block)
            out += enc
            prev = enc
        return bytes(out)

    def decrypt_cbc(self, data: bytes, iv: bytes) -> bytes:
        if len(data) % self.BLOCK:
            raise CryptoError("CBC input must be block-aligned")
        if len(iv) != self.BLOCK:
            raise CryptoError("IV must be one block")
        out = bytearray()
        prev = iv
        for i in range(0, len(data), self.BLOCK):
            enc = data[i : i + self.BLOCK]
            dec = self.decrypt_block(enc)
            out += bytes(a ^ b for a, b in zip(dec, prev))
            prev = enc
        return bytes(out)


def derive_key(*parts: bytes, length: int = 32, label: bytes = b"repro-kdf-v1") -> bytes:
    """Simple KDF: SHA-256 in counter mode over label || parts."""
    material = label + b"".join(len(p).to_bytes(4, "big") + p for p in parts)
    out = b""
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(material + counter.to_bytes(4, "big")).digest()
        counter += 1
    return out[:length]
