"""KeyNote key and signature encodings.

RFC 2704 represents principals as ``ALGORITHM:ENCODED_BITS`` strings, e.g.::

    "dsa-hex:3081de0240503ca3..."
    "rsa-base64:MIGfMA0GCSqGSIb3..."

and signatures as ``sig-ALGORITHM-HASH-ENCODING:...``, e.g.
``sig-dsa-sha1-hex:302e0215...`` (paper Figure 5 shows both forms).

The original implementation carried ASN.1 DER blobs.  We use a simple
self-describing integer-sequence encoding (length-prefixed big-endian
integers) inside the hex/base64 payload; the *external* identifier syntax —
which is what KeyNote parsing, principal comparison and the paper's
credentials depend on — matches RFC 2704.
"""

from __future__ import annotations

import base64
import binascii

from repro.crypto.dsa import DSAKeyPair, DSAParameters, DSAPublicKey
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey
from repro.errors import InvalidKey, InvalidSignature

__all__ = [
    "encode_public_key",
    "encode_private_key",
    "decode_key",
    "encode_signature",
    "decode_signature",
    "is_key_identifier",
    "signature_scheme",
]


def _pack_ints(values: list[int]) -> bytes:
    """Length-prefixed big-endian integer sequence."""
    out = bytearray()
    for v in values:
        if v < 0:
            raise InvalidKey("cannot encode negative integer")
        raw = v.to_bytes(max(1, (v.bit_length() + 7) // 8), "big")
        out += len(raw).to_bytes(4, "big")
        out += raw
    return bytes(out)


def _unpack_ints(data: bytes) -> list[int]:
    values = []
    pos = 0
    while pos < len(data):
        if pos + 4 > len(data):
            raise InvalidKey("truncated integer sequence")
        length = int.from_bytes(data[pos : pos + 4], "big")
        pos += 4
        if pos + length > len(data):
            raise InvalidKey("truncated integer sequence")
        values.append(int.from_bytes(data[pos : pos + length], "big"))
        pos += length
    return values


def _encode_payload(raw: bytes, encoding: str) -> str:
    if encoding == "hex":
        return raw.hex()
    if encoding == "base64":
        return base64.b64encode(raw).decode("ascii")
    raise InvalidKey(f"unsupported encoding: {encoding!r}")


def _decode_payload(payload: str, encoding: str) -> bytes:
    try:
        if encoding == "hex":
            return bytes.fromhex(payload)
        if encoding == "base64":
            return base64.b64decode(payload.encode("ascii"), validate=True)
    except (ValueError, binascii.Error) as exc:
        raise InvalidKey(f"malformed {encoding} payload") from exc
    raise InvalidKey(f"unsupported encoding: {encoding!r}")


# Payload type tags distinguishing public and private key material.
_TAG_DSA_PUB = 1
_TAG_DSA_PRIV = 2
_TAG_RSA_PUB = 3
_TAG_RSA_PRIV = 4


def encode_public_key(key: DSAPublicKey | DSAKeyPair | RSAPublicKey | RSAKeyPair,
                      encoding: str = "hex") -> str:
    """Encode a public key as a KeyNote principal identifier.

    Key pairs are accepted and their public half is encoded.
    """
    if isinstance(key, DSAKeyPair):
        key = key.public
    if isinstance(key, RSAKeyPair):
        key = key.public
    if isinstance(key, DSAPublicKey):
        raw = _pack_ints([_TAG_DSA_PUB, key.params.p, key.params.q, key.params.g, key.y])
        return f"dsa-{encoding}:{_encode_payload(raw, encoding)}"
    if isinstance(key, RSAPublicKey):
        raw = _pack_ints([_TAG_RSA_PUB, key.n, key.e])
        return f"rsa-{encoding}:{_encode_payload(raw, encoding)}"
    raise InvalidKey(f"cannot encode object of type {type(key).__name__}")


def encode_private_key(key: DSAKeyPair | RSAKeyPair, encoding: str = "hex") -> str:
    """Encode a private key (for key files used by clients/examples)."""
    if isinstance(key, DSAKeyPair):
        raw = _pack_ints(
            [_TAG_DSA_PRIV, key.params.p, key.params.q, key.params.g, key.x, key.y]
        )
        return f"dsa-{encoding}:{_encode_payload(raw, encoding)}"
    if isinstance(key, RSAKeyPair):
        raw = _pack_ints([_TAG_RSA_PRIV, key.n, key.e, key.d, key.p, key.q])
        return f"rsa-{encoding}:{_encode_payload(raw, encoding)}"
    raise InvalidKey(f"cannot encode object of type {type(key).__name__}")


def decode_key(identifier: str):
    """Decode a KeyNote key identifier to a key object.

    Returns a public key or key pair depending on the payload tag.
    """
    identifier = identifier.strip()
    if ":" not in identifier:
        raise InvalidKey(f"not a key identifier: {identifier!r}")
    algo_enc, payload = identifier.split(":", 1)
    parts = algo_enc.lower().split("-")
    if len(parts) != 2:
        raise InvalidKey(f"malformed key algorithm: {algo_enc!r}")
    algorithm, encoding = parts
    raw = _decode_payload(payload, encoding)
    values = _unpack_ints(raw)
    if not values:
        raise InvalidKey("empty key payload")
    tag, rest = values[0], values[1:]
    if algorithm == "dsa" and tag == _TAG_DSA_PUB and len(rest) == 4:
        p, q, g, y = rest
        return DSAPublicKey(params=DSAParameters(p=p, q=q, g=g), y=y)
    if algorithm == "dsa" and tag == _TAG_DSA_PRIV and len(rest) == 5:
        p, q, g, x, y = rest
        return DSAKeyPair(params=DSAParameters(p=p, q=q, g=g), x=x, y=y)
    if algorithm == "rsa" and tag == _TAG_RSA_PUB and len(rest) == 2:
        n, e = rest
        return RSAPublicKey(n=n, e=e)
    if algorithm == "rsa" and tag == _TAG_RSA_PRIV and len(rest) == 5:
        n, e, d, p, q = rest
        return RSAKeyPair(n=n, e=e, d=d, p=p, q=q)
    raise InvalidKey(f"key payload does not match algorithm {algorithm!r}")


def is_key_identifier(text: str) -> bool:
    """True if ``text`` looks like an ``algo-encoding:payload`` principal.

    KeyNote distinguishes keys from opaque principal names by this syntax.
    """
    if ":" not in text:
        return False
    prefix = text.split(":", 1)[0].lower()
    parts = prefix.split("-")
    return len(parts) == 2 and parts[0] in ("dsa", "rsa") and parts[1] in ("hex", "base64")


def encode_signature(algorithm: str, hash_name: str, signature, encoding: str = "hex") -> str:
    """Encode a signature value as ``sig-ALGO-HASH-ENC:payload``."""
    if algorithm == "dsa":
        r, s = signature
        raw = _pack_ints([r, s])
    elif algorithm == "rsa":
        raw = _pack_ints([int(signature)])
    else:
        raise InvalidSignature(f"unsupported signature algorithm: {algorithm!r}")
    return f"sig-{algorithm}-{hash_name}-{encoding}:{_encode_payload(raw, encoding)}"


def signature_scheme(identifier: str) -> tuple[str, str, str]:
    """Split ``sig-ALGO-HASH-ENC:...`` into (algorithm, hash, encoding)."""
    if ":" not in identifier:
        raise InvalidSignature(f"not a signature identifier: {identifier!r}")
    prefix = identifier.split(":", 1)[0].lower()
    parts = prefix.split("-")
    if len(parts) != 4 or parts[0] != "sig":
        raise InvalidSignature(f"malformed signature scheme: {prefix!r}")
    return parts[1], parts[2], parts[3]


def decode_signature(identifier: str):
    """Decode a signature identifier to its numeric value(s).

    All malformations raise :class:`InvalidSignature` (never InvalidKey),
    so signature-verification paths need only one except clause.
    """
    algorithm, _hash, encoding = signature_scheme(identifier)
    payload = identifier.split(":", 1)[1]
    try:
        raw = _decode_payload(payload, encoding)
        values = _unpack_ints(raw)
    except InvalidKey as exc:
        raise InvalidSignature(f"malformed signature payload: {exc}") from exc
    if algorithm == "dsa":
        if len(values) != 2:
            raise InvalidSignature("DSA signature must contain (r, s)")
        return (values[0], values[1])
    if algorithm == "rsa":
        if len(values) != 1:
            raise InvalidSignature("RSA signature must contain one integer")
        return values[0]
    raise InvalidSignature(f"unsupported signature algorithm: {algorithm!r}")
