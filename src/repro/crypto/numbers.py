"""Number-theoretic helpers: primality testing and prime generation.

Everything here is deterministic given the supplied random source, which
keeps key generation reproducible in tests (pass a seeded ``random.Random``
or an ``int``-returning callable).
"""

from __future__ import annotations

import hashlib
import secrets
from typing import Callable

# Small primes used for fast trial division before Miller-Rabin.
_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293,
)

RandomBits = Callable[[int], int]


def default_random_bits(bits: int) -> int:
    """Return a uniformly random integer with at most ``bits`` bits."""
    return secrets.randbits(bits)


def seeded_random_bits(seed: bytes) -> RandomBits:
    """Deterministic bit source derived from ``seed`` via SHA-256 in counter mode.

    Used for reproducible key generation in tests and examples.
    """
    counter = 0

    def rand(bits: int) -> int:
        nonlocal counter
        out = b""
        nbytes = (bits + 7) // 8
        while len(out) < nbytes:
            out += hashlib.sha256(seed + counter.to_bytes(8, "big")).digest()
            counter += 1
        value = int.from_bytes(out[:nbytes], "big")
        excess = nbytes * 8 - bits
        return value >> excess

    return rand


def is_probable_prime(n: int, rounds: int = 40, rand: RandomBits = default_random_bits) -> bool:
    """Miller-Rabin primality test with trial division pre-filter."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + rand(n.bit_length()) % (n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rand: RandomBits = default_random_bits) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size must be at least 8 bits")
    while True:
        candidate = rand(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate, rand=rand):
            return candidate


def generate_safe_prime(bits: int, rand: RandomBits = default_random_bits) -> int:
    """Generate a safe prime p (p = 2q + 1 with q prime)."""
    while True:
        q = generate_prime(bits - 1, rand=rand)
        p = 2 * q + 1
        if is_probable_prime(p, rand=rand):
            return p


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` mod ``m``; raises ValueError if not invertible."""
    try:
        return pow(a, -1, m)
    except ValueError as exc:  # pragma: no cover - message normalization
        raise ValueError(f"{a} is not invertible modulo {m}") from exc


def bytes_to_int(data: bytes) -> int:
    return int.from_bytes(data, "big")


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Big-endian encoding; minimal length unless ``length`` is given."""
    if value < 0:
        raise ValueError("cannot encode negative integer")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")
