"""DSA signatures (FIPS 186) in pure Python.

DisCFS credentials identify principals by DSA public keys (``dsa-hex:...``)
and are signed with ``sig-dsa-sha1-hex:...`` signatures (paper Figure 5).

Design notes
------------
* Domain parameters: generating (p, q) from scratch is slow in Python, so a
  precomputed 1024/160-bit parameter set is provided
  (:data:`DEFAULT_PARAMETERS`).  Custom parameters can be generated with
  :func:`generate_parameters` when reproducibility across parameter sets is
  being tested.
* Nonces are derived deterministically from (private key, message digest)
  in the spirit of RFC 6979, which makes signatures reproducible and
  removes the catastrophic repeated-k failure mode.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto import numbers
from repro.crypto.hashes import digest
from repro.crypto.numbers import RandomBits, default_random_bits
from repro.errors import InvalidKey, InvalidSignature


@dataclass(frozen=True)
class DSAParameters:
    """DSA domain parameters (p, q, g)."""

    p: int
    q: int
    g: int

    def validate(self) -> None:
        if (self.p - 1) % self.q != 0:
            raise InvalidKey("q does not divide p-1")
        if not 1 < self.g < self.p:
            raise InvalidKey("generator out of range")
        if pow(self.g, self.q, self.p) != 1:
            raise InvalidKey("generator does not have order q")


# A fixed, verified 1024/160-bit parameter set (generated once with this
# module's generate_parameters and checked by validate() in the tests).
# Using fixed parameters mirrors common practice (openssl dsaparam reuse)
# and keeps key generation fast.
DEFAULT_PARAMETERS = DSAParameters(
    p=int(
        "818bb68a58223fcde658b748a3295dc39963446957efb856624f6654a9dcbb1d"
        "39251bdfa4e23d5ba1ca9e6a6ba88f97aa87dec589d9ba021ed3eb09facacd9b"
        "0087030e96f9029c33e1e40ecf03ce83980f3724c9627ebe15f8bf922cb107cf"
        "d68693d83b89f68bd98034c7cb191e74a24f661ab166ef03623618081586d0d1",
        16,
    ),
    q=int("87cf54a65faf0baf25d60265b77b9fc34d753c71", 16),
    g=int(
        "4103afb25cf72a9c79592b57f58b324c72e006c5756daed8a8878e81a83f3f6b"
        "041ddc5be10a6d78d85c890db29948d7a039ac5a05b254cea38bb3222b9a07b0"
        "ffad721f98d59128f8f5899d35129b14419ea686d877882028f9ed8374e2e48d"
        "7b198c4b41cf54d6f9d316781ef7b3432f3e0e1af6706dde78ebe561bb687909",
        16,
    ),
)


def generate_parameters(
    pbits: int = 1024, qbits: int = 160, rand: RandomBits = default_random_bits
) -> DSAParameters:
    """Generate fresh DSA domain parameters.

    Slow for 1024-bit p in pure Python (seconds); intended for offline use
    and for tests that exercise non-default parameter sets at small sizes.
    """
    q = numbers.generate_prime(qbits, rand=rand)
    # Find p = k*q + 1 prime with the requested size.
    while True:
        k = rand(pbits - qbits) | (1 << (pbits - qbits - 1))
        p = k * q + 1
        if p.bit_length() == pbits and numbers.is_probable_prime(p, rand=rand):
            break
    # Generator of the order-q subgroup.
    while True:
        h = 2 + rand(pbits) % (p - 3)
        g = pow(h, (p - 1) // q, p)
        if g > 1:
            params = DSAParameters(p=p, q=q, g=g)
            params.validate()
            return params


@dataclass(frozen=True)
class DSAPublicKey:
    """A DSA public key: y = g^x mod p."""

    params: DSAParameters
    y: int

    algorithm = "dsa"

    def verify(self, message: bytes, signature: tuple[int, int], hash_name: str = "sha1") -> None:
        """Verify ``signature`` over ``message``; raise InvalidSignature on failure."""
        p, q, g = self.params.p, self.params.q, self.params.g
        r, s = signature
        if not (0 < r < q and 0 < s < q):
            raise InvalidSignature("signature components out of range")
        h = _truncated_digest(hash_name, message, q)
        w = numbers.modinv(s, q)
        u1 = (h * w) % q
        u2 = (r * w) % q
        v = ((pow(g, u1, p) * pow(self.y, u2, p)) % p) % q
        if v != r:
            raise InvalidSignature("DSA signature mismatch")

    def fingerprint(self) -> str:
        """Short stable identifier used in logs and revocation lists."""
        material = f"{self.params.p:x}:{self.params.q:x}:{self.params.g:x}:{self.y:x}"
        return hashlib.sha256(material.encode("ascii")).hexdigest()[:16]


@dataclass(frozen=True)
class DSAKeyPair:
    """A DSA private/public key pair."""

    params: DSAParameters
    x: int
    y: int

    algorithm = "dsa"

    @property
    def public(self) -> DSAPublicKey:
        return DSAPublicKey(params=self.params, y=self.y)

    def sign(self, message: bytes, hash_name: str = "sha1") -> tuple[int, int]:
        """Sign ``message``, returning (r, s).

        The nonce k is derived deterministically from (x, digest) so equal
        inputs produce equal signatures — convenient for tests and safe
        against nonce reuse across distinct messages.
        """
        p, q, g = self.params.p, self.params.q, self.params.g
        h = _truncated_digest(hash_name, message, q)
        counter = 0
        while True:
            k = _derive_nonce(self.x, h, q, counter)
            counter += 1
            r = pow(g, k, p) % q
            if r == 0:
                continue
            s = (numbers.modinv(k, q) * (h + self.x * r)) % q
            if s == 0:
                continue
            return (r, s)


def _truncated_digest(hash_name: str, message: bytes, q: int) -> int:
    """Leftmost min(hash_bits, qbits) bits of the digest, per FIPS 186-4."""
    d = digest(hash_name, message)
    h = int.from_bytes(d, "big")
    excess = len(d) * 8 - q.bit_length()
    if excess > 0:
        h >>= excess
    return h


def _derive_nonce(x: int, h: int, q: int, counter: int) -> int:
    """Deterministic nonce in [1, q-1] from the private key and digest."""
    material = (
        x.to_bytes((x.bit_length() + 7) // 8 or 1, "big")
        + h.to_bytes((h.bit_length() + 7) // 8 or 1, "big")
        + counter.to_bytes(4, "big")
    )
    out = b""
    i = 0
    nbytes = (q.bit_length() + 7) // 8 + 8  # extra bytes to reduce bias
    while len(out) < nbytes:
        out += hashlib.sha256(material + i.to_bytes(4, "big")).digest()
        i += 1
    return 1 + int.from_bytes(out[:nbytes], "big") % (q - 1)


def generate_dsa_keypair(
    params: DSAParameters = DEFAULT_PARAMETERS,
    rand: RandomBits = default_random_bits,
) -> DSAKeyPair:
    """Generate a DSA key pair under ``params``."""
    params.validate()
    x = 1 + rand(params.q.bit_length() + 64) % (params.q - 1)
    y = pow(params.g, x, params.p)
    return DSAKeyPair(params=params, x=x, y=y)
