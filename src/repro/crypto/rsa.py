"""RSA signatures (PKCS#1 v1.5 style) in pure Python.

KeyNote (RFC 2704) defines ``rsa-hex:`` keys and ``sig-rsa-sha1-hex:``
signatures alongside DSA; DisCFS can use either.  The benchmark suite uses
both to compare credential-verification costs (see
``benchmarks/test_micro_ops.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto import numbers
from repro.crypto.hashes import digest
from repro.crypto.numbers import RandomBits, default_random_bits
from repro.errors import InvalidKey, InvalidSignature

# DigestInfo prefixes for EMSA-PKCS1-v1_5 (RFC 8017 §9.2 notes).
_DIGEST_INFO_PREFIX = {
    "sha1": bytes.fromhex("3021300906052b0e03021a05000414"),
    "sha256": bytes.fromhex("3031300d060960864801650304020105000420"),
    "md5": bytes.fromhex("3020300c06082a864886f70d020505000410"),
}


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key (n, e)."""

    n: int
    e: int

    algorithm = "rsa"

    def verify(self, message: bytes, signature: int, hash_name: str = "sha1") -> None:
        """Verify a PKCS#1 v1.5 signature; raise InvalidSignature on failure."""
        k = (self.n.bit_length() + 7) // 8
        if not 0 <= signature < self.n:
            raise InvalidSignature("signature out of range")
        em = pow(signature, self.e, self.n).to_bytes(k, "big")
        expected = _emsa_pkcs1_v15(message, k, hash_name)
        if em != expected:
            raise InvalidSignature("RSA signature mismatch")

    def fingerprint(self) -> str:
        material = f"{self.n:x}:{self.e:x}"
        return hashlib.sha256(material.encode("ascii")).hexdigest()[:16]


@dataclass(frozen=True)
class RSAKeyPair:
    """An RSA private key with its public components."""

    n: int
    e: int
    d: int
    p: int
    q: int

    algorithm = "rsa"

    @property
    def public(self) -> RSAPublicKey:
        return RSAPublicKey(n=self.n, e=self.e)

    def sign(self, message: bytes, hash_name: str = "sha1") -> int:
        k = (self.n.bit_length() + 7) // 8
        em = _emsa_pkcs1_v15(message, k, hash_name)
        m = int.from_bytes(em, "big")
        # CRT for speed.
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        qinv = numbers.modinv(self.q, self.p)
        m1 = pow(m, dp, self.p)
        m2 = pow(m, dq, self.q)
        h = (qinv * (m1 - m2)) % self.p
        return m2 + h * self.q


def _emsa_pkcs1_v15(message: bytes, em_len: int, hash_name: str) -> bytes:
    """EMSA-PKCS1-v1_5 encoding: 0x00 0x01 FF..FF 0x00 DigestInfo."""
    hash_name = hash_name.lower()
    if hash_name not in _DIGEST_INFO_PREFIX:
        raise InvalidKey(f"unsupported hash for RSA: {hash_name!r}")
    t = _DIGEST_INFO_PREFIX[hash_name] + digest(hash_name, message)
    if em_len < len(t) + 11:
        raise InvalidKey("RSA modulus too small for this digest")
    ps = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + ps + b"\x00" + t


def generate_rsa_keypair(
    bits: int = 1024, e: int = 65537, rand: RandomBits = default_random_bits
) -> RSAKeyPair:
    """Generate an RSA key pair with modulus of roughly ``bits`` bits."""
    if bits < 512:
        raise InvalidKey("RSA modulus must be at least 512 bits")
    half = bits // 2
    while True:
        p = numbers.generate_prime(half, rand=rand)
        q = numbers.generate_prime(bits - half, rand=rand)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        try:
            d = numbers.modinv(e, phi)
        except ValueError:
            continue
        return RSAKeyPair(n=n, e=e, d=d, p=p, q=q)
