"""Pure-Python cryptographic substrate.

The DisCFS prototype relied on OpenBSD's libcrypto for DSA keys and
signatures (credentials carry ``dsa-hex:`` keys and ``sig-dsa-sha1-hex:``
signatures, see Figure 5 of the paper).  No third-party crypto package is
available offline, so this package implements the required primitives from
first principles on top of :mod:`hashlib`:

* :mod:`repro.crypto.numbers` — modular arithmetic and prime generation,
* :mod:`repro.crypto.dsa` — DSA with deterministic (RFC-6979 style) nonces,
* :mod:`repro.crypto.rsa` — RSA with PKCS#1 v1.5 style signatures,
* :mod:`repro.crypto.keycodec` — the KeyNote ``ALGORITHM:hexdata`` codecs,
* :mod:`repro.crypto.cipher` — a stream cipher and CBC mode used by the
  CFS baseline and the IPsec-like channel.

These are *reproduction-grade* implementations: correct, deterministic and
well-tested, but not hardened against side channels; do not reuse them for
production security.
"""

from repro.crypto.dsa import DSAKeyPair, DSAPublicKey, generate_dsa_keypair
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, generate_rsa_keypair
from repro.crypto.keycodec import (
    decode_key,
    decode_signature,
    encode_private_key,
    encode_public_key,
    encode_signature,
)

__all__ = [
    "DSAKeyPair",
    "DSAPublicKey",
    "RSAKeyPair",
    "RSAPublicKey",
    "generate_dsa_keypair",
    "generate_rsa_keypair",
    "decode_key",
    "decode_signature",
    "encode_public_key",
    "encode_private_key",
    "encode_signature",
]
