"""Hash and MAC helpers shared by signatures, the channel, and CFS.

Thin, named wrappers over :mod:`hashlib` so the rest of the code refers to
algorithms by the identifiers KeyNote uses ("sha1", "md5", "sha256").
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import CryptoError

#: Algorithms accepted in signature identifiers (RFC 2704 defines sha1/md5;
#: we additionally allow sha256 as a modern extension).
SUPPORTED_HASHES = ("sha1", "md5", "sha256")


def digest(algorithm: str, data: bytes) -> bytes:
    """Return the digest of ``data`` under ``algorithm``.

    Raises :class:`CryptoError` for unknown algorithms so that a malformed
    signature identifier in a credential surfaces as a crypto failure, not a
    KeyError deep inside hashlib.
    """
    algorithm = algorithm.lower()
    if algorithm not in SUPPORTED_HASHES:
        raise CryptoError(f"unsupported hash algorithm: {algorithm!r}")
    return hashlib.new(algorithm, data).digest()


def digest_size(algorithm: str) -> int:
    algorithm = algorithm.lower()
    if algorithm not in SUPPORTED_HASHES:
        raise CryptoError(f"unsupported hash algorithm: {algorithm!r}")
    return hashlib.new(algorithm).digest_size


def hmac_digest(key: bytes, data: bytes, algorithm: str = "sha256") -> bytes:
    """HMAC of ``data`` under ``key``; used by the ESP-like record layer."""
    algorithm = algorithm.lower()
    if algorithm not in SUPPORTED_HASHES:
        raise CryptoError(f"unsupported hash algorithm: {algorithm!r}")
    return hmac.new(key, data, algorithm).digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    return hmac.compare_digest(a, b)
