"""The DisCFS server.

Assembles the full stack of the paper's prototype:

* an FFS-backed VFS (the local file storage),
* a user-level NFS server whose every procedure is gated by a
  KeyNote-backed :class:`DisCFSController`,
* a persistent KeyNote session seeded with the administrator's policy,
* the policy-result cache (128 entries, per the evaluation),
* the revocation store,
* extension RPC procedures: SUBMITCRED, REVOKE, LISTCREDS,
* the credential minted and returned on CREATE/MKDIR (the paper's added
  procedures), signed by the server's *issuer key* — a key the
  administrator has delegated authority to (see
  :meth:`repro.core.admin.Administrator.trust_server`).

Identity: every request carries ``peer_identity``, the public key proven
during the IKE handshake.  Requests arriving with no identity (e.g. over a
raw transport) are denied everything that requires rights.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.audit import AuditLog
from repro.core.cache import PolicyCache
from repro.core.credentials import CredentialIssuer
from repro.core.handles import HandleScheme, ancestor_chain
from repro.core.permissions import Permission, required_permission
from repro.core.policy import PolicyEngine
from repro.core.revocation import RevocationStore
from repro.crypto.dsa import DSAKeyPair, generate_dsa_keypair
from repro.crypto.rsa import RSAKeyPair
from repro.errors import KeyNoteError, SignatureVerificationError
from repro.fs.blockdev import BlockDevice
from repro.fs.ffs import FFS
from repro.fs.inode import Inode
from repro.fs.vfs import VFS
from repro.ipsec.channel import SecureChannelServer
from repro.ipsec.ike import IKEResponder
from repro.keynote.ast import Assertion, normalize_principal
from repro.keynote.parser import parse_assertion
from repro.keynote.session import KeyNoteSession
from repro.nfs.mount import MountProgram
from repro.nfs.protocol import FileHandle
from repro.nfs.server import AccessDeniedSignal, NFSProgram
from repro.rpc.server import CallContext, RPCServer
from repro.rpc.transport import InProcessTransport


class DisCFSController:
    """The access controller gluing NFS procedures to KeyNote."""

    def __init__(self, server: "DisCFSServer"):
        self._server = server

    # -- the hot path ----------------------------------------------------

    def check(self, ctx: CallContext, op: str, fh: FileHandle,
              inode: Inode | None) -> None:
        required = required_permission(op)
        if required.bits == 0:
            return
        identity = self._server.principal_for(ctx)
        if identity is None:
            raise AccessDeniedSignal("no authenticated identity on this channel")
        granted = self._server.rights_for(identity, fh, op, inode)
        allowed = granted.covers(required)
        self._server.audit.record(
            principal=identity,
            operation=op,
            handle=self._server.handle_scheme.render(fh),
            granted=granted.value,
            allowed=allowed,
            authorized_by=self._server.chain_for(identity, fh),
        )
        if not allowed:
            raise AccessDeniedSignal(
                f"operation {op} requires {required.value}, "
                f"principal holds {granted.value}"
            )

    def check_lookup(self, ctx: CallContext, dir_fh: FileHandle,
                     dir_inode: Inode, child: Inode) -> None:
        """Allow lookup via X on the directory OR any rights on the child.

        The paper's attach flow depends on the second arm: submitting a
        credential for a *file* makes it appear under the mount point,
        without the directory itself granting anything.
        """
        identity = self._server.principal_for(ctx)
        if identity is None:
            raise AccessDeniedSignal("no authenticated identity on this channel")
        dir_granted = self._server.rights_for(identity, dir_fh, "lookup",
                                              dir_inode)
        if dir_granted.can_execute:
            allowed = True
            via_handle = self._server.handle_scheme.render(dir_fh)
            chain_fh = dir_fh
        else:
            child_fh = FileHandle.of(child)
            child_granted = self._server.rights_for(identity, child_fh,
                                                    "lookup", child)
            allowed = child_granted.bits != 0
            via_handle = self._server.handle_scheme.render(child_fh)
            chain_fh = child_fh
        self._server.audit.record(
            principal=identity,
            operation="lookup",
            handle=via_handle,
            granted=(dir_granted.value if chain_fh is dir_fh
                     else child_granted.value),
            allowed=allowed,
            authorized_by=self._server.chain_for(identity, chain_fh),
        )
        if not allowed:
            raise AccessDeniedSignal(
                "lookup requires X on the directory or rights on the target"
            )

    def effective_mode(self, ctx: CallContext, inode: Inode) -> int:
        """Report the requester's granted rights as the permission bits.

        Before any credentials are submitted this is 000 — exactly the
        paper's behaviour for freshly attached directories.
        """
        identity = self._server.principal_for(ctx)
        if identity is None:
            return 0
        fh = FileHandle.of(inode)
        granted = self._server.rights_for(identity, fh, "getattr", inode)
        return granted.octal << 6  # owner triplet

    # -- extension procedures --------------------------------------------

    def on_create(self, ctx: CallContext, inode: Inode) -> str | None:
        # Guests get creator credentials for the guest principal: any
        # anonymous user can then use the file, which is the only
        # consistent meaning of anonymous creation.
        return self._server.mint_creator_credential(
            self._server.principal_for(ctx), inode
        )

    def submit_credential(self, ctx: CallContext, text: str) -> str:
        return self._server.accept_credential(text)

    def revoke(self, ctx: CallContext, payload: str) -> str:
        return self._server.handle_revocation(ctx.peer_identity, payload)

    def list_credentials(self, ctx: CallContext) -> list[str]:
        return [a.source_text for a in self._server.session.credentials]

    def list_audit(self, ctx: CallContext, limit: int) -> list[str]:
        # Audit data names keys and files; only the administrator reads it.
        if ctx.peer_identity != self._server.admin_identity:
            raise AccessDeniedSignal("only the administrator may read the audit log")
        records = self._server.audit.records()
        if limit:
            records = records[-limit:]
        return [r.format() for r in records]


class DisCFSServer:
    """A complete DisCFS daemon.

    Parameters
    ----------
    admin_identity:
        The administrator's principal.  The server installs the root
        policy ``POLICY -> admin`` automatically (the paper: "the server
        would trust only the administrator's key").
    issuer_key:
        Keypair the server signs creator credentials with.  The
        administrator must delegate to it (``Administrator.trust_server``)
        before those credentials carry authority.
    handle_scheme:
        INODE_GENERATION (default) or the prototype's bare INODE.
    backend:
        Storage-backend URI (``mem://``, ``file://``, ``sqlite://``,
        ``shard://``, ``cached://``) the server's filesystem is built on
        when neither ``fs`` nor ``device`` is given; resolved through
        :func:`repro.storage.open_device`.
    cache_capacity / cache_ttl:
        Policy cache parameters (paper evaluation: 128 entries).
    clock:
        Injectable time source for time-of-day policies.
    guest_principal:
        Optional opaque principal name (e.g. ``"GUEST"``) that requests
        arriving *without* an authenticated channel identity act as.
        Implements the paper's future-work scenario of "untrusted users
        characteristic of the WWW": the administrator publishes content by
        issuing credentials whose licensee is the guest name, and anyone
        can browse anonymously.  Default None — anonymous requests hold
        no rights, the prototype's behaviour.
    """

    def __init__(
        self,
        admin_identity: str,
        fs: FFS | None = None,
        device: BlockDevice | None = None,
        issuer_key: DSAKeyPair | RSAKeyPair | None = None,
        server_key: DSAKeyPair | RSAKeyPair | None = None,
        handle_scheme: HandleScheme = HandleScheme.INODE_GENERATION,
        cache_capacity: int = 128,
        cache_ttl: float | None = None,
        clock: Callable[[], float] = time.time,
        guest_principal: str | None = None,
        audit_capacity: int = 10_000,
        backend: str | None = None,
    ):
        # ``backend`` is a storage URI (mem://, sqlite://, shard://, ...)
        # resolved through the repro.storage registry; ``device``/``fs``
        # take precedence for callers that construct their own.
        self.fs = fs if fs is not None else FFS(
            device if device is not None else backend
        )
        self.vfs = VFS(self.fs)
        self.admin_identity = normalize_principal(admin_identity)
        self.handle_scheme = handle_scheme
        self.guest_principal = guest_principal

        self.session = KeyNoteSession(index_attribute="HANDLE")
        self.session.add_policy(
            f'Authorizer: "POLICY"\nLicensees: "{self.admin_identity}"\n'
        )
        self.engine = PolicyEngine(self.session, clock=clock)
        self.cache = PolicyCache(capacity=cache_capacity, ttl_seconds=cache_ttl)
        self.revocations = RevocationStore()
        self.audit = AuditLog(capacity=audit_capacity)
        #: (principal, handle) -> authorizing keys recorded at evaluation
        #: time, so audit entries on the cached fast path carry the chain.
        self._chains: dict[tuple[str, str], tuple[str, ...]] = {}

        self.issuer = CredentialIssuer(
            issuer_key if issuer_key is not None else generate_dsa_keypair()
        )
        #: Channel key: what the server authenticates *itself* with in IKE.
        self.server_key = server_key if server_key is not None else self.issuer.key

        self.controller = DisCFSController(self)
        self.rpc = RPCServer()
        self.nfs_program = NFSProgram(self.vfs, controller=self.controller)
        self.mount_program = MountProgram(self.vfs)
        self.rpc.register(self.nfs_program)
        self.rpc.register(self.mount_program)
        self._channel_server: SecureChannelServer | None = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def secure_channel(self) -> SecureChannelServer:
        """The IKE/ESP front end; create lazily, one per server."""
        if self._channel_server is None:
            self._channel_server = SecureChannelServer(
                IKEResponder(self.server_key),
                lambda request, identity: self.rpc.handle(
                    request, peer_identity=identity
                ),
            )
        return self._channel_server

    def handler(self, identity: str | None = None):
        """Raw (unencrypted) entry point with a fixed identity — used by
        tests and benchmarks that bypass the channel."""
        return self.rpc.handler_for(identity)

    def in_process_transport(self, identity: str | None = None) -> InProcessTransport:
        return InProcessTransport(self.handler(identity))

    @property
    def issuer_identity(self) -> str:
        return self.issuer.identity

    # ------------------------------------------------------------------
    # Authorization core
    # ------------------------------------------------------------------

    def principal_for(self, ctx: CallContext) -> str | None:
        """The principal a request acts as: its channel identity, or the
        guest principal for anonymous requests (if enabled)."""
        if ctx.peer_identity is not None:
            return ctx.peer_identity
        return self.guest_principal

    def rights_for(self, identity: str, fh: FileHandle, op: str,
                   inode: Inode | None) -> Permission:
        """Cached KeyNote evaluation of a principal's rights over a file."""
        if self.revocations.key_revoked(identity):
            return Permission.none()
        handle = self.handle_scheme.render(fh)
        cached = self.cache.get(identity, handle, op)
        if cached is not None:
            return cached
        extra = {}
        if inode is not None:
            anchor = inode.ino if inode.is_dir else inode.parent_ino
            extra["ANCESTORS"] = ancestor_chain(self.fs, anchor, self.handle_scheme)
        granted, chain = self.engine.evaluate_with_trace(identity, handle, op, extra)
        self.cache.put(identity, handle, op, granted)
        self._chains[(identity, handle)] = chain
        return granted

    def chain_for(self, identity: str, fh: FileHandle) -> tuple[str, ...]:
        """Authorizing keys recorded for (identity, handle), for auditing."""
        return self._chains.get(
            (identity, self.handle_scheme.render(fh)), ()
        )

    def _flush_policy_state(self) -> None:
        """Invalidate cached verdicts and chains after any policy change."""
        self.cache.flush()
        self._chains.clear()

    # ------------------------------------------------------------------
    # Credential intake / minting / revocation
    # ------------------------------------------------------------------

    def accept_credential(self, text: str) -> str:
        """Validate and add a submitted credential to the session."""
        try:
            assertion = parse_assertion(text)
        except KeyNoteError as exc:
            raise AccessDeniedSignal(f"malformed credential: {exc}") from exc
        if self.revocations.credential_revoked(assertion):
            raise AccessDeniedSignal("credential or one of its keys is revoked")
        try:
            self.session.add_credential(assertion)
        except (KeyNoteError, SignatureVerificationError) as exc:
            raise AccessDeniedSignal(f"credential rejected: {exc}") from exc
        self._flush_policy_state()
        return "credential accepted"

    def mint_creator_credential(self, identity: str | None,
                                inode: Inode) -> str | None:
        """The paper's extension: CREATE/MKDIR return full access to the
        creator (otherwise the new file would be unreachable)."""
        if identity is None:
            return None
        handle = self.handle_scheme.render_inode(inode)
        text = self.issuer.grant(
            identity, handle=handle, rights=Permission.all(),
            comment=f"creator credential for inode {inode.ino}",
        )
        # The server trusts its own issuance; install it so the creator
        # can use the file immediately without re-submitting.
        self.session.add_credential(text)
        self._flush_policy_state()
        return text

    def handle_revocation(self, requester: str | None, payload: str) -> str:
        """REVOKE RPC: only the administrator may revoke.

        Payload grammar: ``key <principal>`` or ``credential <signature>``.
        """
        if requester != self.admin_identity:
            raise AccessDeniedSignal("only the administrator may revoke")
        kind, _, value = payload.partition(" ")
        value = value.strip()
        if not value:
            raise AccessDeniedSignal("empty revocation payload")
        if kind == "key":
            principal = normalize_principal(value)
            self.revocations.revoke_key(principal)
            self._drop_credentials(lambda a: principal == a.authorizer
                                   or principal in a.licensee_principals())
            if self._channel_server is not None:
                self._channel_server.revoke_identity(principal)
            self._flush_policy_state()
            return f"revoked key {principal[:32]}..."
        if kind == "credential":
            self.revocations.revoke_credential(value)
            self._drop_credentials(lambda a: a.signature == value)
            self._flush_policy_state()
            return "revoked credential"
        raise AccessDeniedSignal(f"unknown revocation kind {kind!r}")

    def _drop_credentials(self, predicate: Callable[[Assertion], bool]) -> None:
        for assertion in list(self.session.credentials):
            if predicate(assertion):
                self.session.remove_credential(assertion)


def make_admin_keypair(seed: bytes | None = None) -> DSAKeyPair:
    """Convenience for examples/tests: a (seeded) administrator keypair."""
    if seed is None:
        return generate_dsa_keypair()
    from repro.crypto.numbers import seeded_random_bits

    return generate_dsa_keypair(rand=seeded_random_bits(seed))


__all__ = ["DisCFSServer", "DisCFSController", "make_admin_keypair"]
