"""The policy engine: DisCFS operations -> KeyNote queries -> permissions.

For every request the engine constructs an *action attribute set*:

=================  ======================================================
``app_domain``     always ``"DisCFS"``
``HANDLE``         the target's handle (Figure 5's ``HANDLE == "666240"``)
``OPERATION``      the NFS-level operation name (``read``, ``create``...)
``ANCESTORS``      space-separated handles of the target's ancestor
                   directories (enables subtree credentials)
``now``            unix timestamp (integer seconds)
``hour``/``minute``/``weekday``  local-time fields for time-of-day policy
=================  ======================================================

and asks KeyNote for the compliance value over the octal-ordered
permission set.  The requesting principal is the public key bound to the
client's channel.  The result is a :class:`Permission`; the server then
checks the operation's required bits against it.

The clock is injectable so tests can exercise time-window policies
deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping

from repro.core.permissions import PERMISSION_VALUES, Permission
from repro.keynote.ast import ComplianceValues
from repro.keynote.session import KeyNoteSession

APP_DOMAIN = "DisCFS"

_VALUES = ComplianceValues(list(PERMISSION_VALUES))


class PolicyEngine:
    """Runs DisCFS compliance queries against a KeyNote session."""

    def __init__(self, session: KeyNoteSession,
                 clock: Callable[[], float] = time.time):
        self.session = session
        self.clock = clock
        self.queries = 0  # number of actual KeyNote evaluations

    def evaluate(
        self,
        principal: str,
        handle: str,
        operation: str,
        extra_attributes: Mapping[str, str] | None = None,
    ) -> Permission:
        """The rights ``principal`` holds over ``handle`` for ``operation``."""
        permission, _chain = self.evaluate_with_trace(
            principal, handle, operation, extra_attributes
        )
        return permission

    def evaluate_with_trace(
        self,
        principal: str,
        handle: str,
        operation: str,
        extra_attributes: Mapping[str, str] | None = None,
    ) -> tuple[Permission, tuple[str, ...]]:
        """Rights plus the authorizing keys (credential authorizers on the
        delegation path) — the audit log's "key B authorized" data."""
        self.queries += 1
        action = self._action_attributes(handle, operation)
        if extra_attributes:
            action.update(extra_attributes)
        value, assertions = self.session.query_with_trace(
            action=action,
            action_authorizers=[principal],
            values=_VALUES,
        )
        chain = tuple(a.authorizer for a in assertions if not a.is_policy)
        return Permission.from_value(value), chain

    def _action_attributes(self, handle: str, operation: str) -> dict[str, str]:
        now = self.clock()
        local = time.localtime(now)
        return {
            "app_domain": APP_DOMAIN,
            "HANDLE": handle,
            "OPERATION": operation,
            "now": str(int(now)),
            "hour": str(local.tm_hour),
            "minute": str(local.tm_min),
            "weekday": str(local.tm_wday),
        }
