"""Revocation of keys and credentials.

Paper, section 4.1: "the traditional problem of credential revocation is
fairly straightforward to address: since the credentials related to a
specific file have to be examined by the DisCFS server where the file is
stored, revocation (especially if it is infrequent) can be done by
notifying the server about bad keys or credentials.  If the credentials
are relatively short-lived, the server need only remember such information
for a short period of time."

We implement exactly that: a server-side store of bad keys (by canonical
principal identifier) and bad credentials (by signature, which is unique
per credential), with optional forget-after horizons so entries for
already-expired credentials can be aged out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.keynote.ast import Assertion, normalize_principal


@dataclass
class _Entry:
    revoked_at: float
    forget_at: float | None  # None = remember forever


class RevocationStore:
    """Bad keys and bad credentials, with optional expiry of the entries."""

    def __init__(self) -> None:
        self._keys: dict[str, _Entry] = {}
        self._credentials: dict[str, _Entry] = {}

    # -- marking -----------------------------------------------------------

    def revoke_key(self, principal: str, forget_after: float | None = None) -> None:
        """Declare a public key bad; all delegation through it dies."""
        now = time.time()
        self._keys[normalize_principal(principal)] = _Entry(
            revoked_at=now,
            forget_at=None if forget_after is None else now + forget_after,
        )

    def revoke_credential(self, signature: str,
                          forget_after: float | None = None) -> None:
        """Declare one credential bad, identified by its signature string."""
        now = time.time()
        self._credentials[signature] = _Entry(
            revoked_at=now,
            forget_at=None if forget_after is None else now + forget_after,
        )

    # -- checking ----------------------------------------------------------

    def key_revoked(self, principal: str) -> bool:
        return self._check(self._keys, normalize_principal(principal))

    def credential_revoked(self, assertion: Assertion) -> bool:
        """A credential is revoked if listed, or if its authorizer or any
        licensee key is revoked."""
        if assertion.signature is not None and self._check(
            self._credentials, assertion.signature
        ):
            return True
        if self._check(self._keys, assertion.authorizer):
            return True
        return any(
            self._check(self._keys, p) for p in assertion.licensee_principals()
        )

    def _check(self, table: dict[str, _Entry], key: str) -> bool:
        entry = table.get(key)
        if entry is None:
            return False
        if entry.forget_at is not None and time.time() > entry.forget_at:
            del table[key]  # aged out (short-lived credential has expired)
            return False
        return True

    # -- introspection ----------------------------------------------------

    @property
    def revoked_keys(self) -> list[str]:
        return [k for k in list(self._keys) if self._check(self._keys, k)]

    def __len__(self) -> int:
        return len(self._keys) + len(self._credentials)
