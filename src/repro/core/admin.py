"""Administrator utilities.

The administrator is the root of every DisCFS trust chain: the server's
policy trusts only the administrator's key, and everything else — internal
users, external users, the server's own issuer key — holds authority
through credentials chaining back to it.

The administrator's involvement is *one-time* (the paper's requirement:
"no involvement of the administrators in the process of allowing external
users access"): install the policy, delegate to the server's issuer key
and to internal users; after that users share files among themselves.
"""

from __future__ import annotations

from repro.core.credentials import CredentialIssuer, issue_credential
from repro.core.handles import HandleScheme
from repro.core.permissions import Permission
from repro.crypto.dsa import DSAKeyPair, generate_dsa_keypair
from repro.crypto.keycodec import encode_public_key
from repro.crypto.numbers import seeded_random_bits
from repro.crypto.rsa import RSAKeyPair
from repro.fs.inode import Inode
from repro.nfs.protocol import FileHandle


class Administrator(CredentialIssuer):
    """The administrator principal: a keypair plus delegation helpers."""

    def __init__(self, key: DSAKeyPair | RSAKeyPair):
        super().__init__(key)

    @classmethod
    def generate(cls, seed: bytes | None = None) -> "Administrator":
        """Create an administrator with a fresh (or seeded) DSA keypair."""
        if seed is None:
            return cls(generate_dsa_keypair())
        return cls(generate_dsa_keypair(rand=seeded_random_bits(seed)))

    # -- server bootstrap ---------------------------------------------------

    def trust_server(self, server) -> str:
        """Delegate subtree authority over the whole filesystem to the
        server's issuer key, so creator credentials minted on CREATE/MKDIR
        carry a complete chain.  Returns the delegation credential text.
        """
        root_inode = server.fs.iget(server.fs.root_ino)
        text = self.grant_inode(
            server.issuer_identity,
            root_inode,
            rights=Permission.all(),
            scheme=server.handle_scheme,
            subtree=True,
            comment="administrator delegation to DisCFS server issuer",
        )
        server.session.add_credential(text)
        server.cache.flush()
        return text

    # -- convenience issuance ----------------------------------------------

    def grant_inode(self, licensee: str, inode: Inode,
                    rights: Permission | str = "RWX",
                    scheme: HandleScheme = HandleScheme.INODE_GENERATION,
                    **options) -> str:
        """Issue a credential for an inode (rather than a handle string)."""
        handle = scheme.render(FileHandle.of(inode))
        return issue_credential(self.key, licensee, handle, rights, **options)


def make_user_keypair(seed: bytes | None = None) -> DSAKeyPair:
    """A user keypair for examples and tests (seeded => reproducible)."""
    if seed is None:
        return generate_dsa_keypair()
    return generate_dsa_keypair(rand=seeded_random_bits(seed))


def identity_of(key: DSAKeyPair | RSAKeyPair) -> str:
    """The canonical principal identifier of a keypair's public half."""
    return encode_public_key(key)
