"""Audit logging of access decisions.

Paper, section 2: "Access to the files may be monitored by the system and
the entity issuing the requests may be identified through its public
key" — and section 4.2: "The system may not know that Alice is trying to
get at a file, but it can log that key A (Alice's key) was used and that
key B (Bob's key) authorized the operation."

Each :class:`AuditRecord` captures exactly that: the requesting key, the
operation and handle, the verdict, and the *authorizing keys* — the
authorizers of every credential that contributed authority to the
decision (recovered from the compliance checker's trace).  Cache hits
reuse the trace recorded when the entry was filled, so auditing does not
force the slow path.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class AuditRecord:
    """One access decision."""

    timestamp: float
    principal: str
    operation: str
    handle: str
    granted: str  # compliance value, e.g. "RX" or "false"
    allowed: bool
    #: Authorizer principals of the credentials that carried the decision
    #: (empty when denied or when policy authorized the requester directly).
    authorized_by: tuple[str, ...] = ()

    def format(self, width: int = 28) -> str:
        """One-line log rendering with abbreviated keys."""
        def short(principal: str) -> str:
            return principal if len(principal) <= width else principal[:width] + "..."

        chain = " <- ".join(short(p) for p in self.authorized_by) or "(policy)"
        verdict = "ALLOW" if self.allowed else "DENY "
        return (f"{self.timestamp:.3f} {verdict} {self.operation:<8} "
                f"handle={self.handle:<12} key={short(self.principal)} "
                f"via {chain}")


@dataclass
class AuditLog:
    """A bounded in-memory audit log (ring buffer).

    ``capacity=0`` disables recording entirely (monitoring is a *may* in
    the paper); :meth:`record` then returns None at near-zero cost.
    """

    capacity: int = 10_000
    _records: deque = field(default_factory=deque, repr=False)

    def record(
        self,
        principal: str,
        operation: str,
        handle: str,
        granted: str,
        allowed: bool,
        authorized_by: Iterable[str] = (),
        timestamp: float | None = None,
    ) -> AuditRecord | None:
        if self.capacity == 0:
            return None
        entry = AuditRecord(
            timestamp=time.time() if timestamp is None else timestamp,
            principal=principal,
            operation=operation,
            handle=handle,
            granted=granted,
            allowed=allowed,
            authorized_by=tuple(dict.fromkeys(authorized_by)),
        )
        self._records.append(entry)
        while len(self._records) > self.capacity:
            self._records.popleft()
        return entry

    # -- queries ------------------------------------------------------------

    def records(self) -> list[AuditRecord]:
        return list(self._records)

    def by_principal(self, principal: str) -> list[AuditRecord]:
        return [r for r in self._records if r.principal == principal]

    def denials(self) -> list[AuditRecord]:
        return [r for r in self._records if not r.allowed]

    def authorized_through(self, principal: str) -> list[AuditRecord]:
        """Every decision that flowed through ``principal``'s signature —
        the paper's "key B authorized the operation" view."""
        return [r for r in self._records if principal in r.authorized_by]

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        self._records.clear()
