"""The policy-result cache.

Paper, section 5: "To improve performance, we use a cache of requested
operations and policy results." — and the search benchmark (Figure 12)
"was conducted with a cache size of 128 policy results."

The cache maps (principal, handle, operation) to the granted
:class:`~repro.core.permissions.Permission`, with LRU eviction at a fixed
capacity (128 by default, configurable for the ablation benchmark) and an
optional time-to-live for deployments whose policies depend on
time-of-day.  Any credential submission or revocation flushes it — policy
changed, all bets off.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.permissions import Permission

CacheKey = tuple[str, str, str]  # (principal, handle, operation)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.flushes = 0


class PolicyCache:
    """LRU cache of compliance-query results.

    ``capacity=0`` disables caching entirely (every lookup is a miss),
    which the ablation benchmark uses as its baseline.
    """

    def __init__(self, capacity: int = 128, ttl_seconds: float | None = None):
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._entries: OrderedDict[CacheKey, tuple[Permission, float]] = OrderedDict()
        self.stats = CacheStats()

    def get(self, principal: str, handle: str, operation: str) -> Permission | None:
        key = (principal, handle, operation)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        permission, stored_at = entry
        if self.ttl_seconds is not None and time.time() - stored_at > self.ttl_seconds:
            del self._entries[key]
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return permission

    def put(self, principal: str, handle: str, operation: str,
            permission: Permission) -> None:
        if self.capacity == 0:
            return
        key = (principal, handle, operation)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (permission, time.time())
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def flush(self) -> None:
        """Drop everything (called on any credential/revocation change)."""
        self._entries.clear()
        self.stats.flushes += 1

    def invalidate_principal(self, principal: str) -> int:
        """Drop entries for one principal; returns how many were dropped."""
        doomed = [k for k in self._entries if k[0] == principal]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._entries)
