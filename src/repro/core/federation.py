"""Multi-server DisCFS: a federated client namespace.

Paper requirement (section 2): "The access mechanism should work for both
centralized servers and in a distributed environment where the files are
stored in multiple servers" — and section 4.3: "Each repository is
responsible for only the part of the distributed filesystem that is
stored locally and there is no need to distribute and synchronize
authentication and access control databases."

:class:`DisCFSFederation` unions independent DisCFS servers into one
client-side namespace by mount prefix.  There is deliberately **no**
server-to-server protocol here — each server evaluates its own policy
over its own credentials, and the only shared artifact is the user's key.
Credentials are per-server (handles are server-local), so the federation
routes submissions to the mount they belong to.
"""

from __future__ import annotations

from repro.core.client import DisCFSClient
from repro.crypto.dsa import DSAKeyPair
from repro.crypto.rsa import RSAKeyPair
from repro.errors import DisCFSError, NotAttached


class DisCFSFederation:
    """One user's view over several DisCFS servers.

    >>> fed = DisCFSFederation(user_key)
    >>> fed.mount("/east", east_server, attach="/share")
    >>> fed.mount("/west", west_server, attach="/share")
    >>> fed.submit_credential("/east", east_credential)
    >>> fed.read("/east/report.txt")
    """

    def __init__(self, key: DSAKeyPair | RSAKeyPair):
        self.key = key
        self._mounts: dict[str, DisCFSClient] = {}

    # -- mount management ---------------------------------------------------

    def mount(self, prefix: str, server, attach: str = "/",
              secure: bool = True) -> DisCFSClient:
        """Attach ``server``'s ``attach`` path under local ``prefix``."""
        prefix = self._normalize(prefix)
        if prefix in self._mounts:
            raise DisCFSError(f"prefix {prefix!r} is already mounted")
        if prefix == "/":
            raise DisCFSError("mount prefixes must be non-root")
        client = DisCFSClient.connect(server, self.key, secure=secure)
        client.attach(attach)
        self._mounts[prefix] = client
        return client

    def mount_client(self, prefix: str, client: DisCFSClient) -> None:
        """Register an already-attached client (e.g. one over TCP)."""
        prefix = self._normalize(prefix)
        if prefix in self._mounts:
            raise DisCFSError(f"prefix {prefix!r} is already mounted")
        self._mounts[prefix] = client

    def unmount(self, prefix: str) -> None:
        client = self._mounts.pop(self._normalize(prefix), None)
        if client is None:
            raise NotAttached(f"nothing mounted at {prefix!r}")
        client.close()

    @property
    def mounts(self) -> dict[str, DisCFSClient]:
        return dict(self._mounts)

    @staticmethod
    def _normalize(prefix: str) -> str:
        return "/" + "/".join(p for p in prefix.split("/") if p)

    def _route(self, path: str) -> tuple[DisCFSClient, str]:
        """Resolve a federated path to (client, server-local path)."""
        path = self._normalize(path)
        best = ""
        for prefix in self._mounts:
            if (path == prefix or path.startswith(prefix + "/")) and \
                    len(prefix) > len(best):
                best = prefix
        if not best:
            raise NotAttached(f"no mount covers {path!r}")
        rest = path[len(best):] or "/"
        return self._mounts[best], rest

    # -- credentials --------------------------------------------------------

    def submit_credential(self, prefix_or_path: str, text: str) -> str:
        client, _rest = self._route(prefix_or_path)
        return client.submit_credential(text)

    # -- file operations -----------------------------------------------------

    def read(self, path: str) -> bytes:
        client, rest = self._route(path)
        return client.read_path(rest)

    def write(self, path: str, data: bytes) -> None:
        client, rest = self._route(path)
        client.write_path(rest, data)

    def listdir(self, path: str) -> list[str]:
        """Entries at ``path``; the root lists the mount prefixes."""
        path = self._normalize(path)
        if path == "/":
            return sorted(p.lstrip("/") for p in self._mounts)
        client, rest = self._route(path)
        fh, _ = client.walk(rest)
        return [name for _i, name in client.readdir(fh)
                if name not in (".", "..")]

    def remove(self, path: str) -> None:
        client, rest = self._route(path)
        directory, _, name = rest.strip("/").rpartition("/")
        dir_fh, _ = client.walk(directory) if directory else (client.root, None)
        client.remove(dir_fh, name)

    def copy(self, src: str, dst: str) -> int:
        """Copy a file across mounts (client-mediated; servers never talk
        to each other).  Returns bytes copied."""
        data = self.read(src)
        self.write(dst, data)
        return len(data)

    def close(self) -> None:
        for client in self._mounts.values():
            client.close()
        self._mounts.clear()
