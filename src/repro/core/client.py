"""The DisCFS client.

Mirrors the paper's client-side workflow (sections 4.3 and 5):

1. ``cattach``-style **attach**: establish the IPsec connection (IKE binds
   the user's public key) and mount the remote directory.  The attached
   directory appears with permissions 000.
2. **submit credentials** over RPC; the files they name become usable.
3. Ordinary NFS file I/O, every operation policy-checked server-side.
4. ``create``/``mkdir`` hand back a creator credential, which the client
   keeps in a local wallet for later delegation to other users.
"""

from __future__ import annotations

from repro.core.credentials import CredentialIssuer
from repro.crypto.dsa import DSAKeyPair
from repro.crypto.keycodec import encode_public_key
from repro.crypto.rsa import RSAKeyPair
from repro.errors import NotAttached
from repro.ipsec.channel import SecureTransport
from repro.ipsec.ike import IKEInitiator
from repro.nfs.client import NFSClient, RemoteFile
from repro.nfs.mount import MountClient
from repro.nfs.protocol import FAttr, FileHandle, SAttr
from repro.rpc.transport import InProcessTransport, Transport


class DisCFSClient:
    """A user's connection to a DisCFS server.

    Construct with a transport (usually via :meth:`connect`, which wires
    the secure channel) and the user's keypair.  The keypair serves both
    as the channel identity and for delegating credentials onward.
    """

    def __init__(self, transport: Transport, key: DSAKeyPair | RSAKeyPair):
        self.transport = transport
        self.key = key
        self.identity = encode_public_key(key)
        self.issuer = CredentialIssuer(key)
        self._nfs: NFSClient | None = None
        #: Credentials this user holds (received or minted on create).
        self.wallet: list[str] = []

    # -- construction -------------------------------------------------------

    @classmethod
    def connect(cls, server, key: DSAKeyPair | RSAKeyPair,
                secure: bool = True) -> "DisCFSClient":
        """Connect to an in-process :class:`~repro.core.server.DisCFSServer`.

        ``secure=True`` (default) runs the IKE handshake over the server's
        channel front end — the canonical configuration.  ``secure=False``
        wires the identity directly, bypassing cryptography; benchmarks use
        it to separate channel cost from policy cost.
        """
        if secure:
            inner = InProcessTransport(server.secure_channel().handle)
            transport: Transport = SecureTransport(inner, IKEInitiator(key))
        else:
            transport = server.in_process_transport(encode_public_key(key))
        return cls(transport, key)

    # -- attach ------------------------------------------------------------

    def attach(self, path: str = "/") -> FileHandle:
        """Mount the remote export; returns its root handle."""
        root = MountClient(self.transport).mount(path)
        self._nfs = NFSClient(self.transport, root)
        return root

    def detach(self) -> None:
        if self._nfs is not None:
            MountClient(self.transport).unmount("/")
            self._nfs = None

    @property
    def nfs(self) -> NFSClient:
        if self._nfs is None:
            raise NotAttached("call attach() before file operations")
        return self._nfs

    @property
    def root(self) -> FileHandle:
        return self.nfs.root

    # -- credentials --------------------------------------------------------

    def submit_credential(self, text: str) -> str:
        """Send a credential to the server; remembers it in the wallet."""
        message = self.nfs.submit_credential(text)
        if text not in self.wallet:
            self.wallet.append(text)
        return message

    def submit_credentials(self, texts: list[str]) -> list[str]:
        return [self.submit_credential(t) for t in texts]

    def delegate(self, credential_text: str, licensee: str,
                 rights=None, **options) -> str:
        """Create a new credential passing (narrowed) rights to ``licensee``.

        This is pure client-side key-signing — no server involvement, the
        paper's core flexibility claim.  Send the result to the other user
        out of band (the paper suggests email).
        """
        return self.issuer.delegate(credential_text, licensee, rights, **options)

    # -- file operations ------------------------------------------------------

    def getattr(self, fh: FileHandle) -> FAttr:
        return self.nfs.getattr(fh)

    def lookup(self, dir_fh: FileHandle, name: str) -> tuple[FileHandle, FAttr]:
        return self.nfs.lookup(dir_fh, name)

    def walk(self, path: str) -> tuple[FileHandle, FAttr]:
        return self.nfs.walk(path)

    def read(self, fh: FileHandle, offset: int, count: int) -> bytes:
        return self.nfs.read(fh, offset, count)

    def write(self, fh: FileHandle, offset: int, data: bytes) -> FAttr:
        return self.nfs.write(fh, offset, data)

    def create(self, dir_fh: FileHandle, name: str,
               sattr: SAttr | None = None) -> tuple[FileHandle, str | None]:
        """Create a file; returns (handle, creator credential).

        The credential is added to the wallet automatically.
        """
        fh, _attr, credential = self.nfs.create(dir_fh, name, sattr)
        if credential is not None:
            self.wallet.append(credential)
        return fh, credential

    def mkdir(self, dir_fh: FileHandle, name: str,
              sattr: SAttr | None = None) -> tuple[FileHandle, str | None]:
        fh, _attr, credential = self.nfs.mkdir(dir_fh, name, sattr)
        if credential is not None:
            self.wallet.append(credential)
        return fh, credential

    def remove(self, dir_fh: FileHandle, name: str) -> None:
        self.nfs.remove(dir_fh, name)

    def rmdir(self, dir_fh: FileHandle, name: str) -> None:
        self.nfs.rmdir(dir_fh, name)

    def rename(self, from_dir: FileHandle, from_name: str,
               to_dir: FileHandle, to_name: str) -> None:
        self.nfs.rename(from_dir, from_name, to_dir, to_name)

    def readdir(self, dir_fh: FileHandle) -> list[tuple[int, str]]:
        return self.nfs.readdir_all(dir_fh)

    def open(self, fh: FileHandle) -> RemoteFile:
        return self.nfs.open(fh)

    # -- path conveniences ---------------------------------------------------

    def read_path(self, path: str) -> bytes:
        fh, attr = self.walk(path)
        out = bytearray()
        offset = 0
        while offset < attr.size:
            chunk = self.read(fh, offset, 8192)
            if not chunk:
                break
            out += chunk
            offset += len(chunk)
        return bytes(out)

    def write_path(self, path: str, data: bytes) -> FileHandle:
        """Create (or overwrite) ``path`` and write ``data``."""
        directory, _, name = path.strip("/").rpartition("/")
        dir_fh, _ = self.walk(directory) if directory else (self.root, None)
        try:
            fh, _ = self.lookup(dir_fh, name)
            self.nfs.setattr(fh, SAttr(size=0))
        except Exception:
            fh, _cred = self.create(dir_fh, name)
        offset = 0
        while offset < len(data):
            chunk = data[offset : offset + 8192]
            self.write(fh, offset, chunk)
            offset += len(chunk)
        return fh

    # -- wallet persistence --------------------------------------------------

    def save_wallet(self, path: str) -> int:
        """Write the wallet to a file (blank-line-separated credentials);
        returns the number saved.  The format is what ``discfs submit``
        and :meth:`load_wallet` read back."""
        with open(path, "w", encoding="utf-8") as f:
            for text in self.wallet:
                f.write(text.rstrip("\n") + "\n\n")
        return len(self.wallet)

    def load_wallet(self, path: str, submit: bool = True) -> int:
        """Load credentials from a wallet file; optionally submit each to
        the server (the normal re-attach flow after a client restart).
        Returns the number loaded."""
        from repro.keynote.parser import parse_assertions

        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        count = 0
        for assertion in parse_assertions(text):
            credential = assertion.source_text
            if submit:
                self.submit_credential(credential)
            elif credential not in self.wallet:
                self.wallet.append(credential)
            count += 1
        return count

    def close(self) -> None:
        self.transport.close()
