"""Issuing and delegating DisCFS file credentials.

A DisCFS credential is a signed KeyNote assertion of the shape shown in
the paper's Figure 5::

    Authorizer: "dsa-hex:3081de0240503ca3..."
    Licensees: "dsa-hex:3081de02405be60a..."
    Conditions: (app_domain == "DisCFS") && (HANDLE == "666240") -> "RWX";
    Comment: testdir
    Signature: "sig-dsa-sha1-hex:302e021500eeb1..."

Users share files by issuing such credentials to other keys; delegation is
just issuing a credential whose Authorizer is the delegator's own key.
The compliance checker enforces that the whole chain holds and that each
link's conditions are met — a delegator can narrow rights ("RX") but can
never widen them beyond what its own chain supports.

Extensions beyond the prototype, each optional:

* ``expires_at`` — appends ``@now < T`` (short-lived credentials, the
  paper's suggested revocation aid),
* ``not_before`` — delayed validity,
* ``hours``   — time-of-day windows (the paper's "leisure-related files
  may not be available during office hours" example),
* ``subtree`` — grants over a directory and everything beneath it, via
  the ``ANCESTORS`` action attribute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.dsa import DSAKeyPair
from repro.crypto.keycodec import encode_public_key
from repro.crypto.rsa import RSAKeyPair
from repro.errors import CredentialError
from repro.keynote.ast import Assertion
from repro.keynote.parser import parse_assertion
from repro.keynote.signing import sign_assertion
from repro.core.permissions import Permission

APP_DOMAIN = "DisCFS"


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


@dataclass(frozen=True)
class CredentialSpec:
    """Everything that determines a credential's Conditions field."""

    handle: str
    rights: Permission
    subtree: bool = False
    expires_at: int | None = None
    not_before: int | None = None
    hours: tuple[int, int] | None = None
    extra_condition: str | None = None

    def conditions_text(self) -> str:
        clauses = [f'(app_domain == "{APP_DOMAIN}")']
        if self.subtree:
            handle_re = self.handle.replace(".", "\\.")
            clauses.append(
                f'((HANDLE == "{self.handle}") || '
                f'(ANCESTORS ~= "(^| ){handle_re}( |$)"))'
            )
        else:
            clauses.append(f'(HANDLE == "{self.handle}")')
        if self.expires_at is not None:
            clauses.append(f"(@now < {int(self.expires_at)})")
        if self.not_before is not None:
            clauses.append(f"(@now >= {int(self.not_before)})")
        if self.hours is not None:
            start, end = self.hours
            if not (0 <= start < 24 and 0 < end <= 24 and start < end):
                raise CredentialError(f"invalid hour window: {self.hours}")
            clauses.append(f"(@hour >= {start}) && (@hour < {end})")
        if self.extra_condition:
            clauses.append(f"({self.extra_condition})")
        return " && ".join(clauses) + f' -> "{self.rights.value}";'


def issue_credential(
    issuer: DSAKeyPair | RSAKeyPair,
    licensee: str,
    handle: str,
    rights: Permission | str,
    comment: str = "",
    subtree: bool = False,
    expires_at: int | None = None,
    not_before: int | None = None,
    hours: tuple[int, int] | None = None,
    extra_condition: str | None = None,
) -> str:
    """Create and sign a DisCFS credential; returns the credential text.

    ``licensee`` is a principal identifier (or a full licensee expression
    already containing quoted principals, for thresholds).  ``rights`` is a
    :class:`Permission` or a string like ``"RX"``.
    """
    if isinstance(rights, str):
        rights = Permission.from_string(rights) if rights != "false" else Permission.none()
    if rights.bits == 0:
        raise CredentialError("refusing to issue a credential granting no rights")
    spec = CredentialSpec(
        handle=handle, rights=rights, subtree=subtree, expires_at=expires_at,
        not_before=not_before, hours=hours, extra_condition=extra_condition,
    )
    licensees_field = licensee if _looks_like_expression(licensee) else _quote(licensee)
    body_lines = [
        "KeyNote-Version: 2",
        f"Authorizer: {_quote(encode_public_key(issuer))}",
        f"Licensees: {licensees_field}",
        f"Conditions: {spec.conditions_text()}",
    ]
    if comment:
        body_lines.append(f"Comment: {comment}")
    body = "\n".join(body_lines) + "\n"
    return sign_assertion(body, issuer)


def _looks_like_expression(licensee: str) -> bool:
    """True if the licensee field is already an expression, not a bare id."""
    return '"' in licensee or "&&" in licensee or "||" in licensee or "-of(" in licensee


class CredentialIssuer:
    """Convenience wrapper: a keypair that issues and delegates credentials.

    >>> bob = CredentialIssuer(bob_keypair)
    >>> text = bob.grant(alice_id, handle="42.1", rights="RX", comment="paper")
    """

    def __init__(self, key: DSAKeyPair | RSAKeyPair):
        self.key = key
        self.identity = encode_public_key(key)

    def grant(self, licensee: str, handle: str, rights: Permission | str = "RWX",
              **options) -> str:
        """Issue a credential from this key to ``licensee``."""
        return issue_credential(self.key, licensee, handle, rights, **options)

    def delegate(self, original: str | Assertion, licensee: str,
                 rights: Permission | str | None = None, **options) -> str:
        """Re-grant an existing credential's handle to another principal.

        Parses ``original`` (a credential this user received), extracts its
        handle, and issues a new credential signed by this user.  Rights
        default to the original's granted rights; the compliance checker
        will clamp the effective rights to the chain minimum regardless.
        """
        assertion = original if isinstance(original, Assertion) else parse_assertion(original)
        handle, granted, subtree = extract_grant(assertion)
        if rights is None:
            rights = granted
        options.setdefault("subtree", subtree)
        return issue_credential(self.key, licensee, handle, rights, **options)


def extract_grant(assertion: Assertion) -> tuple[str, Permission, bool]:
    """Pull (handle, rights, subtree?) out of a credential's conditions.

    Works on the conditions program structurally: finds the HANDLE
    comparison, the clause's compliance value, and whether an ANCESTORS
    test widens the grant to a subtree.
    """
    from repro.keynote.expr import Attr, Compare, ConditionsProgram, StrLit

    if assertion.conditions is None:
        raise CredentialError("credential has no Conditions field")

    handle: str | None = None
    rights: Permission | None = None
    subtree = False

    def walk_test(node) -> None:
        nonlocal handle, subtree
        if isinstance(node, Compare):
            left, right = node.left, node.right
            if node.op == "==":
                if (isinstance(left, Attr) and left.name == "HANDLE"
                        and isinstance(right, StrLit)):
                    handle = right.value
                elif (isinstance(right, Attr) and right.name == "HANDLE"
                        and isinstance(left, StrLit)):
                    handle = left.value
            elif node.op == "~=":
                if isinstance(left, Attr) and left.name == "ANCESTORS":
                    subtree = True
        for attr in ("left", "right", "inner"):
            child = getattr(node, attr, None)
            if child is not None and not isinstance(child, (str, int, float)):
                walk_test(child)

    def walk_program(program: ConditionsProgram) -> None:
        nonlocal rights
        for clause in program.clauses:
            walk_test(clause.test)
            if isinstance(clause.target, str) and rights is None:
                try:
                    rights = Permission.from_value(clause.target)
                except Exception:
                    pass
            elif isinstance(clause.target, ConditionsProgram):
                walk_program(clause.target)

    walk_program(assertion.conditions)
    if handle is None:
        raise CredentialError("credential conditions carry no HANDLE test")
    if rights is None:
        rights = Permission.all()
    return handle, rights, subtree


def extract_handle_and_rights(assertion: Assertion) -> tuple[str, Permission]:
    """Back-compat wrapper around :func:`extract_grant`."""
    handle, rights, _subtree = extract_grant(assertion)
    return handle, rights
