"""The DisCFS permission lattice.

Paper, section 5: "The return values for the assertions form a partial
order of 8 combinations ('false', 'X', 'W', 'WX', 'R', 'RX', 'RW' and
'RWX') and translate directly into the standard octal representation."

KeyNote queries take a *totally* ordered value list; DisCFS uses the octal
order (false=0 … RWX=7), and the server then compares *bitwise*: an
operation needing W is allowed iff the W bit of the granted value is set.
So the bit lattice is the real authorization structure, with the octal
order used only as KeyNote's linearization — this module keeps the two
views consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DisCFSError

#: KeyNote compliance value order used by every DisCFS query (octal order).
PERMISSION_VALUES: tuple[str, ...] = ("false", "X", "W", "WX", "R", "RX", "RW", "RWX")

R_BIT = 4
W_BIT = 2
X_BIT = 1

_NAME_TO_BITS = {name: i for i, name in enumerate(PERMISSION_VALUES)}


@dataclass(frozen=True)
class Permission:
    """A set of rights: some combination of R, W and X."""

    bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.bits <= 7:
            raise DisCFSError(f"permission bits out of range: {self.bits}")

    # -- constructors -----------------------------------------------------

    @classmethod
    def none(cls) -> "Permission":
        return cls(0)

    @classmethod
    def all(cls) -> "Permission":
        return cls(7)

    @classmethod
    def from_value(cls, value: str) -> "Permission":
        """From a KeyNote compliance value ("RX" -> R|X)."""
        try:
            return cls(_NAME_TO_BITS[value])
        except KeyError:
            raise DisCFSError(f"not a DisCFS compliance value: {value!r}") from None

    @classmethod
    def from_string(cls, rights: str) -> "Permission":
        """From a rights string like "rw", "RX" (order-insensitive)."""
        bits = 0
        for ch in rights:
            upper = ch.upper()
            if upper == "R":
                bits |= R_BIT
            elif upper == "W":
                bits |= W_BIT
            elif upper == "X":
                bits |= X_BIT
            else:
                raise DisCFSError(f"unknown right {ch!r} in {rights!r}")
        return cls(bits)

    # -- views --------------------------------------------------------------

    @property
    def value(self) -> str:
        """The KeyNote compliance value ("false" for no rights)."""
        return PERMISSION_VALUES[self.bits]

    @property
    def octal(self) -> int:
        """The unix octal digit (0-7)."""
        return self.bits

    @property
    def can_read(self) -> bool:
        return bool(self.bits & R_BIT)

    @property
    def can_write(self) -> bool:
        return bool(self.bits & W_BIT)

    @property
    def can_execute(self) -> bool:
        return bool(self.bits & X_BIT)

    # -- lattice operations -------------------------------------------------

    def covers(self, required: "Permission") -> bool:
        """True if every right in ``required`` is present here."""
        return (self.bits & required.bits) == required.bits

    def intersect(self, other: "Permission") -> "Permission":
        return Permission(self.bits & other.bits)

    def union(self, other: "Permission") -> "Permission":
        return Permission(self.bits | other.bits)

    def __str__(self) -> str:
        return self.value


#: Rights each NFS-level operation requires, applied to the file handle the
#: operation addresses (the directory, for name-taking operations).
#: Follows unix semantics: X to traverse/lookup, R to read or list,
#: W (+X for namespace changes) to modify.
OPERATION_REQUIREMENTS: dict[str, Permission] = {
    "null": Permission.none(),
    "statfs": Permission.none(),
    "getattr": Permission.none(),
    "lookup": Permission(X_BIT),
    "readdir": Permission(R_BIT),
    "read": Permission(R_BIT),
    "readlink": Permission(R_BIT),
    "link_target": Permission(R_BIT),
    "setattr": Permission(W_BIT),
    "write": Permission(W_BIT),
    "create": Permission(W_BIT | X_BIT),
    "mkdir": Permission(W_BIT | X_BIT),
    "remove": Permission(W_BIT | X_BIT),
    "rmdir": Permission(W_BIT | X_BIT),
    "rename": Permission(W_BIT | X_BIT),
    "symlink": Permission(W_BIT | X_BIT),
    "link": Permission(W_BIT | X_BIT),
}


def required_permission(op: str) -> Permission:
    """Rights required for ``op``; unknown operations require everything."""
    return OPERATION_REQUIREMENTS.get(op, Permission.all())
