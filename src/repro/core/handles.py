"""DisCFS file handles — the names credentials bind rights to.

Paper, section 5: "A file/directory is identified by a handle, which, in
our prototype implementation, is simply the inode number of the
file/directory on the server.  ...  The handle specifics need to be
changed in the future since inodes are not suitable as [a] globally unique
identifier across a network.  A possible solution would be to build a
handle from the inode number and a generation number, similar to the
4.4BSD NFS implementation."

Both schemes are implemented:

* :attr:`HandleScheme.INODE` — the prototype's bare inode number
  (subject to the stale-reuse problem; kept for fidelity and for the
  ablation test that demonstrates the weakness),
* :attr:`HandleScheme.INODE_GENERATION` — inode + generation (default;
  the paper's proposed fix).

A handle is rendered into the ``HANDLE`` action attribute as a decimal
string (matching Figure 5's ``HANDLE == "666240"``) or ``ino.gen``.
"""

from __future__ import annotations

import enum

from repro.fs.inode import Inode
from repro.nfs.protocol import FileHandle


class HandleScheme(enum.Enum):
    """How DisCFS renders file identities into credential handles."""

    INODE = "inode"
    INODE_GENERATION = "inode-generation"

    def render(self, fh: FileHandle) -> str:
        """The HANDLE attribute value for a file handle."""
        if self is HandleScheme.INODE:
            return str(fh.ino)
        return f"{fh.ino}.{fh.generation}"

    def render_inode(self, inode: Inode) -> str:
        return self.render(FileHandle.of(inode))


def ancestor_chain(fs, ino: int, scheme: HandleScheme) -> str:
    """Space-separated handles of all ancestors of ``ino`` (root first).

    Exposed to policies as the ``ANCESTORS`` action attribute, enabling
    subtree credentials (an extension over the per-handle prototype; see
    ``repro.core.credentials.issue_credential(subtree=True)``).
    """
    chain: list[str] = []
    current = ino
    seen = set()
    while current not in seen:
        seen.add(current)
        inode = fs.iget(current)
        parent = fs._dir_entries(inode)[".."] if inode.is_dir else None
        if parent is None:
            # Regular files: walk from their directory; the server passes
            # the *parent* ino for non-directories, so this is unreachable
            # unless called directly on a file.
            break
        if parent == current:
            chain.append(scheme.render_inode(inode))
            break
        chain.append(scheme.render_inode(inode))
        current = parent
    return " ".join(reversed(chain))
