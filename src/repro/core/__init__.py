"""DisCFS — the Distributed Credential Filesystem (the paper's contribution).

Everything identity- and authorization-related in DisCFS flows through
KeyNote credentials:

* files are identified by **handles** (:mod:`repro.core.handles`),
* users are identified by their **public keys** — bound to connections by
  the IPsec/IKE layer,
* access rights are **credentials** binding a key to a handle under
  conditions (:mod:`repro.core.credentials`), delegable by simply issuing
  new credentials,
* the server (:mod:`repro.core.server`) gates every NFS operation on a
  KeyNote compliance query (:mod:`repro.core.policy`), memoized in a
  policy cache (:mod:`repro.core.cache`, 128 entries in the paper's
  evaluation),
* ``create``/``mkdir`` return a fresh full-access credential to the
  creator, and revocation (:mod:`repro.core.revocation`) removes keys or
  credentials from consideration.

Quick start::

    from repro.core import Administrator, DisCFSServer, DisCFSClient

    admin = Administrator.generate(seed=b"demo")
    server = DisCFSServer(admin_identity=admin.identity)
    admin.trust_server(server)

    client = DisCFSClient.connect(server, user_key)   # IKE handshake inside
    client.attach("/")                                # perms are 000 so far
    client.submit_credential(cred_text)               # file becomes visible
    data = client.read_path("/testdir/paper.tex")
"""

from repro.core.admin import Administrator
from repro.core.client import DisCFSClient
from repro.core.credentials import CredentialIssuer, issue_credential
from repro.core.handles import HandleScheme
from repro.core.permissions import PERMISSION_VALUES, Permission
from repro.core.server import DisCFSServer

__all__ = [
    "Administrator",
    "DisCFSClient",
    "DisCFSServer",
    "CredentialIssuer",
    "issue_credential",
    "HandleScheme",
    "Permission",
    "PERMISSION_VALUES",
]
