"""An IPsec-like secure channel with IKE-style identity binding.

The DisCFS prototype ran NFS over IPsec: the IKE key-establishment phase
authenticated the client's *public key*, and all subsequent NFS requests on
that Security Association could be attributed to that key (paper sections
4.3 and 5).  That binding — "requests on this channel come from key K" —
is the only property DisCFS needs from IPsec, and it is exactly what this
package provides:

* :mod:`repro.ipsec.ike` — a two-round-trip signed Diffie-Hellman
  handshake; each peer proves possession of its signature key over the
  handshake transcript,
* :mod:`repro.ipsec.sa` — security associations: per-direction keys,
  sequence numbers with replay protection, lifetimes,
* :mod:`repro.ipsec.channel` — an ESP-like record layer (encrypt-then-MAC)
  carried over any RPC transport, with a client wrapper and a server-side
  demultiplexer that hands the bound identity to the RPC layer.

The wire format is simulation-grade (we are not interoperating with real
IKE/ESP), but the security architecture — ephemeral DH, transcript
signatures, per-SA keys, sequence-number replay windows — matches.
"""

from repro.ipsec.channel import SecureChannelServer, SecureTransport
from repro.ipsec.ike import IKEInitiator, IKEResponder
from repro.ipsec.sa import SecurityAssociation

__all__ = [
    "SecureTransport",
    "SecureChannelServer",
    "IKEInitiator",
    "IKEResponder",
    "SecurityAssociation",
]
