"""ESP-like record layer over an RPC transport.

Record format (all integers big-endian)::

    type(1) | spi(4) | seq(8) | ciphertext | hmac-sha256(32)

The MAC covers type, SPI, sequence number and ciphertext
(encrypt-then-MAC).  The stream-cipher nonce is derived from the SPI and
direction; the block counter offset from the sequence number, so every
record uses a fresh keystream segment.

:class:`SecureTransport` is a drop-in RPC transport: the first call runs
the IKE handshake transparently.  :class:`SecureChannelServer` wraps a
:class:`repro.rpc.server.RPCServer`, unwrapping records, looking up the SA
by SPI, and dispatching with ``peer_identity`` set to the key proven at
handshake time — from here on, the DisCFS server can treat "request
arrived on SA" as "request signed by key".
"""

from __future__ import annotations

import struct
import threading

from repro.crypto.cipher import StreamCipher
from repro.crypto.hashes import constant_time_equal, hmac_digest
from repro.errors import ChannelError, HandshakeError, IntegrityError
from repro.ipsec.ike import MSG_DONE, IKEInitiator, IKEResponder
from repro.ipsec.sa import DirectionState, SecurityAssociation
from repro.rpc.transport import Transport, TransportStats

MSG_DATA = 16

_HEADER = struct.Struct(">BIQ")
_MAC_LEN = 32
_RECORD_OVERHEAD = _HEADER.size + _MAC_LEN


def _seal(direction: DirectionState, spi: int, payload: bytes) -> bytes:
    seq = direction.allocate_seq()
    header = _HEADER.pack(MSG_DATA, spi, seq)
    nonce = spi.to_bytes(4, "big") + b"\x00" * 8
    cipher = StreamCipher(direction.enc_key, nonce)
    # Each record gets a disjoint keystream region via the seq in the offset.
    ciphertext = cipher.process(payload, offset=seq << 32)
    mac = hmac_digest(direction.mac_key, header + ciphertext)
    return header + ciphertext + mac


def _open(direction: DirectionState, expected_spi: int, record: bytes) -> bytes:
    if len(record) < _RECORD_OVERHEAD:
        raise IntegrityError("record too short")
    mtype, spi, seq = _HEADER.unpack_from(record)
    if mtype != MSG_DATA:
        raise IntegrityError(f"unexpected record type {mtype}")
    if spi != expected_spi:
        raise IntegrityError(f"SPI mismatch: record {spi:#x}, SA {expected_spi:#x}")
    body, mac = record[_HEADER.size : -_MAC_LEN], record[-_MAC_LEN:]
    expected_mac = hmac_digest(direction.mac_key, record[: -_MAC_LEN])
    if not constant_time_equal(mac, expected_mac):
        raise IntegrityError("record MAC verification failed")
    direction.accept_seq(seq)
    nonce = spi.to_bytes(4, "big") + b"\x00" * 8
    cipher = StreamCipher(direction.enc_key, nonce)
    return cipher.process(body, offset=seq << 32)


class SecureTransport:
    """Client-side transport: IKE on first use, then sealed records.

    Wraps any inner transport; stats count plaintext RPC payload sizes so
    higher layers see consistent numbers with or without the channel.
    """

    def __init__(self, inner: Transport, initiator: IKEInitiator):
        self._inner = inner
        self._initiator = initiator
        self._sa: SecurityAssociation | None = None
        self._lock = threading.Lock()
        self.stats = TransportStats()

    @property
    def sa(self) -> SecurityAssociation | None:
        return self._sa

    @property
    def peer_identity(self) -> str | None:
        return self._sa.peer_identity if self._sa else None

    def handshake(self) -> SecurityAssociation:
        """Run the IKE exchange now (otherwise it runs on first call)."""
        with self._lock:
            return self._ensure_sa()

    def _ensure_sa(self) -> SecurityAssociation:
        if self._sa is not None:
            return self._sa
        response = self._inner.call(self._initiator.initiate())
        confirm, sa = self._initiator.handle_response(response)
        done = self._inner.call(confirm)
        if not done or done[0] != MSG_DONE:
            raise HandshakeError("server did not complete the handshake")
        self._sa = sa
        return sa

    def call(self, request: bytes) -> bytes:
        with self._lock:
            sa = self._ensure_sa()
            sa.check_alive()
            self.stats.calls += 1
            self.stats.bytes_sent += len(request)
            record = _seal(sa.send, sa.spi, request)
            sa.account(sa.send, len(record))
            raw = self._inner.call(record)
            response = _open(sa.recv, sa.spi, raw)
            sa.account(sa.recv, len(raw))
            self.stats.bytes_received += len(response)
            return response

    def rekey(self) -> SecurityAssociation:
        """Drop the SA and negotiate a fresh one."""
        with self._lock:
            self._sa = None
            return self._ensure_sa()

    def close(self) -> None:
        self._inner.close()


class SecureChannelServer:
    """Server-side demultiplexer: handshakes + sealed RPC dispatch.

    ``handler`` receives ``(plaintext_request, peer_identity)`` and returns
    the plaintext response — typically
    ``lambda req, ident: rpc_server.handle(req, peer_identity=ident)``.
    """

    def __init__(self, responder: IKEResponder, handler):
        self._responder = responder
        self._handler = handler
        self._sas: dict[int, SecurityAssociation] = {}
        self._lock = threading.Lock()

    @property
    def active_sas(self) -> list[SecurityAssociation]:
        with self._lock:
            return list(self._sas.values())

    def revoke_identity(self, identity: str) -> int:
        """Tear down every SA bound to ``identity``; returns the count.

        Used by DisCFS revocation: once the administrator declares a key
        bad, its existing channels die too.
        """
        with self._lock:
            doomed = [spi for spi, sa in self._sas.items()
                      if sa.peer_identity == identity]
            for spi in doomed:
                del self._sas[spi]
            return len(doomed)

    def handle(self, message: bytes) -> bytes:
        """The ``bytes -> bytes`` entry point pluggable into any transport."""
        if not message:
            raise ChannelError("empty channel message")
        mtype = message[0]
        if mtype == MSG_DATA:
            return self._handle_data(message)
        if mtype == 1:  # MSG_INIT
            return self._responder.handle_init(message)
        if mtype == 3:  # MSG_CONFIRM
            done, sa = self._responder.handle_confirm(message)
            with self._lock:
                self._sas[sa.spi] = sa
            return done
        raise ChannelError(f"unexpected channel message type {mtype}")

    def _handle_data(self, record: bytes) -> bytes:
        if len(record) < _HEADER.size:
            raise IntegrityError("record too short")
        _mtype, spi, _seq = _HEADER.unpack_from(record)
        with self._lock:
            sa = self._sas.get(spi)
        if sa is None:
            raise IntegrityError(f"no SA with SPI {spi:#x}")
        sa.check_alive()
        request = _open(sa.recv, sa.spi, record)
        sa.account(sa.recv, len(record))
        response = self._handler(request, sa.peer_identity)
        sealed = _seal(sa.send, sa.spi, response)
        sa.account(sa.send, len(sealed))
        return sealed
