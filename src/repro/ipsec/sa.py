"""Security associations: keys, sequence numbers, lifetimes."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.crypto.cipher import derive_key
from repro.errors import IntegrityError, SAExpired


@dataclass
class SALifetime:
    """Limits after which an SA must be rekeyed (IKE-style)."""

    max_seconds: float = 3600.0
    max_messages: int = 1 << 32
    max_bytes: int = 1 << 40


@dataclass
class DirectionState:
    """Per-direction key material and sequence tracking."""

    enc_key: bytes
    mac_key: bytes
    next_seq: int = 1
    highest_seen: int = 0
    bytes_processed: int = 0
    messages: int = 0

    def allocate_seq(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def accept_seq(self, seq: int) -> None:
        """Strictly-increasing replay check (RPC is one-at-a-time per SA)."""
        if seq <= self.highest_seen:
            raise IntegrityError(f"replayed or reordered sequence number {seq}")
        self.highest_seen = seq


@dataclass
class SecurityAssociation:
    """One established SA between an initiator and a responder.

    ``peer_identity`` is the canonical public-key identifier of the remote
    peer, as proven during the IKE handshake — this is the principal
    DisCFS uses for every request arriving on the SA.
    """

    spi: int
    peer_identity: str
    local_identity: str
    send: DirectionState
    recv: DirectionState
    established_at: float = field(default_factory=time.time)
    lifetime: SALifetime = field(default_factory=SALifetime)

    @classmethod
    def derive(
        cls,
        spi: int,
        shared_secret: bytes,
        nonce_i: bytes,
        nonce_r: bytes,
        peer_identity: str,
        local_identity: str,
        is_initiator: bool,
        lifetime: SALifetime | None = None,
    ) -> "SecurityAssociation":
        """Derive directional keys from the DH secret and nonces.

        Both sides derive the same two key sets; which is "send" depends
        on the role, so initiator.send pairs with responder.recv.
        """
        material = shared_secret + nonce_i + nonce_r
        i2r = DirectionState(
            enc_key=derive_key(material, label=b"ipsec-i2r-enc"),
            mac_key=derive_key(material, label=b"ipsec-i2r-mac"),
        )
        r2i = DirectionState(
            enc_key=derive_key(material, label=b"ipsec-r2i-enc"),
            mac_key=derive_key(material, label=b"ipsec-r2i-mac"),
        )
        send, recv = (i2r, r2i) if is_initiator else (r2i, i2r)
        return cls(
            spi=spi,
            peer_identity=peer_identity,
            local_identity=local_identity,
            send=send,
            recv=recv,
            lifetime=lifetime if lifetime is not None else SALifetime(),
        )

    def check_alive(self) -> None:
        """Raise :class:`SAExpired` if any lifetime bound is exceeded."""
        life = self.lifetime
        if time.time() - self.established_at > life.max_seconds:
            raise SAExpired(f"SA {self.spi:#x} exceeded time lifetime")
        if self.send.messages + self.recv.messages > life.max_messages:
            raise SAExpired(f"SA {self.spi:#x} exceeded message lifetime")
        if self.send.bytes_processed + self.recv.bytes_processed > life.max_bytes:
            raise SAExpired(f"SA {self.spi:#x} exceeded byte lifetime")

    def account(self, direction: DirectionState, nbytes: int) -> None:
        direction.messages += 1
        direction.bytes_processed += nbytes
