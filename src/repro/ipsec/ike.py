"""IKE-style authenticated key establishment.

Two round trips establish an SA and mutually authenticate public keys::

    Initiator                                Responder
    --------- INIT(nonce_i, g^x, id_i) ---------->
    <-- RESP(spi, nonce_r, g^y, id_r, sig_r) -----
    --------- CONFIRM(spi, sig_i) --------------->
    <---------------- DONE -----------------------

Both signatures cover the full handshake transcript (nonces, DH public
values, both identities), so neither side can be impersonated and the DH
exchange cannot be man-in-the-middled by an attacker without one of the
signature keys.  The DH group is the Schnorr subgroup of the library's
default DSA parameters (160-bit exponents, 1024-bit modulus).

The responder learns — and records on the SA — the *initiator's public
key*: the identity every subsequent request on the channel is attributed
to.  No account, username, or prior registration is involved; this is the
paper's "user authentication is handled through the creation of the IPsec
Security Associations".
"""

from __future__ import annotations

import secrets
import struct
from dataclasses import dataclass

from repro.crypto.dsa import DEFAULT_PARAMETERS, DSAKeyPair
from repro.crypto.keycodec import (
    decode_key,
    decode_signature,
    encode_public_key,
    encode_signature,
    signature_scheme,
)
from repro.crypto.numbers import int_to_bytes
from repro.crypto.rsa import RSAKeyPair
from repro.errors import HandshakeError, InvalidKey, InvalidSignature
from repro.ipsec.sa import SALifetime, SecurityAssociation

NONCE_LEN = 16
_GROUP = DEFAULT_PARAMETERS  # DH in the order-q subgroup mod p

MSG_INIT = 1
MSG_RESP = 2
MSG_CONFIRM = 3
MSG_DONE = 4

_U32 = struct.Struct(">I")


def _pack_fields(*fields: bytes) -> bytes:
    out = bytearray()
    for f in fields:
        out += _U32.pack(len(f))
        out += f
    return bytes(out)


def _unpack_fields(data: bytes, count: int) -> list[bytes]:
    fields = []
    pos = 0
    for _ in range(count):
        if pos + 4 > len(data):
            raise HandshakeError("truncated handshake message")
        length = _U32.unpack_from(data, pos)[0]
        pos += 4
        if pos + length > len(data):
            raise HandshakeError("truncated handshake message")
        fields.append(data[pos : pos + length])
        pos += length
    if pos != len(data):
        raise HandshakeError("trailing bytes in handshake message")
    return fields


def _transcript(nonce_i: bytes, nonce_r: bytes, gx: bytes, gy: bytes,
                id_i: str, id_r: str) -> bytes:
    return _pack_fields(nonce_i, nonce_r, gx, gy,
                        id_i.encode("utf-8"), id_r.encode("utf-8"))


def _sign(key: DSAKeyPair | RSAKeyPair, message: bytes) -> bytes:
    raw = key.sign(message, hash_name="sha1")
    return encode_signature(key.algorithm, "sha1", raw).encode("ascii")


def _verify(identity: str, message: bytes, signature: bytes) -> None:
    try:
        key = decode_key(identity)
    except InvalidKey as exc:
        raise HandshakeError(f"peer identity is not a valid key: {exc}") from exc
    public = getattr(key, "public", key)
    sig_text = signature.decode("ascii", errors="replace")
    try:
        algorithm, hash_name, _enc = signature_scheme(sig_text)
        value = decode_signature(sig_text)
        if algorithm != public.algorithm:
            raise HandshakeError("signature/key algorithm mismatch")
        public.verify(message, value, hash_name=hash_name)
    except InvalidSignature as exc:
        raise HandshakeError(f"handshake signature invalid: {exc}") from exc


@dataclass
class _HalfOpen:
    nonce_i: bytes
    nonce_r: bytes
    gx: bytes
    gy: bytes
    peer_identity: str
    shared_secret: bytes


class IKEInitiator:
    """Client side of the handshake."""

    def __init__(self, key: DSAKeyPair | RSAKeyPair):
        self.key = key
        self.identity = encode_public_key(key)
        self._x = 0
        self._nonce_i = b""
        self._state: _HalfOpen | None = None

    def initiate(self) -> bytes:
        """Build the INIT message."""
        self._x = 2 + secrets.randbelow(_GROUP.q - 3)
        gx = pow(_GROUP.g, self._x, _GROUP.p)
        self._nonce_i = secrets.token_bytes(NONCE_LEN)
        body = _pack_fields(
            self._nonce_i, int_to_bytes(gx), self.identity.encode("utf-8")
        )
        return bytes([MSG_INIT]) + body

    def handle_response(self, message: bytes) -> tuple[bytes, SecurityAssociation]:
        """Process RESP; returns (CONFIRM message, established SA)."""
        if not message or message[0] != MSG_RESP:
            raise HandshakeError("expected RESP message")
        spi_raw, nonce_r, gy_raw, id_r_raw, sig_r = _unpack_fields(message[1:], 5)
        spi = _U32.unpack(spi_raw)[0]
        gy = int.from_bytes(gy_raw, "big")
        if not 1 < gy < _GROUP.p - 1:
            raise HandshakeError("responder DH value out of range")
        id_r = id_r_raw.decode("utf-8")
        gx = int_to_bytes(pow(_GROUP.g, self._x, _GROUP.p))
        transcript = _transcript(self._nonce_i, nonce_r, gx, gy_raw,
                                 self.identity, id_r)
        _verify(id_r, transcript, sig_r)

        shared = int_to_bytes(pow(gy, self._x, _GROUP.p))
        sa = SecurityAssociation.derive(
            spi=spi,
            shared_secret=shared,
            nonce_i=self._nonce_i,
            nonce_r=nonce_r,
            peer_identity=id_r,
            local_identity=self.identity,
            is_initiator=True,
        )
        sig_i = _sign(self.key, transcript)
        confirm = bytes([MSG_CONFIRM]) + _pack_fields(spi_raw, sig_i)
        return confirm, sa


class IKEResponder:
    """Server side of the handshake; manages half-open exchanges by SPI."""

    def __init__(self, key: DSAKeyPair | RSAKeyPair,
                 lifetime: SALifetime | None = None):
        self.key = key
        self.identity = encode_public_key(key)
        self.lifetime = lifetime
        self._half_open: dict[int, _HalfOpen] = {}

    def handle_init(self, message: bytes) -> bytes:
        """Process INIT; returns the RESP message."""
        if not message or message[0] != MSG_INIT:
            raise HandshakeError("expected INIT message")
        nonce_i, gx_raw, id_i_raw = _unpack_fields(message[1:], 3)
        if len(nonce_i) != NONCE_LEN:
            raise HandshakeError("bad initiator nonce length")
        gx = int.from_bytes(gx_raw, "big")
        if not 1 < gx < _GROUP.p - 1:
            raise HandshakeError("initiator DH value out of range")
        id_i = id_i_raw.decode("utf-8")

        y = 2 + secrets.randbelow(_GROUP.q - 3)
        gy_raw = int_to_bytes(pow(_GROUP.g, y, _GROUP.p))
        nonce_r = secrets.token_bytes(NONCE_LEN)
        spi = secrets.randbits(32) or 1
        while spi in self._half_open:
            spi = secrets.randbits(32) or 1

        transcript = _transcript(nonce_i, nonce_r, gx_raw, gy_raw, id_i, self.identity)
        sig_r = _sign(self.key, transcript)
        shared = int_to_bytes(pow(gx, y, _GROUP.p))
        self._half_open[spi] = _HalfOpen(
            nonce_i=nonce_i, nonce_r=nonce_r, gx=gx_raw, gy=gy_raw,
            peer_identity=id_i, shared_secret=shared,
        )
        return bytes([MSG_RESP]) + _pack_fields(
            _U32.pack(spi), nonce_r, gy_raw, self.identity.encode("utf-8"), sig_r
        )

    def handle_confirm(self, message: bytes) -> tuple[bytes, SecurityAssociation]:
        """Process CONFIRM; returns (DONE message, established SA)."""
        if not message or message[0] != MSG_CONFIRM:
            raise HandshakeError("expected CONFIRM message")
        spi_raw, sig_i = _unpack_fields(message[1:], 2)
        spi = _U32.unpack(spi_raw)[0]
        half = self._half_open.pop(spi, None)
        if half is None:
            raise HandshakeError(f"no half-open exchange with SPI {spi:#x}")
        transcript = _transcript(half.nonce_i, half.nonce_r, half.gx, half.gy,
                                 half.peer_identity, self.identity)
        _verify(half.peer_identity, transcript, sig_i)
        sa = SecurityAssociation.derive(
            spi=spi,
            shared_secret=half.shared_secret,
            nonce_i=half.nonce_i,
            nonce_r=half.nonce_r,
            peer_identity=half.peer_identity,
            local_identity=self.identity,
            is_initiator=False,
            lifetime=self.lifetime,
        )
        return bytes([MSG_DONE]), sa
