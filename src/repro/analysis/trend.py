"""Nightly lint-trend records: per-rule counts with run-over-run deltas.

The nightly workflow already snapshots ``discfs lint --json`` as an
artifact, but artifacts expire and a raw finding dump does not answer
the question a trend exists for: *is anything creeping?*  This module
turns one ``--json`` report into a compact jsonl record — per-rule
finding counts plus the suppressed/grandfathered totals — appends it to
a committed trend file (the same pattern as the ``BENCH_*.json``
trajectory records), and prints a one-line delta against the previous
run so the nightly log shows drift without anyone diffing artifacts.

Usage (what the nightly workflow runs)::

    python -m repro.analysis.trend lint-trend.json LINT_TREND.jsonl
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Sequence

__all__ = ["delta_line", "main", "record_from_report"]

#: Summary counters carried into every record and diffed run-over-run.
_SUMMARY_KEYS = ("errors", "warnings", "suppressed", "grandfathered")


def record_from_report(report: dict[str, Any]) -> dict[str, Any]:
    """One trend record from a ``discfs lint --json`` report.

    Every selected rule appears in ``per_rule`` (zero included), so a
    rule that stops running is distinguishable from one that stops
    finding things.
    """
    counts: dict[str, int] = {
        str(rule): 0 for rule in report.get("rules", [])
    }
    for finding in report.get("findings", []):
        rule = str(finding["rule"])
        counts[rule] = counts.get(rule, 0) + 1
    summary = report.get("summary", {})
    record: dict[str, Any] = {
        "version": 1,
        "files_checked": int(report.get("files_checked", 0)),
        "per_rule": counts,
    }
    for key in _SUMMARY_KEYS:
        record[key] = int(summary.get(key, 0))
    return record


def delta_line(prev: dict[str, Any] | None, cur: dict[str, Any]) -> str:
    """Human-readable drift vs the previous record, for the run log."""
    if prev is None:
        return "lint-trend: first record, no previous run to diff"
    parts: list[str] = []
    for key in _SUMMARY_KEYS:
        diff = int(cur.get(key, 0)) - int(prev.get(key, 0))
        if diff:
            parts.append(f"{key} {diff:+d}")
    prev_rules: dict[str, Any] = prev.get("per_rule", {})
    cur_rules: dict[str, Any] = cur.get("per_rule", {})
    for rule in sorted(set(prev_rules) | set(cur_rules)):
        diff = int(cur_rules.get(rule, 0)) - int(prev_rules.get(rule, 0))
        if diff:
            parts.append(f"{rule} {diff:+d}")
    if not parts:
        return "lint-trend: no change vs previous run"
    return "lint-trend: " + ", ".join(parts)


def _last_record(trend_path: Path) -> dict[str, Any] | None:
    if not trend_path.is_file():
        return None
    lines = [
        line for line in
        trend_path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    if not lines:
        return None
    last = json.loads(lines[-1])
    assert isinstance(last, dict)
    return last


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 2:
        print(
            "usage: python -m repro.analysis.trend "
            "<lint-report.json> <trend.jsonl>",
            file=sys.stderr,
        )
        return 2
    report_path, trend_path = Path(args[0]), Path(args[1])
    report = json.loads(report_path.read_text(encoding="utf-8"))
    if not isinstance(report, dict):
        print(f"error: {report_path} is not a lint --json report",
              file=sys.stderr)
        return 2
    current = record_from_report(report)
    print(delta_line(_last_record(trend_path), current))
    with trend_path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(current, sort_keys=True) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
