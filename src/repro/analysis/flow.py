"""Flow-sensitive core for the v2 checkers: per-function CFGs + dataflow.

The v1 rules were syntactic walks; the invariants this package grew for
— fsync-before-child ordering, span propagation, quorum arithmetic —
are statements about *paths*, so they need a control-flow graph and a
dataflow fixpoint, not a tree visitor.  This module is that shared
core:

* :func:`build_cfg` — one :class:`CFG` per function body, built from
  stdlib ``ast``.  Each node is one statement (compound statements
  contribute a *header* node for the part evaluated at that point: the
  ``if``/``while`` test, the ``for`` iterable, the ``with`` items);
  edges cover branches, loops (with back edges), ``try``/``except``/
  ``finally``, ``with`` blocks, and early exits (``return``/``raise``/
  ``break``/``continue``).
* exception edges — inside a ``try`` body, every statement that can
  raise gets an *exceptional* successor into each handler (and the
  ``finally`` block).  Exceptional edges propagate the facts holding
  **before** the statement, because a raising statement never completed.
* :func:`must_facts` — a forward "must have occurred" analysis: the
  facts guaranteed to have been established on *every* path from entry,
  merged by set intersection at joins.  This is what dominance-style
  rules ("the fsync must precede every child write") are phrased in.

Deliberate approximations, all in the conservative direction for a
must-analysis (extra paths can only *shrink* a must-set, so they cause
findings, never hide them): ``break``/``continue`` jump straight to
their loop targets even when a ``finally`` intervenes, and one
``finally`` body stands in for every exit kind that routes through it.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

__all__ = [
    "CFG",
    "FlowNode",
    "build_cfg",
    "header_exprs",
    "must_facts",
    "stmt_can_raise",
]


@dataclass
class FlowNode:
    """One CFG node: a statement (or a synthetic entry/exit/join point).

    ``succs`` are normal-completion edges; ``exc_succs`` are taken only
    when the statement raises, so dataflow propagates the *pre*-state
    along them.
    """

    index: int
    stmt: ast.stmt | None
    succs: set[int] = field(default_factory=set)
    exc_succs: set[int] = field(default_factory=set)
    label: str = ""


class CFG:
    """Control-flow graph of one function body.

    ``nodes[ENTRY]`` and ``nodes[EXIT]`` are synthetic; every other node
    carries exactly one ``ast.stmt``.  ``node_of`` maps a statement back
    to its node (by identity), so checkers can walk the AST to find the
    statements they care about and then ask the dataflow what holds
    there.
    """

    ENTRY = 0
    EXIT = 1

    def __init__(self) -> None:
        self.nodes: list[FlowNode] = [
            FlowNode(self.ENTRY, None, label="entry"),
            FlowNode(self.EXIT, None, label="exit"),
        ]
        self._by_stmt: dict[int, int] = {}

    def new_node(self, stmt: ast.stmt | None, label: str = "") -> int:
        index = len(self.nodes)
        self.nodes.append(FlowNode(index, stmt, label=label))
        if stmt is not None:
            self._by_stmt[id(stmt)] = index
        return index

    def node_of(self, stmt: ast.stmt) -> int | None:
        """Node index of ``stmt``, or None for statements the builder
        does not model as nodes (e.g. the body of a nested ``def``)."""
        return self._by_stmt.get(id(stmt))

    def statements(self) -> Iterator[tuple[int, ast.stmt]]:
        for node in self.nodes:
            if node.stmt is not None:
                yield node.index, node.stmt

    def edge(self, src: int, dst: int) -> None:
        self.nodes[src].succs.add(dst)

    def exc_edge(self, src: int, dst: int) -> None:
        self.nodes[src].exc_succs.add(dst)


#: Expression types whose evaluation can raise for our purposes.  Broad
#: on purpose: attribute access and subscripts raise in this codebase
#: (closed stores, missing blocks), and any call can.
_RAISING_EXPRS = (
    ast.Call,
    ast.Attribute,
    ast.Subscript,
    ast.BinOp,
    ast.Await,
)


def header_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions evaluated *at* a statement's CFG node — for a
    compound statement that is just its header (test / iterable /
    context items), because the nested bodies have nodes of their own."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    out: list[ast.expr] = []
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            out.append(child)
    return out


def stmt_can_raise(stmt: ast.stmt) -> bool:
    """Whether evaluating ``stmt``'s own node (header only, for compound
    statements) can raise.  ``raise`` and ``assert`` always can."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(stmt, (ast.Pass, ast.Break, ast.Continue,
                         ast.Global, ast.Nonlocal, ast.Import,
                         ast.ImportFrom)):
        return False
    for expr in header_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, _RAISING_EXPRS):
                return True
    return False


@dataclass
class _LoopCtx:
    header: int
    breaks: list[int] = field(default_factory=list)


@dataclass
class _TryCtx:
    """Exception routing while building statements: where a raise goes.

    ``handlers`` are this try's handler entry join points (empty while
    building ``orelse``/handler bodies, whose exceptions escape the
    try); ``final`` is the ``finally`` join point, if any.
    """

    handlers: list[int] = field(default_factory=list)
    final: int | None = None
    abrupt_into_final: bool = False


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.loops: list[_LoopCtx] = []
        self.tries: list[_TryCtx] = []

    # -- wiring helpers ----------------------------------------------------

    def _join(self, frontier: list[int], node: int) -> None:
        for src in frontier:
            self.cfg.edge(src, node)

    def _exc_targets(self) -> list[int]:
        """Where an exception raised at the current point can land."""
        targets: list[int] = []
        for ctx in reversed(self.tries):
            targets.extend(ctx.handlers)
            if ctx.final is not None:
                targets.append(ctx.final)
                ctx.abrupt_into_final = True
                # Uncaught exceptions keep unwinding past the finally,
                # but the finally->EXIT edge added at build time covers
                # that continuation; stop at the first finally.
            if ctx.handlers or ctx.final is not None:
                return targets
        return targets

    def _abrupt_exit_target(self) -> int:
        """Where ``return``/uncaught ``raise`` control goes: the nearest
        enclosing ``finally`` join (which also routes to EXIT), else
        EXIT itself."""
        for ctx in reversed(self.tries):
            if ctx.final is not None:
                ctx.abrupt_into_final = True
                return ctx.final
        return CFG.EXIT

    # -- construction ------------------------------------------------------

    def build(self, body: list[ast.stmt]) -> CFG:
        frontier = self.build_body(body, [CFG.ENTRY])
        self._join(frontier, CFG.EXIT)
        return self.cfg

    def build_body(self, body: list[ast.stmt],
                   frontier: list[int]) -> list[int]:
        for stmt in body:
            frontier = self.build_stmt(stmt, frontier)
        return frontier

    def build_stmt(self, stmt: ast.stmt,
                   frontier: list[int]) -> list[int]:
        node = self.cfg.new_node(stmt)
        self._join(frontier, node)
        if stmt_can_raise(stmt) and not isinstance(stmt, ast.Raise):
            for target in self._exc_targets():
                self.cfg.exc_edge(node, target)

        if isinstance(stmt, ast.If):
            body_frontier = self.build_body(stmt.body, [node])
            if stmt.orelse:
                else_frontier = self.build_body(stmt.orelse, [node])
            else:
                else_frontier = [node]
            return body_frontier + else_frontier

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            ctx = _LoopCtx(header=node)
            self.loops.append(ctx)
            body_frontier = self.build_body(stmt.body, [node])
            self.loops.pop()
            self._join(body_frontier, node)  # back edge
            infinite = (
                isinstance(stmt, ast.While)
                and isinstance(stmt.test, ast.Constant)
                and bool(stmt.test.value)
            )
            if infinite:
                exit_frontier: list[int] = []
            elif stmt.orelse:
                exit_frontier = self.build_body(stmt.orelse, [node])
            else:
                exit_frontier = [node]
            return exit_frontier + ctx.breaks

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.build_body(stmt.body, [node])

        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, node)

        if isinstance(stmt, ast.Match):
            frontiers: list[int] = []
            exhaustive = False
            for case in stmt.cases:
                frontiers.extend(self.build_body(case.body, [node]))
                if (isinstance(case.pattern, ast.MatchAs)
                        and case.pattern.pattern is None
                        and case.guard is None):
                    exhaustive = True
            if not exhaustive:
                frontiers.append(node)
            return frontiers

        if isinstance(stmt, ast.Return):
            self.cfg.edge(node, self._abrupt_exit_target())
            return []

        if isinstance(stmt, ast.Raise):
            targets = self._exc_targets()
            if not targets:
                targets = [self._abrupt_exit_target()]
            for target in targets:
                self.cfg.edge(node, target)
            return []

        if isinstance(stmt, ast.Break):
            if self.loops:
                self.loops[-1].breaks.append(node)
            return []

        if isinstance(stmt, ast.Continue):
            if self.loops:
                self.cfg.edge(node, self.loops[-1].header)
            return []

        # Nested def/class: one opaque node, no flow into the body.
        return [node]

    def _build_try(self, stmt: ast.Try, node: int) -> list[int]:
        handler_entries = [
            self.cfg.new_node(None, label="except") for _ in stmt.handlers
        ]
        final_entry = (
            self.cfg.new_node(None, label="finally")
            if stmt.finalbody else None
        )
        ctx = _TryCtx(handlers=handler_entries, final=final_entry)

        self.tries.append(ctx)
        body_frontier = self.build_body(stmt.body, [node])
        self.tries.pop()

        # orelse and handler bodies: their exceptions escape this try's
        # handlers but still pass through its finally.
        escape_ctx = _TryCtx(handlers=[], final=final_entry)
        self.tries.append(escape_ctx)
        if stmt.orelse:
            normal_frontier = self.build_body(stmt.orelse, body_frontier)
        else:
            normal_frontier = body_frontier
        handler_frontiers: list[int] = []
        for entry, _handler in zip(handler_entries, stmt.handlers):
            handler_frontiers.extend(
                self.build_body(_handler.body, [entry])
            )
        self.tries.pop()
        if escape_ctx.abrupt_into_final:
            ctx.abrupt_into_final = True

        if final_entry is None:
            return normal_frontier + handler_frontiers

        self._join(normal_frontier + handler_frontiers, final_entry)
        final_frontier = self.build_body(stmt.finalbody, [final_entry])
        if ctx.abrupt_into_final:
            # An exception / early return that routed through the
            # finally keeps unwinding afterwards instead of falling
            # through to the next statement.
            self._join(final_frontier, CFG.EXIT)
        return final_frontier


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """CFG of ``fn``'s body.  Nested function/class bodies are opaque
    single nodes (they execute at call time, not here)."""
    return _Builder().build(fn.body)


def must_facts(
    cfg: CFG,
    gen: Callable[[ast.stmt], Iterable[str]],
) -> dict[int, frozenset[str]]:
    """Forward must-analysis: for each node, the facts established on
    *every* path from entry to just **before** that node.

    ``gen(stmt)`` names the facts a completed statement establishes.
    Merge at joins is set intersection; an exceptional edge contributes
    the facts from before its source statement (the statement did not
    complete).  Unreachable nodes keep the full universe (vacuously
    dominated).
    """
    gen_sets: dict[int, frozenset[str]] = {}
    for node in cfg.nodes:
        facts = frozenset(gen(node.stmt)) if node.stmt is not None \
            else frozenset()
        gen_sets[node.index] = facts
    universe: frozenset[str] = frozenset().union(*gen_sets.values())

    normal_preds: dict[int, list[int]] = {n.index: [] for n in cfg.nodes}
    exc_preds: dict[int, list[int]] = {n.index: [] for n in cfg.nodes}
    for node in cfg.nodes:
        for succ in node.succs:
            normal_preds[succ].append(node.index)
        for succ in node.exc_succs:
            exc_preds[succ].append(node.index)

    in_facts: dict[int, frozenset[str]] = {
        n.index: universe for n in cfg.nodes
    }
    in_facts[CFG.ENTRY] = frozenset()

    worklist: deque[int] = deque(n.index for n in cfg.nodes)
    while worklist:
        index = worklist.popleft()
        if index == CFG.ENTRY:
            continue
        incoming: frozenset[str] | None = None
        for pred in normal_preds[index]:
            out = in_facts[pred] | gen_sets[pred]
            incoming = out if incoming is None else incoming & out
        for pred in exc_preds[index]:
            pre = in_facts[pred]
            incoming = pre if incoming is None else incoming & pre
        if incoming is None:
            continue  # unreachable: keep universe
        if incoming != in_facts[index]:
            in_facts[index] = incoming
            node = cfg.nodes[index]
            for succ in node.succs | node.exc_succs:
                worklist.append(succ)
    return in_facts
