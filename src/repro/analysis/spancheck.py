"""span-propagation: every RPC dispatch carries the trace envelope.

The tracing plane (PR 7) only works end-to-end if two hand-offs never
drop the span context:

1. **Wire hand-off** — a tracing RPC wrapper (a class that defines
   ``_trace_start``) must pass ``cred=`` on every ``.call`` /
   ``.call_async`` it issues; that keyword is how the span rides the
   AUTH_NONE credential body to the server.  The NULL procedure
   (literal proc ``0``) is exempt — it is the liveness probe and
   carries no envelope by design.

2. **Thread hand-off** — the storage plane's fan-out pools (shard
   fan-out, replica lanes, reshard movers) run work on long-lived
   threads, where ``contextvars`` do **not** flow implicitly.  Every
   ``submit``/``map`` on an executor must run the task under a
   ``contextvars.copy_context()`` taken on the *submitting* thread
   (``pool.submit(contextvars.copy_context().run, task)`` or a local
   ``ctx = contextvars.copy_context()`` proven, by must-analysis, to be
   assigned on every path first).  An unwrapped submit silently orphans
   every span the task starts — the reshard bug this rule was built on.

Check 2 is scoped to storage-plane modules (path contains a
``storage`` component or the file imports ``repro.storage``): the RPC
fallback executors submit requests that were fully encoded — span
attached — on the caller's thread, so wrapping there is noise.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Checker, Finding, Project, SourceFile
from repro.analysis.flow import build_cfg, header_exprs, must_facts

_FuncDef = ast.FunctionDef | ast.AsyncFunctionDef

_RPC_DISPATCH = frozenset({"call", "call_async"})
_EXECUTOR_DISPATCH = frozenset({"submit", "map"})
_EXECUTOR_TYPE = "ThreadPoolExecutor"


def _calls_at(stmt: ast.stmt) -> Iterator[ast.Call]:
    for expr in header_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                yield node


def _is_self_attr(expr: ast.expr, names: frozenset[str] | None = None) -> bool:
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name) and expr.value.id == "self"
        and (names is None or expr.attr in names)
    )


def _mentions_executor(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id == _EXECUTOR_TYPE:
            return True
        if isinstance(node, ast.Constant) and node.value == _EXECUTOR_TYPE:
            return True
    return False


def _is_copy_context_call(expr: ast.expr) -> bool:
    """``contextvars.copy_context()`` or bare ``copy_context()``."""
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    if isinstance(func, ast.Name):
        return func.id == "copy_context"
    return isinstance(func, ast.Attribute) and func.attr == "copy_context"


def _storage_scoped(sf: SourceFile) -> bool:
    if "storage" in sf.path.parts:
        return True
    if sf.tree is None:
        return False
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.ImportFrom):
            if node.module and node.module.startswith("repro.storage"):
                return True
        elif isinstance(node, ast.Import):
            if any(a.name.startswith("repro.storage") for a in node.names):
                return True
    return False


class SpanPropagationChecker(Checker):
    """Trace envelope on RPC dispatch; contextvars across pool hops."""

    name = "span-propagation"
    description = (
        "RPC dispatch in tracing wrappers must pass cred= (the span "
        "envelope); executor submit/map in the storage plane must copy "
        "the caller's contextvars"
    )

    def run(self, project: Project) -> Iterable[Finding]:
        for sf in project.files:
            if sf.tree is None:
                continue
            for cls in ast.walk(sf.tree):
                if isinstance(cls, ast.ClassDef):
                    yield from self._check_rpc_dispatch(sf, cls)
            if _storage_scoped(sf):
                yield from self._check_executor_hops(sf)

    # -- 1: cred= on .call / .call_async ------------------------------------

    def _check_rpc_dispatch(self, sf: SourceFile,
                            cls: ast.ClassDef) -> Iterator[Finding]:
        method_names = {
            stmt.name for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "_trace_start" not in method_names:
            return
        for call in ast.walk(cls):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in _RPC_DISPATCH
                    and _is_self_attr(func.value)):
                continue
            if call.args and isinstance(call.args[0], ast.Constant) \
                    and call.args[0].value == 0:
                continue  # NULL probe: no envelope by design
            cred = next(
                (kw.value for kw in call.keywords if kw.arg == "cred"),
                None,
            )
            degenerate = isinstance(cred, ast.Constant) and not cred.value
            if cred is None or degenerate:
                assert isinstance(func.value, ast.Attribute)
                yield self.finding(
                    sf, call,
                    f"{cls.name}: self.{func.value.attr}.{func.attr} "
                    "dispatches without the trace envelope (no cred=)",
                    hint=(
                        "thread the credential from _trace_start "
                        "through as cred=... so the span context rides "
                        "the AUTH_NONE body; only the NULL probe "
                        "(proc 0) may omit it"
                    ),
                )

    # -- 2: contextvars copy across executor hops ----------------------------

    def _check_executor_hops(self, sf: SourceFile) -> Iterator[Finding]:
        assert sf.tree is not None
        exec_methods: set[str] = set()
        exec_attrs: set[str] = set()
        for node in ast.walk(sf.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _mentions_executor(node.returns):
                    exec_methods.add(node.name)
            elif isinstance(node, ast.AnnAssign):
                if _is_self_attr(node.target) \
                        and _mentions_executor(node.annotation):
                    assert isinstance(node.target, ast.Attribute)
                    exec_attrs.add(node.target.attr)
        for fn in ast.walk(sf.tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(
                    sf, fn, frozenset(exec_methods), frozenset(exec_attrs)
                )

    def _check_function(self, sf: SourceFile, fn: _FuncDef,
                        exec_methods: frozenset[str],
                        exec_attrs: frozenset[str]) -> Iterator[Finding]:
        exec_names: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        isinstance(item.context_expr, ast.Call)
                        and isinstance(item.context_expr.func, ast.Name)
                        and item.context_expr.func.id == _EXECUTOR_TYPE
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        exec_names.add(item.optional_vars.id)
            elif isinstance(node, ast.Assign):
                if (
                    isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                    and node.value.func.id == _EXECUTOR_TYPE
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            exec_names.add(target.id)

        cfg = build_cfg(fn)

        def gen(stmt: ast.stmt) -> Iterable[str]:
            if isinstance(stmt, ast.Assign) \
                    and _is_copy_context_call(stmt.value):
                return tuple(
                    f"ctx:{t.id}" for t in stmt.targets
                    if isinstance(t, ast.Name)
                )
            return ()

        facts = must_facts(cfg, gen)

        for index, stmt in cfg.statements():
            for call in _calls_at(stmt):
                func = call.func
                if not (isinstance(func, ast.Attribute)
                        and func.attr in _EXECUTOR_DISPATCH):
                    continue
                if not self._is_executor(func.value, exec_names,
                                         exec_methods, exec_attrs):
                    continue
                if not call.args:
                    continue
                if self._task_carries_context(call.args[0], facts[index]):
                    continue
                yield self.finding(
                    sf, call,
                    f"executor .{func.attr}() crosses threads without "
                    "copying the caller's contextvars — active trace "
                    "spans will not parent the submitted work",
                    hint=(
                        "submit through a fresh copy per task: "
                        "pool.submit(contextvars.copy_context().run, "
                        "fn, *args) — one Context object cannot be "
                        "entered concurrently, so copy at submission "
                        "time, not inside the task"
                    ),
                )

    @staticmethod
    def _is_executor(recv: ast.expr, exec_names: frozenset[str] | set[str],
                     exec_methods: frozenset[str],
                     exec_attrs: frozenset[str]) -> bool:
        if isinstance(recv, ast.Name):
            return recv.id in exec_names
        if _is_self_attr(recv, exec_attrs):
            return True
        if isinstance(recv, ast.Subscript):
            return SpanPropagationChecker._is_executor(
                recv.value, exec_names, exec_methods, exec_attrs
            )
        if isinstance(recv, ast.Call):
            func = recv.func
            if isinstance(func, ast.Attribute) and _is_self_attr(func) \
                    and func.attr in exec_methods:
                return True
            if isinstance(func, ast.Name) and func.id in exec_methods:
                return True
        return False

    @staticmethod
    def _task_carries_context(task: ast.expr,
                              facts: frozenset[str]) -> bool:
        """First submit/map argument runs under a copied context?"""
        if isinstance(task, ast.Attribute) and task.attr == "run":
            owner = task.value
            if _is_copy_context_call(owner):
                return True
            if isinstance(owner, ast.Name):
                return f"ctx:{owner.id}" in facts
        return False
