"""discfs-lint engine: findings, suppressions, baselines, checker plugins.

The analyzers in this package encode *project* invariants — lock
discipline, XDR protocol mirroring, the error taxonomy, registry
coverage — that generic linters cannot know.  This module is the
chassis they plug into:

* :class:`Finding` — one diagnostic with a stable fingerprint, so a
  baseline file can grandfather it across line-number churn;
* :class:`SourceFile` / :class:`Project` — parsed-once AST plus inline
  ``# discfs-lint: disable=<rule>`` suppressions, shared by every
  checker (each file is read and parsed exactly once per run);
* :class:`Checker` — the plugin base class; a checker sees the whole
  project so cross-file rules (lock-order graphs, client/server pairing)
  are first-class, not bolted on;
* :class:`Baseline` + :func:`run_lint` — the driver CI calls.

Zero dependencies beyond the standard library, by design: the linter
must run in every environment the code itself runs in.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, ClassVar, Iterable, Iterator, Sequence

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "LintResult",
    "Project",
    "SourceFile",
    "all_checkers",
    "run_lint",
]

#: ``# discfs-lint: disable=rule-a,rule-b`` — anywhere on a line.
_SUPPRESS_RE = re.compile(r"#\s*discfs-lint:\s*disable=([a-z0-9_,\s-]+)")


@dataclass(frozen=True)
class Finding:
    """One diagnostic, pointing at ``path:line``.

    ``fingerprint`` deliberately excludes the line number: a baseline
    entry keeps matching while unrelated edits move code around, and
    goes stale only when the finding's substance changes.
    """

    rule: str
    path: str
    line: int
    col: int
    severity: str  # "error" | "warning"
    message: str
    hint: str = ""

    @property
    def fingerprint(self) -> str:
        digest = hashlib.sha256(
            "\x00".join((self.rule, self.path, self.message)).encode("utf-8")
        )
        return digest.hexdigest()[:16]

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.severity}: " \
               f"[{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }


class SourceFile:
    """One parsed Python file: source lines, AST, inline suppressions."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        #: Repo-relative posix path used in findings and baselines.
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree: ast.Module | None = None
        self.parse_error: str | None = None
        try:
            self.tree = ast.parse(text, filename=rel)
        except SyntaxError as exc:
            self.parse_error = f"{exc.msg} (line {exc.lineno})"
        self._suppressions = self._scan_suppressions()

    def _scan_suppressions(self) -> dict[int, frozenset[str]]:
        out: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                rules = frozenset(
                    part.strip() for part in match.group(1).split(",")
                    if part.strip()
                )
                out[lineno] = rules
        return out

    def suppressed(self, rule: str, line: int) -> bool:
        """True if ``rule`` is disabled on ``line`` or the line above it
        (a comment on its own line suppresses the statement below)."""
        for candidate in (line, line - 1):
            rules = self._suppressions.get(candidate)
            if rules and (rule in rules or "all" in rules):
                return True
        return False


class Project:
    """The file set one lint run sees, with a shared parse cache."""

    def __init__(self, root: Path, paths: Sequence[Path]) -> None:
        self.root = root
        #: Cross-checker scratch space (e.g. the lock model is built once
        #: and shared by the discipline and order checkers).
        self.memo: dict[str, object] = {}
        self._cache: dict[Path, SourceFile] = {}
        self.files: list[SourceFile] = []
        seen: set[Path] = set()
        for path in sorted(self._expand(paths)):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            self.files.append(self.load(path))

    @staticmethod
    def _expand(paths: Sequence[Path]) -> Iterator[Path]:
        for path in paths:
            if path.is_dir():
                yield from sorted(path.rglob("*.py"))
            elif path.suffix == ".py":
                yield path

    def relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def load(self, path: Path) -> SourceFile:
        """Parse ``path`` once; later calls return the cached parse."""
        resolved = path.resolve()
        cached = self._cache.get(resolved)
        if cached is None:
            text = path.read_text(encoding="utf-8")
            cached = SourceFile(path, self.relpath(path), text)
            self._cache[resolved] = cached
        return cached

    def find(self, rel_suffix: str) -> SourceFile | None:
        """The project file whose relative path ends with ``rel_suffix``."""
        for sf in self.files:
            if sf.rel.endswith(rel_suffix):
                return sf
        return None


class Checker:
    """Base class for one lint rule family.

    Subclasses set ``name``/``description`` and implement :meth:`run`,
    yielding findings over the whole project.  Suppression and baseline
    filtering happen in the driver, not in checkers.
    """

    name: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def run(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self,
        sf: SourceFile,
        node: ast.AST | None,
        message: str,
        hint: str = "",
        severity: str = "error",
        line: int | None = None,
        col: int | None = None,
    ) -> Finding:
        lineno = line if line is not None else getattr(node, "lineno", 1)
        column = col if col is not None else getattr(node, "col_offset", 0)
        return Finding(
            rule=self.name,
            path=sf.rel,
            line=int(lineno),
            col=int(column),
            severity=severity,
            message=message,
            hint=hint,
        )


@dataclass
class Baseline:
    """Grandfathered findings: fingerprints the gate tolerates.

    The shipped file's goal state is *empty* — every entry must carry a
    ``justification`` explaining why the finding is tolerated rather
    than fixed, so the baseline is documentation, not a dumping ground.
    """

    entries: dict[str, dict[str, object]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("version") != 1:
            raise ValueError(f"{path}: not a discfs-lint baseline (version 1)")
        entries: dict[str, dict[str, object]] = {}
        for raw in data.get("findings", []):
            if not isinstance(raw, dict) or "fingerprint" not in raw:
                raise ValueError(f"{path}: baseline entry missing fingerprint")
            entries[str(raw["fingerprint"])] = raw
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        entries: dict[str, dict[str, object]] = {}
        for f in findings:
            entry = f.to_dict()
            entry["justification"] = ""
            entries[f.fingerprint] = entry
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": 1,
            "findings": [
                self.entries[fp] for fp in sorted(self.entries)
            ],
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def covers(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries


@dataclass
class LintResult:
    """Outcome of one run: what fired, what was filtered, and why."""

    findings: list[Finding]
    suppressed: int
    grandfathered: int
    files_checked: int
    rules: tuple[str, ...]

    @property
    def exit_code(self) -> int:
        return 1 if any(f.severity == "error" for f in self.findings) else 0

    def to_dict(self) -> dict[str, object]:
        return {
            "version": 1,
            "rules": list(self.rules),
            "files_checked": self.files_checked,
            "summary": {
                "errors": sum(
                    1 for f in self.findings if f.severity == "error"
                ),
                "warnings": sum(
                    1 for f in self.findings if f.severity == "warning"
                ),
                "suppressed": self.suppressed,
                "grandfathered": self.grandfathered,
            },
            "findings": [f.to_dict() for f in self.findings],
        }


def all_checkers() -> dict[str, Callable[[], Checker]]:
    """Rule name -> factory, for ``--rule`` selection and ``--list-rules``."""
    from repro.analysis.coveragecheck import RegistryCoverageChecker
    from repro.analysis.fsynccheck import FsyncOrderingChecker
    from repro.analysis.leakcheck import ResourceLeakChecker
    from repro.analysis.lockcheck import LockDisciplineChecker, LockOrderChecker
    from repro.analysis.quorumcheck import QuorumArithmeticChecker
    from repro.analysis.rpccheck import RPCDriftChecker
    from repro.analysis.spancheck import SpanPropagationChecker
    from repro.analysis.taxonomycheck import ErrorTaxonomyChecker

    checkers: dict[str, Callable[[], Checker]] = {}
    for cls in (
        LockDisciplineChecker,
        LockOrderChecker,
        RPCDriftChecker,
        ErrorTaxonomyChecker,
        RegistryCoverageChecker,
        FsyncOrderingChecker,
        SpanPropagationChecker,
        QuorumArithmeticChecker,
        ResourceLeakChecker,
    ):
        checkers[cls.name] = cls
    return checkers


def run_lint(
    paths: Sequence[Path],
    root: Path,
    rules: Sequence[str] | None = None,
    baseline: Baseline | None = None,
) -> LintResult:
    """Run the selected checkers; returns filtered, sorted findings."""
    factories = all_checkers()
    if rules:
        unknown = sorted(set(rules) - set(factories))
        if unknown:
            raise ValueError(
                f"unknown rule(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(factories))}"
            )
        selected = tuple(name for name in factories if name in set(rules))
    else:
        selected = tuple(factories)

    project = Project(root, paths)
    raw: list[Finding] = []
    for name in selected:
        raw.extend(factories[name]().run(project))
    for sf in project.files:
        if sf.parse_error is not None:
            raw.append(Finding(
                rule="parse", path=sf.rel, line=1, col=0, severity="error",
                message=f"file does not parse: {sf.parse_error}",
            ))

    by_rel = {sf.rel: sf for sf in project.files}
    kept: list[Finding] = []
    suppressed = 0
    grandfathered = 0
    for f in sorted(raw, key=lambda f: (f.path, f.line, f.rule, f.message)):
        sf = by_rel.get(f.path)
        if sf is not None and sf.suppressed(f.rule, f.line):
            suppressed += 1
            continue
        if baseline is not None and baseline.covers(f):
            grandfathered += 1
            continue
        kept.append(f)
    return LintResult(
        findings=kept,
        suppressed=suppressed,
        grandfathered=grandfathered,
        files_checked=len(project.files),
        rules=selected,
    )
