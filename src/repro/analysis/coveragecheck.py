"""Registry/spec coverage checker.

Adding a storage scheme touches four artifacts, and forgetting any one
of them ships a half-integrated backend:

1. a ``StoreSpec`` subclass with a ``scheme`` class attribute,
   registered in the spec module's registration loop;
2. a builder entry in the registry's ``_BUILDERS`` table;
3. a URI template in the conformance suite's ``URI_TEMPLATES`` (the
   battery that proves the backend honors the storage contract);
4. a row in the README backends table (the operator-facing catalogue).

The conformance suite already self-checks #3 against the *runtime*
registry; this checker closes the loop statically across all four, so
the gap shows up in lint — before a test run, and including the two
artifacts (README, conformance file) no test imports.

Findings are anchored at the spec class definition, which is where the
fix starts and where a suppression can be attached.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, ClassVar, Iterator

from repro.analysis.core import Checker, Finding, Project, SourceFile

__all__ = ["RegistryCoverageChecker"]

_SCHEME_RE = re.compile(r"`(\w[\w+.-]*)://")


@dataclass
class _SpecClass:
    name: str
    scheme: str
    line: int
    sf: SourceFile


def _constant_str(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _spec_classes(sf: SourceFile) -> list[_SpecClass]:
    out: list[_SpecClass] = []
    if sf.tree is None:
        return out
    classdefs = [
        node for node in ast.walk(sf.tree) if isinstance(node, ast.ClassDef)
    ]
    bases_of: dict[str, set[str]] = {
        node.name: {
            base.id if isinstance(base, ast.Name) else
            base.attr if isinstance(base, ast.Attribute) else ""
            for base in node.bases
        }
        for node in classdefs
    }

    def descends_from_spec(name: str, seen: frozenset[str]) -> bool:
        if name in seen:
            return False
        bases = bases_of.get(name, set())
        if "StoreSpec" in bases:
            return True
        return any(
            descends_from_spec(base, seen | {name})
            for base in bases if base in bases_of
        )

    for node in classdefs:
        if not descends_from_spec(node.name, frozenset()):
            continue
        scheme: str | None = None
        for item in node.body:
            if isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name) \
                            and target.id == "scheme":
                        scheme = _constant_str(item.value)
            elif isinstance(item, ast.AnnAssign):
                if isinstance(item.target, ast.Name) \
                        and item.target.id == "scheme":
                    scheme = _constant_str(item.value)
        if scheme:
            out.append(_SpecClass(
                name=node.name, scheme=scheme, line=node.lineno, sf=sf))
    return out


def _registration_loop_names(sf: SourceFile) -> set[str] | None:
    """Class names iterated by a ``for _cls in (...): _register(_cls)``
    loop; None when the file has no such loop."""
    if sf.tree is None:
        return None
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.For):
            continue
        if not isinstance(node.iter, (ast.Tuple, ast.List)):
            continue
        calls_register = any(
            isinstance(sub, ast.Call) and (
                (isinstance(sub.func, ast.Name)
                 and "register" in sub.func.id)
                or (isinstance(sub.func, ast.Attribute)
                    and "register" in sub.func.attr)
            )
            for stmt in node.body for sub in ast.walk(stmt)
        )
        if not calls_register:
            continue
        names = {
            elt.id for elt in node.iter.elts if isinstance(elt, ast.Name)
        }
        if names:
            return names
    return None


def _builder_keys(sf: SourceFile) -> set[str] | None:
    """Spec-class names keyed into a ``*BUILDERS`` table; None when the
    file has no such table."""
    if sf.tree is None:
        return None
    keys: set[str] = set()
    found = False
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "update" \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id.endswith("BUILDERS") \
                and node.args and isinstance(node.args[0], ast.Dict):
            found = True
            for key in node.args[0].keys:
                if isinstance(key, ast.Name):
                    keys.add(key.id)
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id.endswith("BUILDERS") \
                        and isinstance(target.slice, ast.Name):
                    found = True
                    keys.add(target.slice.id)
    return keys if found else None


def _template_schemes(sf: SourceFile) -> set[str] | None:
    if sf.tree is None:
        return None
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Assign) \
                and any(isinstance(t, ast.Name) and t.id == "URI_TEMPLATES"
                        for t in node.targets) \
                and isinstance(node.value, ast.Dict):
            return {
                key.value for key in node.value.keys
                if isinstance(key, ast.Constant)
                and isinstance(key.value, str)
            }
    return None


def _readme_schemes(text: str) -> set[str] | None:
    """Schemes named in table rows of the storage-backends section."""
    in_section = False
    found_table = False
    schemes: set[str] = set()
    for line in text.splitlines():
        if line.startswith("## "):
            in_section = "storage backends" in line.lower()
            continue
        if in_section and line.lstrip().startswith("|"):
            found_table = True
            schemes.update(_SCHEME_RE.findall(line))
    return schemes if found_table else None


class RegistryCoverageChecker(Checker):
    name = "registry-coverage"
    description = (
        "every StoreSpec scheme needs a builder, a conformance template "
        "and a README backends-table row"
    )

    #: Artifact locations relative to the project root; fixtures mirror
    #: this layout under a temporary root.
    CONFORMANCE_REL: ClassVar[str] = "tests/unit/test_storage_conformance.py"
    README_REL: ClassVar[str] = "README.md"

    def run(self, project: Project) -> Iterator[Finding]:
        specs: list[_SpecClass] = []
        loop_names: set[str] | None = None
        builder_keys: set[str] | None = None
        builder_sf: SourceFile | None = None
        for sf in project.files:
            found = _spec_classes(sf)
            specs.extend(found)
            if found and loop_names is None:
                loop_names = _registration_loop_names(sf)
            keys = _builder_keys(sf)
            if keys is not None:
                builder_keys = (builder_keys or set()) | keys
                builder_sf = sf
        if not specs:
            return

        templates = self._load_aux(project, self.CONFORMANCE_REL,
                                   _template_schemes)
        readme_path = project.root / self.README_REL
        readme: set[str] | None = None
        if readme_path.is_file():
            readme = _readme_schemes(
                readme_path.read_text(encoding="utf-8"))

        for spec in sorted(specs, key=lambda s: s.scheme):
            if loop_names is not None and spec.name not in loop_names:
                yield self.finding(
                    spec.sf, None,
                    message=(
                        f"{spec.name} (scheme {spec.scheme}://) is not in "
                        "the spec registration loop: the registry cannot "
                        "parse its URIs"
                    ),
                    line=spec.line,
                )
            if builder_keys is not None and spec.name not in builder_keys:
                yield self.finding(
                    spec.sf, None,
                    message=(
                        f"{spec.name} (scheme {spec.scheme}://) has no "
                        "builder in the registry's _BUILDERS table: "
                        "open_store cannot construct it"
                    ),
                    line=spec.line,
                )
            if templates is not None and spec.scheme not in templates:
                yield self.finding(
                    spec.sf, None,
                    message=(
                        f"scheme {spec.scheme}:// has no URI template in "
                        f"{self.CONFORMANCE_REL}: the conformance battery "
                        "never exercises it"
                    ),
                    line=spec.line,
                )
            if readme is not None and spec.scheme not in readme:
                yield self.finding(
                    spec.sf, None,
                    message=(
                        f"scheme {spec.scheme}:// has no row in the "
                        f"README storage-backends table"
                    ),
                    severity="warning",
                    line=spec.line,
                )

        spec_names = {s.name for s in specs}
        if builder_keys is not None and builder_sf is not None:
            for orphan in sorted(builder_keys - spec_names):
                yield self.finding(
                    builder_sf, None,
                    message=(
                        f"_BUILDERS entry {orphan} has no matching "
                        "StoreSpec class with a scheme"
                    ),
                    severity="warning",
                    line=1,
                )

    @staticmethod
    def _load_aux(
        project: Project,
        rel: str,
        extract: Callable[[SourceFile], set[str] | None],
    ) -> set[str] | None:
        path = project.root / rel
        if not path.is_file():
            return None
        return extract(project.load(path))
