"""quorum-arithmetic: W/R/N must be *related* before a replica set is
kept.

``replica://``'s read-your-writes story is pure arithmetic: a read
quorum intersects every write quorum iff ``W + R > N``, and both
quorums must be at least 1 to mean anything.  The failure mode this
rule exists for is silent: a constructor that bounds-checks ``W`` and
``R`` individually but never relates them to ``N`` accepts a
non-overlapping configuration without anyone having *decided* that —
and non-overlap is a legitimate mode here (``w=1&r=1`` fan-out configs
trade consistency for latency on purpose), so the requirement is not a
rejection but a **proof of consideration**: on every path that stores
the quorums, the code must have (a) established ``W >= 1`` and
``R >= 1`` and (b) evaluated ``W + R`` against ``N`` — as an
``assert``, a validating ``if``/``raise`` (or ``_require(...)``-style
call), or a recorded classification like
``self.consistent_quorums = write_quorum + read_quorum > n``.

Phrased as :mod:`repro.analysis.flow` must-facts so ordering counts: a
relation established after the quorums are stored, or only on one
branch, does not dominate the store and is flagged.  Scope is
constructor-shaped functions that bind both quorum names — forwarding
keyword arguments (``write_quorum=spec.w``) does not opt a function in,
so builders that delegate validation stay clean.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Checker, Finding, Project, SourceFile
from repro.analysis.flow import build_cfg, header_exprs, must_facts

_FuncDef = ast.FunctionDef | ast.AsyncFunctionDef

#: Accepted spellings of the quorum/set-size bindings.  Bare ``w``/``r``
#: locals are deliberately excluded (too generic); ``self.w``/``self.r``
#: attributes count because the spec layer names its URI options that
#: way.
_W_NAMES = frozenset({"write_quorum", "quorum_w", "w_quorum"})
_R_NAMES = frozenset({"read_quorum", "quorum_r", "r_quorum"})
_W_ATTRS = _W_NAMES | frozenset({"w"})
_R_ATTRS = _R_NAMES | frozenset({"r"})
_N_NAMES = frozenset({"n", "replicas", "num_replicas", "n_replicas"})

_FACT_W = "bound:w"
_FACT_R = "bound:r"
_FACT_OVERLAP = "overlap"

_MISSING_TEXT = {
    _FACT_W: "W >= 1",
    _FACT_R: "R >= 1",
    _FACT_OVERLAP: "W + R vs N",
}


def _exprs_at(stmt: ast.stmt) -> Iterator[ast.AST]:
    for expr in header_exprs(stmt):
        yield from ast.walk(expr)


class _Role:
    """Classify an expression as a W / R / N token, if any."""

    @staticmethod
    def of(expr: ast.AST) -> str | None:
        if isinstance(expr, ast.Name):
            if expr.id in _W_NAMES:
                return "w"
            if expr.id in _R_NAMES:
                return "r"
            if expr.id in _N_NAMES:
                return "n"
            return None
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id == "self":
            if expr.attr in _W_ATTRS:
                return "w"
            if expr.attr in _R_ATTRS:
                return "r"
            if expr.attr in _N_NAMES:
                return "n"
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id == "len":
                return "n"
        return None


def _roles_in(expr: ast.AST) -> set[str]:
    return {
        role for node in ast.walk(expr)
        if (role := _Role.of(node)) is not None
    }


def _compare_facts(comp: ast.Compare) -> set[str]:
    """Facts a comparison establishes when it gates/classifies a path."""
    facts: set[str] = set()
    operands: list[ast.expr] = [comp.left, *comp.comparators]
    # W + R related to N: one operand sums a w-token and an r-token,
    # another is an n-token.
    sums = [
        op for op in operands
        if isinstance(op, ast.BinOp) and isinstance(op.op, ast.Add)
        and {"w", "r"} <= _roles_in(op)
    ]
    if sums and any(_Role.of(op) == "n" or "n" in _roles_in(op)
                    for op in operands if op not in sums):
        facts.add(_FACT_OVERLAP)
    # Lower bounds: the token compared against the constant 1 (the
    # ``1 <= w <= n`` chained idiom covers both bound and ceiling).
    has_one = any(
        isinstance(op, ast.Constant) and op.value == 1 for op in operands
    )
    if has_one:
        direct = {
            role for op in operands if (role := _Role.of(op)) is not None
        }
        if "w" in direct:
            facts.add(_FACT_W)
        if "r" in direct:
            facts.add(_FACT_R)
    return facts


def _is_validating_if(stmt: ast.If) -> bool:
    """``if <cond>: raise ...`` (or the mirrored else-raise): only one
    branch survives, so the surviving path is gated by the test."""
    def all_abrupt(body: list[ast.stmt]) -> bool:
        return bool(body) and all(
            isinstance(s, (ast.Raise, ast.Return)) for s in body
        )
    return all_abrupt(stmt.body) or all_abrupt(stmt.orelse)


def _gen_facts(stmt: ast.stmt) -> Iterable[str]:
    comparisons: list[ast.Compare] = []
    if isinstance(stmt, ast.Assert):
        comparisons = [
            node for node in ast.walk(stmt.test)
            if isinstance(node, ast.Compare)
        ]
    elif isinstance(stmt, ast.If):
        if _is_validating_if(stmt):
            comparisons = [
                node for node in ast.walk(stmt.test)
                if isinstance(node, ast.Compare)
            ]
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        # ``_require(1 <= self.w <= n, ...)``-style validation helpers.
        comparisons = [
            node for arg in stmt.value.args for node in ast.walk(arg)
            if isinstance(node, ast.Compare)
        ]
    elif isinstance(stmt, ast.Assign):
        # Recorded classification: self.consistent_quorums = w + r > n.
        comparisons = [
            node for node in ast.walk(stmt.value)
            if isinstance(node, ast.Compare)
        ]
    facts: set[str] = set()
    for comp in comparisons:
        facts |= _compare_facts(comp)
    return facts


def _use_role(stmt: ast.stmt) -> str | None:
    """A statement that *keeps* a quorum: ``self.<attr> = <bare token>``.

    The value must be the bare binding (or a trivial conditional of
    it) — comparisons and arithmetic are classifications, not stores.
    """
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return None
    target = stmt.targets[0]
    if not (isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"):
        return None
    value = stmt.value
    role = _Role.of(value)
    if role in ("w", "r"):
        return role
    return None


class QuorumArithmeticChecker(Checker):
    """W/R bounds and the W+R>N relation must dominate quorum stores."""

    name = "quorum-arithmetic"
    description = (
        "functions that construct replica sets must relate W, R and N "
        "(W,R >= 1 and W+R vs N) on every path before storing the "
        "quorums"
    )

    def run(self, project: Project) -> Iterable[Finding]:
        for sf in project.files:
            if sf.tree is None:
                continue
            for fn in ast.walk(sf.tree):
                if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_function(sf, fn)

    def _check_function(self, sf: SourceFile,
                        fn: _FuncDef) -> Iterator[Finding]:
        bound_roles: set[str] = set()
        for arg in [*fn.args.args, *fn.args.kwonlyargs]:
            if arg.arg in _W_NAMES:
                bound_roles.add("w")
            elif arg.arg in _R_NAMES:
                bound_roles.add("r")
        for stmt in fn.body:
            for node in _exprs_at(stmt):
                role = _Role.of(node)
                if role in ("w", "r"):
                    bound_roles.add(role)
        if bound_roles != {"w", "r"}:
            return

        cfg = build_cfg(fn)
        uses = [
            (index, stmt) for index, stmt in cfg.statements()
            if _use_role(stmt) is not None
        ]
        if not uses:
            return
        facts = must_facts(cfg, _gen_facts)
        required = (_FACT_W, _FACT_R, _FACT_OVERLAP)
        reported: set[str] = set()
        for index, stmt in uses:
            missing = [f for f in required if f not in facts[index]]
            if not missing:
                continue
            key = ",".join(missing)
            if key in reported:
                continue  # one finding per missing-relation set
            reported.add(key)
            gaps = ", ".join(_MISSING_TEXT[f] for f in missing)
            yield self.finding(
                sf, stmt,
                f"{fn.name}: quorums stored without relating them on "
                f"every path first (missing: {gaps})",
                hint=(
                    "validate 1 <= W <= N and 1 <= R <= N, and relate "
                    "W + R to N before keeping the quorums — as an "
                    "assert, an if/raise, or a recorded classification "
                    "(self.consistent_quorums = W + R > N); "
                    "non-overlapping quorums are allowed but must be "
                    "a decision, not an accident"
                ),
            )
