"""fsync-ordering: the intent log must dominate journal child writes.

``journal://``'s crash-consistency argument is one sentence long: *the
child never sees a write that is not already durable in the intent
log*.  Concretely, in any journal-shaped class — one that both fsyncs a
log and forwards writes to ``self.child`` — every path through the
write entry points (``_put`` / ``_put_many``) that reaches a
``self.child.write*`` call must first pass a statement that appends to
the log **and** fsyncs it.  An early return, a branch, or a swallowed
exception that lets the child write happen un-logged silently converts
the journal into a pass-through wrapper; replay then cannot restore the
block after a crash, which is exactly the failure the paper's recovery
experiments measure.

The rule is phrased in :mod:`repro.analysis.flow` must-facts: a
statement establishes the ``logged`` fact when it calls ``os.fsync``
directly or calls a ``self.`` method that fsyncs on *all* of its normal
exit paths (computed as a fixpoint over the class, so
``self._append_transaction(...)`` counts because its body ends in
``self._fsync()``).  A child write is clean when ``logged`` is in its
must-set — i.e. every path from function entry, exceptional edges
included, established the fact first.  ``_replay``'s child writes are
deliberately out of scope: replay runs *from* the log, so analysis
starts at the write entry points and follows self-calls only.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Checker, Finding, Project, SourceFile
from repro.analysis.flow import CFG, build_cfg, header_exprs, must_facts

#: Methods that hand a write to the wrapped child store.
_CHILD_WRITES = frozenset({"write", "write_many", "_put", "_put_many"})
#: Attribute names a wrapper keeps its child under.
_CHILD_ATTRS = frozenset({"child", "_child"})
#: Entry points of the write path; analysis follows self-calls from here.
_ENTRY_POINTS = ("_put", "_put_many")

_FuncDef = ast.FunctionDef | ast.AsyncFunctionDef

_LOGGED = "logged"


def _methods(cls: ast.ClassDef) -> dict[str, _FuncDef]:
    return {
        stmt.name: stmt for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _calls_at(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Call expressions evaluated at this statement's own CFG node."""
    for expr in header_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                yield node


def _is_os_fsync(call: ast.Call) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute) and func.attr == "fsync"
        and isinstance(func.value, ast.Name) and func.value.id == "os"
    )


def _self_method_called(call: ast.Call) -> str | None:
    """``self.<name>(...)`` -> name."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name) and func.value.id == "self"
    ):
        return func.attr
    return None


def _child_write(call: ast.Call) -> str | None:
    """``self.child.write*(...)`` -> dotted description, else None."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr in _CHILD_WRITES):
        return None
    owner = func.value
    if (
        isinstance(owner, ast.Attribute) and owner.attr in _CHILD_ATTRS
        and isinstance(owner.value, ast.Name) and owner.value.id == "self"
    ):
        return f"self.{owner.attr}.{func.attr}"
    return None


def _fsyncing_methods(methods: dict[str, _FuncDef]) -> frozenset[str]:
    """Methods guaranteed to fsync on every normal completion —
    transitively, so a thin wrapper around ``self._fsync()`` counts."""
    known: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, fn in methods.items():
            if name in known:
                continue
            cfg = build_cfg(fn)

            def gen(stmt: ast.stmt) -> Iterable[str]:
                for call in _calls_at(stmt):
                    if _is_os_fsync(call):
                        return (_LOGGED,)
                    callee = _self_method_called(call)
                    if callee is not None and callee in known:
                        return (_LOGGED,)
                return ()

            facts = must_facts(cfg, gen)
            if _LOGGED in facts[CFG.EXIT]:
                known.add(name)
                changed = True
    return frozenset(known)


class FsyncOrderingChecker(Checker):
    """Journal write paths: log append+fsync must dominate child writes."""

    name = "fsync-ordering"
    description = (
        "on journal write paths the intent-log append+fsync must "
        "dominate every self.child.write*; a branch or exception edge "
        "that skips it breaks crash recovery"
    )

    def run(self, project: Project) -> Iterable[Finding]:
        for sf in project.files:
            if sf.tree is None:
                continue
            for cls in ast.walk(sf.tree):
                if isinstance(cls, ast.ClassDef):
                    yield from self._check_class(sf, cls)

    def _check_class(self, sf: SourceFile,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        methods = _methods(cls)
        fsyncing = _fsyncing_methods(methods)
        if not fsyncing:
            return  # not journal-shaped: it never makes anything durable
        roots = [name for name in _ENTRY_POINTS if name in methods]
        if not roots:
            return

        # Self-call closure from the write entry points: _replay and
        # other log-consuming paths are reachable only from __init__,
        # so they stay out of scope by construction.
        closure: list[str] = []
        queue = list(roots)
        while queue:
            name = queue.pop()
            if name in closure or name not in methods:
                continue
            closure.append(name)
            for stmt in ast.walk(methods[name]):
                if isinstance(stmt, ast.Call):
                    callee = _self_method_called(stmt)
                    if callee is not None and callee in methods:
                        queue.append(callee)

        analyses: dict[str, tuple[CFG, dict[int, frozenset[str]]]] = {}
        for name in closure:
            cfg = build_cfg(methods[name])

            def gen(stmt: ast.stmt) -> Iterable[str]:
                for call in _calls_at(stmt):
                    if _is_os_fsync(call):
                        return (_LOGGED,)
                    callee = _self_method_called(call)
                    if callee is not None and callee in fsyncing:
                        return (_LOGGED,)
                return ()

            analyses[name] = (cfg, must_facts(cfg, gen))

        # A non-root method inherits the fact when *every* closure call
        # site already holds it (greatest fixpoint: assume inherited,
        # strike out methods with an unlogged call site until stable).
        entry_logged = {name: name not in roots for name in closure}
        changed = True
        while changed:
            changed = False
            for caller in closure:
                cfg, facts = analyses[caller]
                for index, stmt in cfg.statements():
                    for call in _calls_at(stmt):
                        callee = _self_method_called(call)
                        if callee is None or callee not in entry_logged:
                            continue
                        site_ok = (
                            _LOGGED in facts[index]
                            or entry_logged[caller]
                        )
                        if not site_ok and entry_logged[callee]:
                            entry_logged[callee] = False
                            changed = True

        for name in closure:
            cfg, facts = analyses[name]
            for index, stmt in cfg.statements():
                for call in _calls_at(stmt):
                    target = _child_write(call)
                    if target is None:
                        continue
                    if _LOGGED in facts[index] or entry_logged[name]:
                        continue
                    yield self.finding(
                        sf, stmt,
                        f"{cls.name}.{name}: {target} is reachable "
                        "without the intent-log append+fsync",
                        hint=(
                            "append and fsync the intent log on every "
                            "path (branches, early returns and "
                            "exception edges included) before the "
                            "child write, as _put_many does via "
                            "_append_transaction"
                        ),
                    )
