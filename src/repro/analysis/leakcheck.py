"""resource-leak: an acquired store/transport/fd must survive the
failure paths between acquisition and ownership hand-off.

The registry composes stores recursively, so a builder that raises
*after* constructing a child but *before* anyone owns it strands the
child — an fd, an sqlite handle, a TCP connection — with no close()
left to call it.  PR 4/5 fixed several of these by hand
(``_build_cached``'s try/except-close, ``_build_children``'s
``close_quietly`` sweep); this rule mechanizes the review.

An *acquisition* is ``name = <acquirer>(...)`` where the acquirer is
one of the project's resource-creating entry points (``open_store``,
``build``, ``serve_store``, transports, ``os.open`` …).  From there the
statements that follow are scanned in order until the resource is safe:

* **released** — ``name.close()`` / ``close_quietly(name)`` (even
  conditionally: a branch that closes-and-raises is the idiom, not a
  leak);
* **escaped** — ``return name`` bare, stored onto ``self``, or appended
  into a container (whose owner then carries the close obligation);
* **protected** — the next statement is (or the acquisition sits
  inside) a ``try`` whose ``finally`` closes it, or whose handler
  closes it and re-raises.

A statement that can raise (a call, ``raise``, ``assert``) before any
of those — including the consuming constructor itself, the
``return Wrapper(name)`` shape — is flagged.  An acquirer call nested
directly inside another call's arguments is always flagged: the result
is unnameable, so no cleanup can ever reference it.

Scope: library code.  ``bench/`` and ``cli.py`` are leaf programs whose
resources die with the process, so they are excluded by path.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Checker, Finding, Project, SourceFile
from repro.analysis.flow import header_exprs

_FuncDef = ast.FunctionDef | ast.AsyncFunctionDef

#: Bare-name calls that hand back a resource the caller must close.
_ACQUIRER_NAMES = frozenset({
    "open_store", "open_device", "serve_store", "build",
    "_build_children", "TCPTransport", "PipelinedTCPTransport",
    "ConnectionPool",
})
#: ``<module>.<attr>`` acquirers.
_ACQUIRER_ATTRS = frozenset({("os", "open")})
#: Consumers allowed to take a nested acquirer call: they exist to
#: dispose of resources, not to own them.
_SAFE_CONSUMERS = frozenset({"close_quietly"})
#: Container hand-off methods: ownership moves to the container.
_ESCAPE_METHODS = frozenset({"append", "add", "put"})
#: Paths outside the rule: process-lifetime resources.
_EXCLUDED_PREFIXES = ("src/repro/bench/",)
_EXCLUDED_FILES = frozenset({"src/repro/cli.py"})


def _is_acquirer_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _ACQUIRER_NAMES
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr) in _ACQUIRER_ATTRS
    return False


def _lambda_nodes(root: ast.AST) -> set[int]:
    """ids of nodes inside lambda/nested-def bodies under ``root`` —
    deferred code, not executed at this statement."""
    out: set[int] = set()
    for node in ast.walk(root):
        if isinstance(node, (ast.Lambda, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            if node is root:
                continue
            for sub in ast.walk(node):
                if sub is not node:
                    out.add(id(sub))
    return out


def _can_raise(stmt: ast.stmt) -> bool:
    """Leak-relevant raising: calls, raise, assert (attribute access and
    arithmetic are noise at this rule's granularity)."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    deferred = _lambda_nodes(stmt)
    for expr in header_exprs(stmt):
        for node in ast.walk(expr):
            if id(node) in deferred:
                continue
            if isinstance(node, ast.Call):
                return True
    return False


def _closes(stmt: ast.stmt, name: str) -> bool:
    """``name.close()`` or ``close_quietly(... name ...)`` anywhere in
    ``stmt`` — conditional release counts (close-and-raise branches)."""
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("close", "close_quietly", "shutdown")
            and isinstance(func.value, ast.Name) and func.value.id == name
        ):
            return True
        if isinstance(func, ast.Name) and func.id in _SAFE_CONSUMERS:
            for arg in node.args:
                if any(isinstance(sub, ast.Name) and sub.id == name
                       for sub in ast.walk(arg)):
                    return True
    return False


def _escapes(stmt: ast.stmt, name: str) -> bool:
    if isinstance(stmt, ast.Return):
        return isinstance(stmt.value, ast.Name) and stmt.value.id == name
    if isinstance(stmt, ast.Assign):
        if not (isinstance(stmt.value, ast.Name) and stmt.value.id == name):
            return False
        return any(
            isinstance(t, (ast.Attribute, ast.Subscript))
            for t in stmt.targets
        )
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        call = stmt.value
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _ESCAPE_METHODS
            and len(call.args) >= 1
        ):
            last = call.args[-1]
            return isinstance(last, ast.Name) and last.id == name
    return False


def _try_protects(stmt: ast.Try, name: str) -> bool:
    if any(_closes(s, name) for s in stmt.finalbody):
        return True
    for handler in stmt.handlers:
        handler_closes = any(_closes(s, name) for s in handler.body)
        reraises = any(
            isinstance(node, ast.Raise) for s in handler.body
            for node in ast.walk(s)
        )
        if handler_closes and reraises:
            return True
    return False


def _uses(stmt: ast.stmt, name: str) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == name
        for node in ast.walk(stmt)
    )


class ResourceLeakChecker(Checker):
    """Raise-before-close windows on acquired stores/transports/fds."""

    name = "resource-leak"
    description = (
        "a store/transport/fd acquired on a path that can raise before "
        "reaching close()/close_quietly/a finally is stranded — guard "
        "the window or hand ownership off first"
    )

    def run(self, project: Project) -> Iterable[Finding]:
        for sf in project.files:
            if sf.tree is None or self._excluded(sf):
                continue
            for fn in ast.walk(sf.tree):
                if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_function(sf, fn)

    @staticmethod
    def _excluded(sf: SourceFile) -> bool:
        return sf.rel in _EXCLUDED_FILES or any(
            sf.rel.startswith(prefix) for prefix in _EXCLUDED_PREFIXES
        )

    def _check_function(self, sf: SourceFile,
                        fn: _FuncDef) -> Iterator[Finding]:
        yield from self._scan_suite(sf, fn, fn.body, enclosing_tries=[])

    def _scan_suite(self, sf: SourceFile, fn: _FuncDef,
                    suite: list[ast.stmt],
                    enclosing_tries: list[ast.Try]) -> Iterator[Finding]:
        for i, stmt in enumerate(suite):
            yield from self._nested_acquisitions(sf, fn, stmt)
            name = self._acquired_name(stmt)
            if name is not None:
                yield from self._follow(sf, fn, suite, i, name,
                                        enclosing_tries)
            # Recurse into compound bodies.
            if isinstance(stmt, ast.Try):
                yield from self._scan_suite(
                    sf, fn, stmt.body, enclosing_tries + [stmt]
                )
                for handler in stmt.handlers:
                    yield from self._scan_suite(sf, fn, handler.body,
                                                enclosing_tries)
                yield from self._scan_suite(sf, fn, stmt.orelse,
                                            enclosing_tries)
                yield from self._scan_suite(sf, fn, stmt.finalbody,
                                            enclosing_tries)
            elif isinstance(stmt, (ast.If, ast.While, ast.For,
                                   ast.AsyncFor, ast.With, ast.AsyncWith)):
                for body in (stmt.body, getattr(stmt, "orelse", [])):
                    yield from self._scan_suite(sf, fn, body,
                                                enclosing_tries)
            elif isinstance(stmt, ast.Match):
                for case in stmt.cases:
                    yield from self._scan_suite(sf, fn, case.body,
                                                enclosing_tries)

    @staticmethod
    def _acquired_name(stmt: ast.stmt) -> str | None:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return None
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return None
        if _is_acquirer_call(stmt.value):
            return target.id
        return None

    def _follow(self, sf: SourceFile, fn: _FuncDef, suite: list[ast.stmt],
                i: int, name: str,
                enclosing_tries: list[ast.Try]) -> Iterator[Finding]:
        acq = suite[i]
        if any(_try_protects(t, name) for t in enclosing_tries):
            return
        for stmt in suite[i + 1:]:
            if _closes(stmt, name):
                return
            if _escapes(stmt, name):
                return
            if isinstance(stmt, ast.Try) and _try_protects(stmt, name):
                return
            if _can_raise(stmt):
                shape = (
                    "its consumer" if _uses(stmt, name)
                    else "an intervening statement"
                )
                yield self.finding(
                    sf, acq,
                    f"{fn.name}: `{name}` can leak — {shape} on line "
                    f"{stmt.lineno} can raise before `{name}` reaches "
                    "close()/close_quietly/a finally",
                    hint=(
                        "bind the resource first, then guard the "
                        "window: try: ... except: name.close(); raise "
                        "— or hand ownership off (return it, store it "
                        "on self, append it to a swept list) before "
                        "anything that can raise"
                    ),
                )
                return
        # Suite ends with the resource still local and nothing raising:
        # no window, no finding.

    def _nested_acquisitions(self, sf: SourceFile, fn: _FuncDef,
                             stmt: ast.stmt) -> Iterator[Finding]:
        deferred = _lambda_nodes(stmt)
        reported: set[int] = set()
        for expr in header_exprs(stmt):
            for call in ast.walk(expr):
                if not isinstance(call, ast.Call) or id(call) in deferred:
                    continue
                if isinstance(call.func, ast.Name) \
                        and call.func.id in _SAFE_CONSUMERS:
                    continue
                args: list[ast.expr] = list(call.args)
                args.extend(kw.value for kw in call.keywords)
                for arg in args:
                    for sub in ast.walk(arg):
                        if id(sub) in deferred or id(sub) in reported:
                            continue
                        if _is_acquirer_call(sub):
                            reported.add(id(sub))
                            assert isinstance(sub, ast.Call)
                            acq = self._call_name(sub)
                            yield self.finding(
                                sf, sub,
                                f"{fn.name}: {acq}(...) is acquired "
                                "inside another call's arguments — the "
                                "resource is unnameable, so no cleanup "
                                "can reach it if the consumer raises",
                                hint=(
                                    "bind it to a local first, then "
                                    "pass the name and guard the "
                                    "window with try/except close"
                                ),
                            )
        return

    @staticmethod
    def _call_name(call: ast.Call) -> str:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return "<call>"
