"""Error-taxonomy checker.

The exception hierarchy encodes a semantic contract (``errors.py``):
``AuthError``, ``QuotaExceeded`` and ``RateLimited`` are *answers* — a
policy decision, a full quota, a throttle — deliberately **not**
``StoreUnavailable``, which means "this node cannot answer".  The
distinction is load-bearing: ``replica://`` fails over around
unavailability, and failing over around a denial would turn "no" into
"ask a different node until one forgets to say no".

Three patterns violate the contract:

* an ``except`` that catches a typed denial and re-raises it as
  ``StoreUnavailable``/``QuorumError`` (denial laundered into
  unavailability) — error;
* an ``except`` that catches a typed denial and swallows it (no raise
  at all) — warning, because legitimate protocol boundaries convert
  denials to in-band status codes and annotate the suppression;
* a broad catch (``Exception``, ``BaseException``, ``ReproError``,
  ``FSError`` or bare) on a data-path method that does not re-raise —
  warning: the net is wide enough to trap denials by accident.

Named tuple constants (``_CHILD_FAILURES = (ReproError, OSError)``) are
resolved through module- and class-level assignments so the checker sees
through the common "shared catch set" idiom.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Checker, Finding, Project, SourceFile

__all__ = ["ErrorTaxonomyChecker"]

#: The typed denials: answers, not outages.
_DENIALS = frozenset({"AuthError", "QuotaExceeded", "RateLimited"})

#: Availability errors a denial must never be converted into.
_UNAVAILABLE = frozenset({"StoreUnavailable", "QuorumError"})

#: Catch-alls wide enough to trap a denial by accident.
_BROAD = frozenset({"Exception", "BaseException", "ReproError", "FSError"})

#: Methods on the storage data path, where a broad catch is riskiest.
_DATA_PATH = frozenset({
    "_get", "_put", "_contains", "_get_many", "_put_many",
    "read", "write", "read_many", "write_many",
})


def _last_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _tuple_elements(node: ast.expr) -> list[str] | None:
    if isinstance(node, (ast.Tuple, ast.List)):
        return [_last_name(elt) for elt in node.elts]
    return None


def _collect_constants(tree: ast.Module) -> dict[str, list[str]]:
    """``NAME = (ExcA, ExcB)`` assignments, module- and class-level,
    keyed by the bare constant name (class scoping by name is enough
    for a lint heuristic)."""
    out: dict[str, list[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        elements = _tuple_elements(node.value)
        if elements is None:
            continue
        for target in node.targets:
            name = ""
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name:
                out[name] = elements
    return out


def _caught_names(handler: ast.ExceptHandler,
                  constants: dict[str, list[str]]) -> list[str]:
    """The exception class names an ``except`` clause can catch.

    A bare ``except:`` reports as ``BaseException``.
    """
    if handler.type is None:
        return ["BaseException"]
    nodes: list[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        nodes = list(handler.type.elts)
    else:
        nodes = [handler.type]
    names: list[str] = []
    for node in nodes:
        name = _last_name(node)
        if name in constants:
            names.extend(constants[name])
        elif name:
            names.append(name)
    return names


def _raises(body: list[ast.stmt]) -> list[ast.Raise]:
    out = []
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                out.append(node)
    return out


def _reraises(raise_node: ast.Raise, caught_as: str | None) -> bool:
    if raise_node.exc is None:
        return True
    if caught_as and isinstance(raise_node.exc, ast.Name) \
            and raise_node.exc.id == caught_as:
        return True
    return False


def _raised_name(raise_node: ast.Raise) -> str:
    exc = raise_node.exc
    if exc is None:
        return ""
    if isinstance(exc, ast.Call):
        return _last_name(exc.func)
    return _last_name(exc)


class ErrorTaxonomyChecker(Checker):
    name = "error-taxonomy"
    description = (
        "typed denials (AuthError/QuotaExceeded/RateLimited) must not be "
        "converted to, or swallowed as, availability errors"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        for sf in project.files:
            if sf.tree is None:
                continue
            constants = _collect_constants(sf.tree)
            yield from self._check_file(sf, constants)

    def _check_file(
        self, sf: SourceFile, constants: dict[str, list[str]],
    ) -> Iterator[Finding]:
        for cls in ast.walk(sf.tree or ast.Module(body=[], type_ignores=[])):
            if not isinstance(cls, ast.ClassDef):
                continue
            for item in cls.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_method(sf, cls, item, constants)

    def _check_method(
        self,
        sf: SourceFile,
        cls: ast.ClassDef,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        constants: dict[str, list[str]],
    ) -> Iterator[Finding]:
        where = f"{cls.name}.{fn.name}"
        on_data_path = fn.name in _DATA_PATH or fn.name.startswith("_proc_")
        for node in ast.walk(fn):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = set(_caught_names(node, constants))
            raises = _raises(node.body)
            reraised = any(_reraises(r, node.name) for r in raises)

            denials = caught & _DENIALS
            if denials:
                label = "/".join(sorted(denials))
                converted = [
                    r for r in raises if _raised_name(r) in _UNAVAILABLE
                ]
                if converted:
                    yield self.finding(
                        sf, None,
                        message=(
                            f"{where} re-raises {label} as "
                            f"{_raised_name(converted[0])}: a denial is "
                            "an answer, not a dead node — replicas would "
                            "fail over around it"
                        ),
                        hint="let the typed denial propagate; reserve "
                             "StoreUnavailable for nodes that cannot "
                             "answer",
                        line=node.lineno,
                    )
                elif not raises:
                    yield self.finding(
                        sf, None,
                        message=(
                            f"{where} catches {label} and swallows it; "
                            "callers will see success where policy said "
                            "no"
                        ),
                        hint="re-raise the denial, or suppress with a "
                             "justification if this is a protocol "
                             "boundary that preserves the denial "
                             "in-band",
                        severity="warning",
                        line=node.lineno,
                    )
                continue

            if on_data_path and (caught & _BROAD) and not reraised:
                label = "/".join(sorted(caught & _BROAD))
                yield self.finding(
                    sf, None,
                    message=(
                        f"{where} catches {label} on the data path "
                        "without re-raising: wide enough to trap typed "
                        "denials (QuotaExceeded/RateLimited/AuthError) "
                        "as failures"
                    ),
                    hint="narrow the catch to availability errors "
                         "(StoreUnavailable, OSError), re-raise, or "
                         "suppress with a justification",
                    severity="warning",
                    line=node.lineno,
                )
