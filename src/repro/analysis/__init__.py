"""discfs-lint: project-specific static analysis.

Encodes invariants generic linters cannot know — lock discipline and
lock-acquisition ordering, XDR client/server protocol mirroring, the
error-taxonomy contract, and registry/spec coverage.  Entry points:

* CLI: ``discfs lint [PATHS] [--rule R] [--json] [--baseline FILE]``
* API: :func:`repro.analysis.core.run_lint`
"""

from repro.analysis.core import (
    Baseline,
    Checker,
    Finding,
    LintResult,
    Project,
    SourceFile,
    all_checkers,
    run_lint,
)

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "LintResult",
    "Project",
    "SourceFile",
    "all_checkers",
    "run_lint",
]
