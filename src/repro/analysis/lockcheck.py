"""Lock-discipline and lock-order checkers.

The storage plane guards shared state with per-instance locks
(``self._lock`` and friends).  Two whole-program invariants fall out:

* **lock-discipline** — an attribute that is mutated under a lock is
  the lock's responsibility *everywhere*: one unguarded assignment is a
  lost-update / torn-state bug that no test reliably catches.  The
  checker models held locks through the intra-class call graph (a
  helper only ever invoked under ``with self._lock`` counts as locked)
  and exempts the single-threaded construction phase (methods reachable
  only from ``__init__``).
* **lock-order** — nested acquisitions define a partial order; a cycle
  between two classes (A takes its lock then calls into B, which takes
  its lock then calls back into A) is a deadlock candidate.  Cross-class
  edges are resolved by *receiver type*: ``self._audit.record(...)``
  links to ``AuditLog`` only when ``self._audit`` is provably an
  ``AuditLog`` (constructed in a method, or bound from an annotated
  parameter).  Name-only matching is deliberately not used — generic
  method names (``write``, ``record``) collide with file objects and
  histograms and would drown the signal.  The public ``read``/``write``
  wrappers still dispatch to the ``_get``/``_put`` hooks of the resolved
  class.

Both checkers are deliberately conservative about *reads* (unlocked
reads are often benign snapshots); they only reason about mutations and
acquisitions, which keeps the signal high.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.core import Checker, Finding, Project, SourceFile

__all__ = ["LockDisciplineChecker", "LockOrderChecker", "build_lock_model"]

#: Constructors whose result makes a ``self.X = ...`` attribute a lock.
_LOCK_CTORS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})

#: Attribute-name conventions that mark a lock even without seeing the
#: constructor (e.g. a lock passed in from outside).
_LOCK_SUFFIXES = ("_lock", "_cv", "_cond")

#: Public BlockStore wrappers and the subclass hooks they dispatch to —
#: lets the order checker follow ``self.child.write_many(...)`` into the
#: ``_put_many`` of other analyzed classes.
_DISPATCH_ALIASES = {
    "read": "_get",
    "write": "_put",
    "contains": "_contains",
    "read_many": "_get_many",
    "write_many": "_put_many",
}


@dataclass
class _Mutation:
    attr: str
    line: int
    col: int
    held: frozenset[str]


@dataclass
class _Acquire:
    lock: str
    line: int
    held_before: frozenset[str]


@dataclass
class _CallSite:
    callee: str
    line: int
    held: frozenset[str]
    on_self: bool
    #: Receiver root: ``self.X.method()`` -> ``X``; ``name.method()`` ->
    #: ``name``; empty when the receiver is a deeper expression.
    recv: str = ""


@dataclass
class _Method:
    name: str
    node: ast.AST
    public: bool
    nested: bool  # closures run later, outside the def-site's locks
    mutations: list[_Mutation] = field(default_factory=list)
    acquires: list[_Acquire] = field(default_factory=list)
    calls: list[_CallSite] = field(default_factory=list)
    #: Locks this method is guaranteed to hold on entry (fixpoint result).
    min_entry: frozenset[str] = frozenset()
    #: Parameter name -> annotated type name (for receiver resolution).
    param_types: dict[str, str] = field(default_factory=dict)


@dataclass
class _Class:
    name: str
    sf: SourceFile
    node: ast.ClassDef
    lock_attrs: set[str] = field(default_factory=set)
    rlocks: set[str] = field(default_factory=set)
    thread_safe: bool = False
    methods: dict[str, _Method] = field(default_factory=dict)
    construction_only: set[str] = field(default_factory=set)
    #: Attribute name -> inferred class name (``self.X = ClassName(...)``
    #: or ``self.X = param`` with an annotated parameter).
    attr_types: dict[str, str] = field(default_factory=dict)

    @property
    def in_scope(self) -> bool:
        return bool(self.lock_attrs)


@dataclass
class _Edge:
    src: tuple[str, str]  # (class, lock)
    dst: tuple[str, str]
    sf: SourceFile
    line: int
    via: str  # human-readable provenance for the report


class LockModel:
    """Every analyzed class plus the cross-class acquisition-order graph."""

    def __init__(self, classes: list[_Class], edges: list[_Edge]) -> None:
        self.classes = classes
        self.edges = edges


def _self_attr_root(node: ast.expr) -> str | None:
    """The first attribute of a ``self.``-rooted expression, if any.

    ``self.x`` -> ``x``; ``self.x[i]`` -> ``x``; ``self.x.y`` -> ``x``.
    """
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and node.value.id == "self":
            return node.attr
        node = node.value
    return None


def _is_self_lock(node: ast.expr, locks: set[str]) -> str | None:
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == "self" and node.attr in locks:
        return node.attr
    return None


class _MethodScanner:
    """Walk one method body tracking the lexically-held self-lock set."""

    def __init__(self, cls: _Class, method: _Method) -> None:
        self.cls = cls
        self.method = method

    def scan(self, body: Iterable[ast.stmt],
             held: frozenset[str] = frozenset()) -> None:
        for stmt in body:
            self._stmt(stmt, held)

    def _stmt(self, stmt: ast.stmt, held: frozenset[str]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                lock = _is_self_lock(item.context_expr, self.cls.lock_attrs)
                self._exprs_in(item.context_expr, held)
                if lock is not None:
                    self.method.acquires.append(
                        _Acquire(lock, stmt.lineno, inner))
                    inner = inner | {lock}
            self.scan(stmt.body, inner)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def is a callback: it runs later, not under the
            # locks held where it was defined.
            nested = _Method(
                name=f"{self.method.name}.<{stmt.name}>", node=stmt,
                public=False, nested=True,
            )
            self.cls.methods[nested.name] = nested
            _MethodScanner(self.cls, nested).scan(stmt.body)
            return
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets: list[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            else:
                targets = [stmt.target]
            for target in targets:
                self._record_target(target, held)
            if stmt.value is not None:
                self._exprs_in(stmt.value, held)
            if isinstance(stmt, ast.AugAssign):
                self._exprs_in(stmt.target, held)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._record_target(target, held)
            return
        # Generic recursion: visit child statements with the same held
        # set, and collect calls from bare expressions / conditions.
        for child_field, value in ast.iter_fields(stmt):
            del child_field
            if isinstance(value, list):
                stmts = [v for v in value if isinstance(v, ast.stmt)]
                if stmts:
                    self.scan(stmts, held)
                for v in value:
                    if isinstance(v, ast.expr):
                        self._exprs_in(v, held)
                    elif isinstance(v, ast.excepthandler):
                        self.scan(v.body, held)
                    elif isinstance(v, (ast.withitem, ast.keyword)):
                        pass  # handled above / below
            elif isinstance(value, ast.expr):
                self._exprs_in(value, held)

    def _record_target(self, target: ast.expr, held: frozenset[str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(elt, held)
            return
        if isinstance(target, ast.Starred):
            self._record_target(target.value, held)
            return
        attr = _self_attr_root(target)
        if attr is not None and attr not in self.cls.lock_attrs:
            self.method.mutations.append(
                _Mutation(attr, target.lineno, target.col_offset, held))
        self._exprs_in(target, held, skip_store=True)

    def _exprs_in(self, node: ast.expr, held: frozenset[str],
                  skip_store: bool = False) -> None:
        del skip_store
        # Manual walk so deferred bodies (lambdas, comprehensions) are
        # pruned: they run later, not under the locks held right here.
        todo: list[ast.AST] = [node]
        while todo:
            sub = todo.pop()
            if isinstance(sub, (ast.Lambda, ast.ListComp, ast.SetComp,
                                ast.DictComp, ast.GeneratorExp)):
                continue
            todo.extend(ast.iter_child_nodes(sub))
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                func = sub.func
                on_self = (isinstance(func.value, ast.Name)
                           and func.value.id == "self")
                recv = ""
                if not on_self:
                    if isinstance(func.value, ast.Name):
                        recv = func.value.id
                    else:
                        recv = _self_attr_root(func.value) or ""
                self.method.calls.append(
                    _CallSite(func.attr, sub.lineno, held,
                              on_self=on_self, recv=recv))


def _ann_name(node: ast.expr | None) -> str:
    """Best-effort class name from an annotation node.

    ``Foo`` / ``mod.Foo`` / ``"Foo"`` resolve; ``Optional[Foo]`` peels
    to ``Foo``; anything fancier resolves to nothing (no edge, never a
    wrong edge).
    """
    if node is None:
        return ""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1].strip()
    if isinstance(node, ast.Subscript):
        outer = _ann_name(node.value)
        if outer == "Optional":
            return _ann_name(node.slice)
    return ""


def _infer_attr_types(cls: _Class) -> None:
    """Infer ``self.X`` attribute types and parameter types per method."""
    for item in cls.node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params: dict[str, str] = {}
        for arg in list(item.args.args) + list(item.args.kwonlyargs):
            name = _ann_name(arg.annotation)
            if name:
                params[arg.arg] = name
        if item.name in cls.methods:
            cls.methods[item.name].param_types = params
        for node in ast.walk(item):
            target: ast.expr | None = None
            value: ast.expr | None = None
            ann = ""
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                ann = _ann_name(node.annotation)
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            tname = ann
            if not tname and isinstance(value, ast.Call) \
                    and isinstance(value.func, ast.Name):
                tname = value.func.id
            if not tname and isinstance(value, ast.Name):
                tname = params.get(value.id, "")
            if tname:
                cls.attr_types[target.attr] = tname


def _collect_classes(project: Project) -> list[_Class]:
    classes: list[_Class] = []
    for sf in project.files:
        if sf.tree is None:
            continue
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            cls = _Class(name=node.name, sf=sf, node=node)
            _find_locks(cls)
            if not cls.in_scope:
                continue
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if any(isinstance(d, ast.Name) and
                           d.id in ("staticmethod", "classmethod")
                           for d in item.decorator_list):
                        continue
                    method = _Method(
                        name=item.name, node=item,
                        public=not item.name.startswith("_")
                        or (item.name.startswith("__")
                            and item.name.endswith("__")),
                        nested=False,
                    )
                    cls.methods[item.name] = method
                    _MethodScanner(cls, method).scan(item.body)
            _infer_attr_types(cls)
            _propagate_entry_locks(cls)
            _mark_construction_only(cls)
            classes.append(cls)
    return classes


def _find_locks(cls: _Class) -> None:
    for item in cls.node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == "thread_safe":
                    if isinstance(item.value, ast.Constant) \
                            and item.value.value is True:
                        cls.thread_safe = True
    for node in ast.walk(cls.node):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            value = node.value
            ctor = ""
            if isinstance(value, ast.Call):
                func = value.func
                if isinstance(func, ast.Attribute):
                    ctor = func.attr
                elif isinstance(func, ast.Name):
                    ctor = func.id
            if ctor in _LOCK_CTORS or target.attr.endswith(_LOCK_SUFFIXES):
                cls.lock_attrs.add(target.attr)
                if ctor == "RLock":
                    cls.rlocks.add(target.attr)


def _propagate_entry_locks(cls: _Class) -> None:
    """Fixpoint: which locks does each private method *always* enter with?

    ``min_entry(m)`` is the intersection over every internal call site of
    (locks lexically held at the site) ∪ ``min_entry(caller)``.  Public
    methods and nested callbacks can be entered from outside with nothing
    held, so their entry set is empty.  Call sites inside ``__init__``
    are excluded — they happen before the object is shared.
    """
    all_locks = frozenset(cls.lock_attrs)
    sites: dict[str, list[tuple[str, frozenset[str]]]] = {}
    for method in cls.methods.values():
        for call in method.calls:
            if call.on_self and call.callee in cls.methods:
                sites.setdefault(call.callee, []).append(
                    (method.name, call.held))
    for method in cls.methods.values():
        if method.public or method.nested or method.name == "__init__":
            method.min_entry = frozenset()
        elif sites.get(method.name):
            method.min_entry = all_locks  # refined downward below
        else:
            method.min_entry = frozenset()

    changed = True
    while changed:
        changed = False
        for method in cls.methods.values():
            callers = [
                (name, held) for name, held in sites.get(method.name, [])
                if name != "__init__"
            ]
            if method.public or method.nested or method.name == "__init__" \
                    or not callers:
                continue
            entry = all_locks
            for caller_name, held in callers:
                caller = cls.methods[caller_name]
                entry = entry & (held | caller.min_entry)
            if entry != method.min_entry:
                method.min_entry = entry
                changed = True


def _mark_construction_only(cls: _Class) -> None:
    """Private methods reachable *only* from ``__init__`` run before the
    instance escapes the constructing thread: exempt from discipline."""
    callers: dict[str, set[str]] = {}
    for method in cls.methods.values():
        for call in method.calls:
            if call.on_self and call.callee in cls.methods:
                callers.setdefault(call.callee, set()).add(method.name)
    construction: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, method in cls.methods.items():
            if name in construction or method.public or method.nested \
                    or name == "__init__":
                continue
            sources = callers.get(name)
            if not sources:
                continue
            if all(src == "__init__" or src in construction
                   for src in sources):
                construction.add(name)
                changed = True
    cls.construction_only = construction


def _acquire_closure(cls: _Class, name: str,
                     seen: set[str] | None = None) -> set[str]:
    """Locks acquired by ``name`` or any same-class method it calls."""
    if seen is None:
        seen = set()
    if name in seen or name not in cls.methods:
        return set()
    seen.add(name)
    method = cls.methods[name]
    out = {acq.lock for acq in method.acquires}
    for call in method.calls:
        if call.on_self:
            out |= _acquire_closure(cls, call.callee, seen)
    return out


def build_lock_model(project: Project) -> LockModel:
    cached = project.memo.get("lock_model")
    if isinstance(cached, LockModel):
        return cached
    classes = _collect_classes(project)
    edges: list[_Edge] = []

    by_name: dict[str, _Class] = {}
    for cls in classes:
        by_name.setdefault(cls.name, cls)

    for cls in classes:
        for method in cls.methods.values():
            entry = method.min_entry
            for acq in method.acquires:
                for held in acq.held_before | entry:
                    if held != acq.lock:
                        edges.append(_Edge(
                            (cls.name, held), (cls.name, acq.lock),
                            cls.sf, acq.line,
                            via=f"{cls.name}.{method.name}",
                        ))
            for call in method.calls:
                held = call.held | entry
                if not held:
                    continue
                target_name = _DISPATCH_ALIASES.get(call.callee, call.callee)
                if call.on_self and call.callee in cls.methods:
                    for lock in _acquire_closure(cls, call.callee):
                        for src in held:
                            if src != lock:
                                edges.append(_Edge(
                                    (cls.name, src), (cls.name, lock),
                                    cls.sf, call.line,
                                    via=f"{cls.name}.{method.name} -> "
                                        f"self.{call.callee}()",
                                ))
                    continue
                if call.on_self or not call.recv:
                    continue
                # Receiver-typed resolution only: an edge needs proof of
                # *which* class the call lands in.
                tname = cls.attr_types.get(call.recv) \
                    or method.param_types.get(call.recv)
                other = by_name.get(tname or "")
                if other is None or other.name == cls.name:
                    continue
                resolved = call.callee if call.callee in other.methods \
                    else target_name
                for lock in _acquire_closure(other, resolved):
                    for src in held:
                        edges.append(_Edge(
                            (cls.name, src), (other.name, lock),
                            cls.sf, call.line,
                            via=f"{cls.name}.{method.name} -> "
                                f"{other.name}.{resolved}()",
                        ))

    # Dedupe parallel edges, keeping the first (lowest line) witness.
    unique: dict[tuple[tuple[str, str], tuple[str, str]], _Edge] = {}
    for edge in sorted(edges, key=lambda e: (e.sf.rel, e.line)):
        unique.setdefault((edge.src, edge.dst), edge)
    model = LockModel(classes, list(unique.values()))
    project.memo["lock_model"] = model
    return model


class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    description = (
        "attributes mutated both under and outside their guarding lock"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        model = build_lock_model(project)
        for cls in model.classes:
            yield from self._check_class(cls)

    def _check_class(self, cls: _Class) -> Iterator[Finding]:
        # attr -> list of (method, mutation, effective held set)
        sites: dict[str, list[tuple[_Method, _Mutation, frozenset[str]]]] = {}
        for name, method in cls.methods.items():
            if name == "__init__" or name in cls.construction_only:
                continue
            for mut in method.mutations:
                effective = mut.held | method.min_entry
                sites.setdefault(mut.attr, []).append(
                    (method, mut, effective))
        for attr, occurrences in sorted(sites.items()):
            guard = self._guard_for(cls, occurrences)
            if guard is None:
                continue
            guarded = [o for o in occurrences if guard in o[2]]
            unguarded = [o for o in occurrences if guard not in o[2]]
            if not guarded or not unguarded:
                continue
            witness = guarded[0][1]
            for method, mut, _held in unguarded:
                yield self.finding(
                    cls.sf, None,
                    message=(
                        f"{cls.name}.{method.name} mutates self.{attr} "
                        f"without holding self.{guard} "
                        f"(guarded mutation at line {witness.line})"
                    ),
                    hint=(
                        f"wrap the mutation in `with self.{guard}:`, or "
                        "suppress with a justification if the path is "
                        "provably single-threaded"
                    ),
                    line=mut.line, col=mut.col,
                )

    @staticmethod
    def _guard_for(
        cls: _Class,
        occurrences: list[tuple[_Method, _Mutation, frozenset[str]]],
    ) -> str | None:
        """The lock most often held while mutating this attribute."""
        counts: dict[str, int] = {}
        for _method, _mut, held in occurrences:
            for lock in held & cls.lock_attrs:
                counts[lock] = counts.get(lock, 0) + 1
        if not counts:
            return None
        return max(sorted(counts), key=lambda lock: counts[lock])


class LockOrderChecker(Checker):
    name = "lock-order"
    description = "cycles in the cross-class lock-acquisition-order graph"

    def run(self, project: Project) -> Iterator[Finding]:
        model = build_lock_model(project)
        graph: dict[tuple[str, str], set[tuple[str, str]]] = {}
        by_pair: dict[tuple[tuple[str, str], tuple[str, str]], _Edge] = {}
        for edge in model.edges:
            graph.setdefault(edge.src, set()).add(edge.dst)
            by_pair[(edge.src, edge.dst)] = edge
        for cycle in _cycles(graph):
            edges = [
                by_pair[(cycle[i], cycle[(i + 1) % len(cycle)])]
                for i in range(len(cycle))
            ]
            # A suppression on any participating acquisition covers the
            # whole cycle — the cycle is one fact, not N facts.
            if any(e.sf.suppressed(self.name, e.line) for e in edges):
                continue
            path = " -> ".join(f"{c}.{lk}" for c, lk in cycle)
            first = f"{cycle[0][0]}.{cycle[0][1]}"
            witnesses = "; ".join(
                f"{e.sf.rel}:{e.line} ({e.via})" for e in edges
            )
            yield self.finding(
                edges[0].sf, None,
                message=(
                    f"lock-order cycle (deadlock candidate): "
                    f"{path} -> {first} [{witnesses}]"
                ),
                hint=(
                    "impose a single acquisition order, or release the "
                    "outer lock before calling into the other class"
                ),
                line=edges[0].line, col=0,
            )


def _cycles(
    graph: dict[tuple[str, str], set[tuple[str, str]]],
) -> list[list[tuple[str, str]]]:
    """One representative simple cycle per strongly connected component."""
    index = 0
    indices: dict[tuple[str, str], int] = {}
    low: dict[tuple[str, str], int] = {}
    stack: list[tuple[str, str]] = []
    on_stack: set[tuple[str, str]] = set()
    sccs: list[list[tuple[str, str]]] = []

    nodes = set(graph) | {d for dsts in graph.values() for d in dsts}

    def strongconnect(node: tuple[str, str]) -> None:
        nonlocal index
        work: list[tuple[tuple[str, str], Iterator[tuple[str, str]]]] = [
            (node, iter(sorted(graph.get(node, ()))))
        ]
        indices[node] = low[node] = index
        index += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, children = work[-1]
            advanced = False
            for child in children:
                if child not in indices:
                    indices[child] = low[child] = index
                    index += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    low[current] = min(low[current], indices[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[current])
            if low[current] == indices[current]:
                component: list[tuple[str, str]] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                if len(component) > 1:
                    sccs.append(list(reversed(component)))

    for node in sorted(nodes):
        if node not in indices:
            strongconnect(node)

    cycles: list[list[tuple[str, str]]] = []
    for component in sccs:
        members = set(component)
        start = component[0]
        path = [start]
        seen = {start}
        current = start
        while True:
            nxt = next(
                (n for n in sorted(graph.get(current, ()))
                 if n in members and (n == start or n not in seen)),
                None,
            )
            if nxt is None or nxt == start:
                break
            path.append(nxt)
            seen.add(nxt)
            current = nxt
        cycles.append(path)
    return cycles
