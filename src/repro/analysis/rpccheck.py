"""RPC protocol-drift checker.

The block-store wire protocol is hand-rolled XDR: every ``PROC_*``
procedure has a client encode site (``self._call(PROC_X, enc.getvalue())``)
and a server decode site (the registered handler), and nothing but
convention keeps the two pack/unpack sequences mirrored.  One added
field on one side is a silent corruption bug that only shows up as an
``XDRError`` (or worse, misparsed data) at runtime.

This checker recovers both schemas statically and diffs them:

* client sites are found by scanning every function for calls whose
  first argument is a ``PROC_*`` constant; pack/unpack events are
  collected in evaluation order, so chained encoders
  (``XDREncoder().pack_uint(n).pack_opaque(d)``), windowed loops and
  multi-proc functions (the session handshake drives ``CHALLENGE`` and
  ``SESSION_OPEN`` from one body) all attribute correctly;
* ``pack_array``/``unpack_array`` element schemas are resolved through
  lambdas, local ``def``\\ s and same-class helper methods (one-level
  fold — e.g. ``self._decode_read_window(dec, ...)``);
* server handlers are found via ``self.register(PROC_X, ...)``; each
  ``return`` branch yields a reply schema and all branches must agree;
* the v2 envelope is checked structurally: every registration must go
  through the same gate wrapper, the gate must start by unpacking the
  opaque session token and start every reply with the status word, and
  the client's transport method must mirror both.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.analysis.core import Checker, Finding, Project, SourceFile

__all__ = ["RPCDriftChecker"]

#: One schema item: ("uint", None) or ("array", (<element schema>,)).
Item = tuple[str, tuple["Item", ...] | None]
Schema = tuple[Item, ...]

#: Methods never folded into a client schema: they implement the
#: envelope / transport, not per-proc payloads.
_NO_FOLD = frozenset({"register", "handle"})

_COMPOSITE = {"pack_array": "array", "unpack_array": "array",
              "pack_optional": "optional", "unpack_optional": "optional"}

#: The XDR codec surface (xdr.py); anything else named ``pack_*`` is an
#: application helper, not a wire primitive (e.g. a local ``pack_window``
#: def), and is handled by the fold path instead.
_XDR_KINDS = frozenset({
    "uint", "int", "uhyper", "hyper", "bool", "enum",
    "fixed_opaque", "opaque", "string", "array", "optional",
})


def _kind(method_name: str) -> str | None:
    for prefix in ("pack_", "unpack_"):
        if method_name.startswith(prefix):
            kind = method_name[len(prefix):]
            if kind in _XDR_KINDS:
                return kind
    return None


@dataclass
class _Event:
    op: str  # "pack" | "unpack" | "call" | "ret"
    line: int
    kind: str = ""  # schema kind for pack/unpack
    elem: Schema | None = None
    proc: str = ""  # for "call"
    callee: str = ""  # for "call": the dispatch method name
    in_return: bool = False  # pack lexically inside a return expression
    ret_packs: Schema = ()  # for "ret": packs inside this return's expr


@dataclass
class _Registration:
    proc: str
    handler: str
    gated: bool
    gate: str
    line: int
    sf: SourceFile
    cls: ast.ClassDef


@dataclass
class _ClientSite:
    proc: str
    args: Schema
    reply: Schema
    line: int
    reply_line: int
    sf: SourceFile
    func: str
    dispatch: str = ""  # the method routing the call (_call/_submit)


@dataclass
class _ServerProc:
    proc: str
    req: Schema
    reply: Schema
    line: int
    sf: SourceFile
    handler: str
    branches: tuple[Schema, ...] = ()


class _FunctionScanner:
    """Collect pack/unpack/call events from one function, in evaluation
    order, resolving array elements and folding one level of helpers."""

    def __init__(self, fn: ast.AST, class_methods: dict[str, ast.AST],
                 include_nested: bool = False) -> None:
        self.class_methods = class_methods
        self.include_nested = include_nested
        self.local_defs: dict[str, ast.AST] = {}
        body = getattr(fn, "body", [])
        for node in ast.walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not fn:
                self.local_defs[node.name] = node
        self.events: list[_Event] = []
        self._scan_body(body, in_return=False)

    # -- traversal ---------------------------------------------------------

    def _scan_body(self, body: Sequence[ast.stmt], in_return: bool) -> None:
        for stmt in body:
            self._scan_node(stmt, in_return)

    def _scan_node(self, node: ast.AST, in_return: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if self.include_nested:
                self._scan_body(node.body, in_return=False)
            return
        if isinstance(node, (ast.Lambda, ast.ListComp, ast.SetComp,
                             ast.DictComp, ast.GeneratorExp)):
            return
        if isinstance(node, ast.Call) and _call_name(node) == "register":
            # Registration wiring (`self.register(PROC_X, self._gated(
            # PROC_X, self._proc_x))`): the inner wrapper call also has a
            # PROC_* first argument and would be misread as a client
            # dispatch site.  _find_registrations owns this shape.
            return
        if isinstance(node, ast.Return):
            packs_before = len(self.events)
            if node.value is not None:
                self._scan_node(node.value, in_return=True)
            ret_packs = tuple(
                (e.kind, e.elem) for e in self.events[packs_before:]
                if e.op == "pack"
            )
            self.events.append(
                _Event(op="ret", line=node.lineno, ret_packs=ret_packs))
            return
        # Children first (arguments evaluate before the call fires), so
        # chained encoders come out in execution order.
        for child in ast.iter_child_nodes(node):
            self._scan_node(child, in_return)
        if isinstance(node, ast.Call):
            self._handle_call(node, in_return)

    # -- call classification -----------------------------------------------

    def _handle_call(self, node: ast.Call, in_return: bool) -> None:
        func = node.func
        name = ""
        on_self = False
        if isinstance(func, ast.Attribute):
            name = func.attr
            on_self = (isinstance(func.value, ast.Name)
                       and func.value.id == "self")
        elif isinstance(func, ast.Name):
            name = func.id

        kind = _kind(name)
        if kind is not None:
            composite = _COMPOSITE.get(name)
            elem: Schema | None = None
            if composite is not None:
                elem = self._element_schema(node, name)
                kind = composite
            op = "pack" if name.startswith("pack_") else "unpack"
            self.events.append(_Event(
                op=op, line=node.lineno, kind=kind, elem=elem,
                in_return=in_return,
            ))
            return

        proc = _proc_arg(node)
        if proc is not None and name != "register" and name:
            self.events.append(_Event(
                op="call", line=node.lineno, proc=proc, callee=name))
            return

        # One-level fold of payload helpers: a local def or same-class
        # method whose body is pure pack/unpack (no dispatch of its own).
        target = self.local_defs.get(name)
        if target is None and on_self and name not in _NO_FOLD:
            target = self.class_methods.get(name)
        if target is not None:
            sub = _FunctionScanner(target, class_methods={})
            if any(e.op == "call" for e in sub.events):
                return
            for e in sub.events:
                if e.op in ("pack", "unpack"):
                    self.events.append(_Event(
                        op=e.op, line=node.lineno, kind=e.kind, elem=e.elem,
                        in_return=in_return,
                    ))

    def _element_schema(self, node: ast.Call, name: str) -> Schema:
        """The per-item schema of a pack/unpack_array|optional call."""
        fn_arg: ast.expr | None = None
        if name.startswith("pack_"):
            if len(node.args) >= 2:
                fn_arg = node.args[1]
        elif node.args:
            fn_arg = node.args[0]
        if fn_arg is None:
            return ()
        if isinstance(fn_arg, ast.Lambda):
            sub = _FunctionScanner(_wrap_lambda(fn_arg), class_methods={})
        elif isinstance(fn_arg, ast.Name) and fn_arg.id in self.local_defs:
            sub = _FunctionScanner(self.local_defs[fn_arg.id],
                                   class_methods={})
        elif isinstance(fn_arg, ast.Attribute) \
                and isinstance(fn_arg.value, ast.Name) \
                and fn_arg.value.id == "self" \
                and fn_arg.attr in self.class_methods:
            sub = _FunctionScanner(self.class_methods[fn_arg.attr],
                                   class_methods={})
        else:
            return ()
        return tuple(
            (e.kind, e.elem) for e in sub.events
            if e.op == ("pack" if name.startswith("pack_") else "unpack")
        )


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return ""


def _wrap_lambda(node: ast.Lambda) -> ast.AST:
    wrapper = ast.FunctionDef(
        name="<lambda>", args=node.args,
        body=[ast.Return(value=node.body, lineno=node.lineno,
                         col_offset=node.col_offset)],
        decorator_list=[], lineno=node.lineno, col_offset=node.col_offset,
    )
    return ast.fix_missing_locations(wrapper)


def _proc_arg(node: ast.Call) -> str | None:
    if node.args and isinstance(node.args[0], ast.Name) \
            and node.args[0].id.startswith("PROC_"):
        return node.args[0].id
    return None


def _packs(events: Sequence[_Event]) -> Schema:
    return tuple((e.kind, e.elem) for e in events if e.op == "pack")


def _unpacks(events: Sequence[_Event]) -> Schema:
    return tuple((e.kind, e.elem) for e in events if e.op == "unpack")


def _render(schema: Schema) -> str:
    parts = []
    for kind, elem in schema:
        if elem is not None and kind in ("array", "optional"):
            parts.append(f"{kind}<{_render(elem)}>")
        else:
            parts.append(kind)
    return "[" + ", ".join(parts) + "]"


def _mirrors(a: Schema, b: Schema) -> bool:
    if len(a) != len(b):
        return False
    for (ka, ea), (kb, eb) in zip(a, b):
        if ka != kb:
            return False
        if ka in ("array", "optional"):
            # An unresolvable element (dynamic callable) is (), which we
            # treat as "unknown, assume ok" rather than a false positive.
            if ea and eb and not _mirrors(ea, eb):
                return False
    return True


class RPCDriftChecker(Checker):
    name = "rpc-drift"
    description = (
        "client XDR encode sites must mirror server decode sites per PROC_*"
    )

    def run(self, project: Project) -> Iterator[Finding]:
        registrations: list[_Registration] = []
        servers: dict[str, _ServerProc] = {}
        clients: list[_ClientSite] = []
        gates: list[tuple[SourceFile, ast.ClassDef, str]] = []

        for sf in project.files:
            if sf.tree is None:
                continue
            for cls in ast.walk(sf.tree):
                if not isinstance(cls, ast.ClassDef):
                    continue
                methods: dict[str, ast.AST] = {
                    item.name: item for item in cls.body
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))
                }
                regs = _find_registrations(sf, cls)
                registrations.extend(regs)
                for reg in regs:
                    if reg.gated and (sf, cls, reg.gate) not in gates:
                        gates.append((sf, cls, reg.gate))
                    handler = methods.get(reg.handler)
                    if handler is None:
                        continue
                    servers.setdefault(reg.proc, _extract_server(
                        sf, reg, handler, methods))
                for mname, fn in methods.items():
                    clients.extend(
                        _extract_client_sites(sf, cls, mname, fn, methods))

        yield from self._check_registration_envelope(registrations)
        yield from self._check_gate_shape(gates)
        yield from self._check_client_envelope(clients, gates, project)
        yield from self._check_pairing(servers, clients, registrations)

    # -- envelope ----------------------------------------------------------

    def _check_registration_envelope(
        self, registrations: list[_Registration],
    ) -> Iterator[Finding]:
        if not registrations:
            return
        gated = [r for r in registrations if r.gated]
        if gated and len(gated) != len(registrations):
            for reg in registrations:
                if not reg.gated:
                    yield self.finding(
                        reg.sf, None,
                        message=(
                            f"{reg.proc} is registered without the "
                            f"{gated[0].gate} envelope while "
                            f"{len(gated)} other procs use it — its "
                            "replies will lack the status word / token "
                            "framing clients expect"
                        ),
                        hint=f"register via self.{gated[0].gate}(...)",
                        line=reg.line,
                    )

    def _check_gate_shape(
        self, gates: list[tuple[SourceFile, ast.ClassDef, str]],
    ) -> Iterator[Finding]:
        for sf, cls, gate_name in gates:
            gate_fn = next(
                (item for item in cls.body
                 if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                 and item.name == gate_name),
                None,
            )
            if gate_fn is None:
                continue
            events = _FunctionScanner(
                gate_fn, class_methods={}, include_nested=True).events
            unpacks = _unpacks(events)
            if not unpacks or unpacks[0][0] != "opaque":
                yield self.finding(
                    sf, None,
                    message=(
                        f"{cls.name}.{gate_name} does not start by "
                        "unpacking the opaque session token; the client "
                        "frames every call with one"
                    ),
                    line=gate_fn.lineno,
                )
            for event in events:
                if event.op == "ret" and event.ret_packs \
                        and event.ret_packs[0][0] != "uint":
                    yield self.finding(
                        sf, None,
                        message=(
                            f"{cls.name}.{gate_name} reply at line "
                            f"{event.line} does not start with the uint "
                            "status word"
                        ),
                        line=event.line,
                    )

    def _check_client_envelope(
        self,
        clients: list[_ClientSite],
        gates: list[tuple[SourceFile, ast.ClassDef, str]],
        project: Project,
    ) -> Iterator[Finding]:
        del project
        if not clients or not gates:
            return
        # The dispatch methods client sites route through (_call/_submit)
        # must frame the token (their one-level fold reaches _frame); the
        # status word may be decoded anywhere in the class (_call does it
        # inline, the async path defers it to _await/_check_status), so
        # that check is per class.
        wanted = {site.dispatch for site in clients if site.dispatch}
        checked: set[tuple[str, str]] = set()
        status_checked: set[str] = set()
        files = []
        for site in clients:
            if site.sf not in files:
                files.append(site.sf)
        for sf in files:
            if sf.tree is None:
                continue
            for cls in ast.walk(sf.tree):
                if not isinstance(cls, ast.ClassDef):
                    continue
                methods: dict[str, ast.AST] = {
                    item.name: item for item in cls.body
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))
                }
                dispatchers = sorted(wanted & set(methods))
                for name in dispatchers:
                    key = (cls.name, name)
                    if key in checked:
                        continue
                    checked.add(key)
                    events = _FunctionScanner(
                        methods[name], class_methods=methods).events
                    fn_line = int(getattr(methods[name], "lineno", 1))
                    if not any(e.op == "pack" and e.kind == "opaque"
                               for e in events):
                        yield self.finding(
                            sf, None,
                            message=(
                                f"{cls.name}.{name} never packs the "
                                "opaque session token the server gate "
                                "unpacks first"
                            ),
                            line=fn_line,
                        )
                if dispatchers and cls.name not in status_checked:
                    status_checked.add(cls.name)
                    decodes_status = any(
                        e.op == "unpack" and e.kind == "uint"
                        for name in methods
                        for e in _FunctionScanner(
                            methods[name], class_methods=methods).events
                    )
                    if not decodes_status:
                        yield self.finding(
                            sf, None,
                            message=(
                                f"{cls.name} never unpacks the uint "
                                "status word the server gate prefixes "
                                "every reply with"
                            ),
                            line=int(getattr(cls, "lineno", 1)),
                        )

    # -- per-proc schemas --------------------------------------------------

    def _check_pairing(
        self,
        servers: dict[str, _ServerProc],
        clients: list[_ClientSite],
        registrations: list[_Registration],
    ) -> Iterator[Finding]:
        client_procs = {site.proc for site in clients}
        for proc, server in sorted(servers.items()):
            for branch in server.branches[1:]:
                if not _mirrors(branch, server.reply):
                    yield self.finding(
                        server.sf, None,
                        message=(
                            f"{proc} handler {server.handler} has "
                            f"disagreeing reply branches: "
                            f"{_render(server.reply)} vs "
                            f"{_render(branch)} — clients cannot decode "
                            "both"
                        ),
                        line=server.line,
                    )
                    break
        for site in clients:
            server = servers.get(site.proc)
            if server is None:
                if registrations:
                    yield self.finding(
                        site.sf, None,
                        message=(
                            f"client calls {site.proc} but no server "
                            "handler is registered for it"
                        ),
                        line=site.line,
                    )
                continue
            if not _mirrors(site.args, server.req):
                yield self.finding(
                    site.sf, None,
                    message=(
                        f"{site.proc} request drift: client "
                        f"{site.func} encodes {_render(site.args)} but "
                        f"server {server.handler} decodes "
                        f"{_render(server.req)} ({server.sf.rel}:"
                        f"{server.line})"
                    ),
                    hint="make the pack sequence mirror the unpack "
                         "sequence, type for type, in order",
                    line=site.line,
                )
            if not _mirrors(site.reply, server.reply) \
                    and not _reply_prefix_ok(site.reply, server.reply):
                yield self.finding(
                    site.sf, None,
                    message=(
                        f"{site.proc} reply drift: server "
                        f"{server.handler} encodes "
                        f"{_render(server.reply)} but client "
                        f"{site.func} decodes {_render(site.reply)} "
                        f"({server.sf.rel}:{server.line})"
                    ),
                    hint="make the reply unpack sequence mirror the "
                         "handler's pack sequence",
                    line=site.reply_line or site.line,
                )
        for proc, server in sorted(servers.items()):
            if clients and proc not in client_procs:
                yield self.finding(
                    server.sf, None,
                    message=(
                        f"{proc} has a server handler but no client "
                        "encode site was found"
                    ),
                    severity="warning",
                    line=server.line,
                )


def _reply_prefix_ok(client: Schema, server: Schema) -> bool:
    """An empty client reply schema means the decode is not observable
    at this site — fire-and-forget ``.done()`` calls, or the pipelined
    path where ``_submit`` returns a future and a nested ``drain_one``
    decodes later.  Only a *mismatched* decode is drift."""
    del server
    return client == ()


def _find_registrations(
    sf: SourceFile, cls: ast.ClassDef,
) -> list[_Registration]:
    out: list[_Registration] = []
    for node in ast.walk(cls):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "register"):
            continue
        proc = _proc_arg(node)
        if proc is None or len(node.args) < 2:
            continue
        target = node.args[1]
        gated = False
        gate = ""
        handler = ""
        if isinstance(target, ast.Call) \
                and isinstance(target.func, ast.Attribute) \
                and isinstance(target.func.value, ast.Name) \
                and target.func.value.id == "self":
            gated = True
            gate = target.func.attr
            for arg in target.args:
                if isinstance(arg, ast.Attribute) \
                        and isinstance(arg.value, ast.Name) \
                        and arg.value.id == "self":
                    handler = arg.attr
        elif isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            handler = target.attr
        if handler:
            out.append(_Registration(
                proc=proc, handler=handler, gated=gated, gate=gate,
                line=node.lineno, sf=sf, cls=cls,
            ))
    return out


def _extract_server(
    sf: SourceFile,
    reg: _Registration,
    handler: ast.AST,
    methods: dict[str, ast.AST],
) -> _ServerProc:
    events = _FunctionScanner(handler, class_methods=methods).events
    req = _unpacks(events)
    branches: list[Schema] = []
    loose: list[Item] = []
    for event in events:
        if event.op == "pack" and not event.in_return:
            loose.append((event.kind, event.elem))
        elif event.op == "ret":
            branches.append(event.ret_packs or tuple(loose))
    if not branches:
        branches.append(tuple(loose))
    reply = branches[0]
    return _ServerProc(
        proc=reg.proc, req=req, reply=reply, line=reg.line, sf=sf,
        handler=reg.handler, branches=tuple(branches),
    )


def _extract_client_sites(
    sf: SourceFile,
    cls: ast.ClassDef,
    mname: str,
    fn: ast.AST,
    methods: dict[str, ast.AST],
) -> list[_ClientSite]:
    events = _FunctionScanner(fn, class_methods=methods).events
    if not any(e.op == "call" for e in events):
        return []
    sites: list[_ClientSite] = []
    pending: list[Item] = []
    current: _ClientSite | None = None
    current_reply: list[Item] = []

    def flush() -> None:
        nonlocal current
        if current is not None:
            current.reply = tuple(current_reply)
            sites.append(current)
            current = None

    for event in events:
        if event.op == "pack":
            pending.append((event.kind, event.elem))
        elif event.op == "call":
            flush()
            current = _ClientSite(
                proc=event.proc, args=tuple(pending), reply=(),
                line=event.line, reply_line=0, sf=sf,
                func=f"{cls.name}.{mname}", dispatch=event.callee,
            )
            current_reply.clear()
            pending.clear()
        elif event.op == "unpack" and current is not None:
            current_reply.append((event.kind, event.elem))
            if not current.reply_line:
                current.reply_line = event.line
    flush()
    return sites
