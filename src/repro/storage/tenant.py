"""Per-tenant views over one shared block store (``tenant://``).

Multi-tenancy on a served ring is a *mapping* problem before it is an
authorization one: every tenant must see a private, zero-based block
namespace while their blocks actually live side by side on the same
physical store.  :class:`TenantBlockStore` is that view — a contiguous
region ``[offset, offset + num_blocks)`` of the child store, re-based so
the tenant addresses blocks ``0..num_blocks-1`` and *cannot name* a
block outside its region (out-of-range numbers fail the ordinary
``_check_range`` validation before any mapping happens).

On top of the namespace the view enforces the resource limits the
shared-infrastructure story needs, all computed from its own
``snapshot()`` counters:

* **block quota** — at most ``quota_blocks`` *distinct* blocks ever
  written (the view tracks its written set, seeded lazily from the
  child so re-served rings keep counting);
* **byte budget** — cumulative ``bytes_written`` may not exceed
  ``quota_bytes`` (a lifetime write budget, the accounting DisCFS-style
  deployments bill on);
* **rate limit** — a token bucket of ``rate_ops`` tokens/second
  (burst ``burst``), one token per block touched, covering reads and
  writes alike.

Breaches raise the typed errors :class:`~repro.errors.QuotaExceeded`
and :class:`~repro.errors.RateLimited`, which the RPC layer carries to
the client as in-band status codes (not transport failures, so
``replica://`` never mistakes an over-quota tenant for a down node).

The view forwards the child's *internal* hooks (the ``slow://`` idiom):
one stats layer, and holes stay visible as ``None`` to overlays stacked
above.  Tenant traffic is therefore counted *on the view*, and surfaces
in ``snapshot().extra`` under flat ``tenant:<name>:<counter>`` keys that
``store-inspect`` and the serving gate aggregate per tenant.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.errors import InvalidArgument, QuotaExceeded, RateLimited
from repro.storage.base import BlockStore, Capabilities


class TokenBucket:
    """Classic token bucket; caller supplies the clock (tests inject one)."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise InvalidArgument("rate must be positive")
        if burst <= 0:
            raise InvalidArgument("burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def try_take(self, n: float) -> bool:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens < n:
            return False
        self._tokens -= n
        return True


class TenantBlockStore(BlockStore):
    """A quota- and rate-limited window onto a region of a shared store."""

    scheme = "tenant"

    def __init__(
        self,
        child: BlockStore,
        name: str,
        offset: int = 0,
        num_blocks: Optional[int] = None,
        *,
        quota_blocks: Optional[int] = None,
        quota_bytes: Optional[int] = None,
        rate_ops: Optional[float] = None,
        burst: Optional[float] = None,
        owns_child: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not name:
            raise InvalidArgument("tenant view needs a non-empty name")
        if offset < 0:
            raise InvalidArgument("tenant offset must be >= 0")
        if num_blocks is None:
            num_blocks = child.num_blocks - offset
        if num_blocks <= 0 or offset + num_blocks > child.num_blocks:
            raise InvalidArgument(
                f"tenant region [{offset}, {offset + num_blocks}) does not fit "
                f"in child store of {child.num_blocks} blocks"
            )
        super().__init__(num_blocks, child.block_size)
        self.child = child
        self.name = name
        self.offset = offset
        self.quota_blocks = quota_blocks
        self.quota_bytes = quota_bytes
        self.owns_child = owns_child
        self._bucket = (
            TokenBucket(rate_ops, burst if burst is not None else max(rate_ops, 1.0),
                        clock)
            if rate_ops is not None else None
        )
        self._lock = threading.Lock()
        self._written: Optional[set[int]] = None  # lazy; tenant-local numbers
        #: Limit-enforcement counters (fold into ``snapshot().extra``).
        self.quota_denied = 0
        self.rate_denied = 0

    # -- bookkeeping -------------------------------------------------------

    def _written_set(self) -> set[int]:
        """The tenant-local numbers ever written, seeded from the child.

        Seeding makes quotas survive re-serving an existing ring: blocks a
        tenant wrote in a previous incarnation still count against it.
        """
        if self._written is None:
            lo, hi = self.offset, self.offset + self.num_blocks
            try:
                existing = self.child.used_block_numbers()
            except NotImplementedError:
                existing = []
            self._written = {b - lo for b in existing if lo <= b < hi}
        return self._written

    def _charge(self, reads: int = 0, writes: Optional[list[int]] = None) -> None:
        """Enforce rate + quota *before* any I/O happens (all-or-nothing)."""
        writes = writes or []
        with self._lock:
            if self._bucket is not None and not self._bucket.try_take(
                reads + len(writes)
            ):
                self.rate_denied += 1
                raise RateLimited(
                    f"tenant {self.name!r}: rate limit exceeded "
                    f"({self._bucket.rate:g} ops/s)"
                )
            if not writes:
                return
            written = self._written_set()
            if self.quota_blocks is not None:
                new = {b for b in writes if b not in written}
                if len(written) + len(new) > self.quota_blocks:
                    self.quota_denied += 1
                    raise QuotaExceeded(
                        f"tenant {self.name!r}: block quota exceeded "
                        f"({len(written)} used of {self.quota_blocks})"
                    )
            if self.quota_bytes is not None:
                incoming = len(writes) * self.block_size
                if self.stats.bytes_written + incoming > self.quota_bytes:
                    self.quota_denied += 1
                    raise QuotaExceeded(
                        f"tenant {self.name!r}: byte budget exceeded "
                        f"({self.stats.bytes_written} written of "
                        f"{self.quota_bytes})"
                    )
            written.update(writes)

    # -- public wrappers (limits enforced before delegation) ----------------

    def read(self, block_no: int) -> bytes:
        self._check_range(block_no)
        self._charge(reads=1)
        return super().read(block_no)

    def write(self, block_no: int, data: bytes) -> None:
        self._check_range(block_no)
        if len(data) > self.block_size:
            raise InvalidArgument(
                f"data ({len(data)} bytes) exceeds block size "
                f"({self.block_size})"
            )
        self._charge(writes=[block_no])
        super().write(block_no, data)

    def read_many(self, block_nos: list[int]) -> list[bytes]:
        block_nos = list(block_nos)
        for block_no in block_nos:
            self._check_range(block_no)
        self._charge(reads=len(block_nos))
        return super().read_many(block_nos)

    def write_many(self, items: list[tuple[int, bytes]]) -> None:
        items = list(items)
        for block_no, data in items:
            self._check_range(block_no)
            if len(data) > self.block_size:
                raise InvalidArgument(
                    f"data ({len(data)} bytes) exceeds block size "
                    f"({self.block_size})"
                )
        self._charge(writes=[block_no for block_no, _ in items])
        super().write_many(items)

    # -- region-mapped internal hooks ---------------------------------------

    def _get(self, block_no: int) -> bytes | None:
        return self.child._get(self.offset + block_no)

    def _put(self, block_no: int, data: bytes) -> None:
        self.child._put(self.offset + block_no, data)

    def _contains(self, block_no: int) -> bool:
        return self.child._contains(self.offset + block_no)

    def _get_many(self, block_nos: list[int]) -> list[bytes | None]:
        return self.child._get_many([self.offset + b for b in block_nos])

    def _put_many(self, items: list[tuple[int, bytes]]) -> None:
        self.child._put_many([(self.offset + b, d) for b, d in items])

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> None:
        self.child.flush()

    def close(self) -> None:
        if self.owns_child:
            self.child.close()

    # -- introspection -------------------------------------------------------

    def used_blocks(self) -> int:
        with self._lock:
            return len(self._written_set())

    def used_block_numbers(self) -> list[int]:
        with self._lock:
            return sorted(self._written_set())

    def capabilities(self) -> Capabilities:
        child = self.child.capabilities()
        return Capabilities(
            thread_safe=child.thread_safe,
            durable=child.durable,
            networked=child.networked,
            composite=True,
        )

    def child_stores(self) -> list[BlockStore]:
        return [self.child]

    def leaf_stores(self) -> list[BlockStore]:
        return self.child.leaf_stores()

    def describe(self) -> str:
        limits = []
        if self.quota_blocks is not None:
            limits.append(f"quota={self.quota_blocks}blk")
        if self.quota_bytes is not None:
            limits.append(f"bytes={self.quota_bytes}")
        if self._bucket is not None:
            limits.append(f"rate={self._bucket.rate:g}/s")
        suffix = (" " + ",".join(limits)) if limits else ""
        return (
            f"tenant://{self.name}  blocks [{self.offset}, "
            f"{self.offset + self.num_blocks}) of {self.child.describe()}{suffix}"
        )

    def _extra_stats(self) -> dict[str, float]:
        """Flat ``tenant:<name>:<counter>`` keys (``extra`` maps str->float,
        so the tenant name must ride in the key, not a value)."""
        prefix = f"tenant:{self.name}:"
        with self._lock:
            used = float(len(self._written_set()))
        out = {
            prefix + "offset": float(self.offset),
            prefix + "blocks": float(self.num_blocks),
            prefix + "used": used,
            prefix + "reads": float(self.stats.reads),
            prefix + "writes": float(self.stats.writes),
            prefix + "bytes_read": float(self.stats.bytes_read),
            prefix + "bytes_written": float(self.stats.bytes_written),
            prefix + "quota_denied": float(self.quota_denied),
            prefix + "rate_denied": float(self.rate_denied),
        }
        if self.quota_blocks is not None:
            out[prefix + "quota_blocks"] = float(self.quota_blocks)
        if self.quota_bytes is not None:
            out[prefix + "quota_bytes"] = float(self.quota_bytes)
        if self._bucket is not None:
            out[prefix + "rate_ops"] = float(self._bucket.rate)
        return out
