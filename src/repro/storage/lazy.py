"""Lazy/retrying child store (``lazy://<child-uri>[#retry=S]``).

``remote://`` (and anything composed over it) connects eagerly, so a
node that happens to be down at *mount* time fails ``open_store`` even
when the caller — a ``replica://`` quorum — could tolerate the outage
during operation.  :class:`LazyBlockStore` holds the child *URI* instead
of the child: the real store is opened on first use and re-opened after
a failure, with a small backoff (``retry``, seconds) so a dead node does
not add a connect timeout to every operation.

While the child is down every operation raises
:class:`~repro.errors.StoreUnavailable` — exactly what ``replica://``
already treats as a degraded child — and the first operation after the
node returns reconnects it, at which point read-repair heals whatever
it missed.  ``replica://`` applies this wrapper automatically when one
of its children is unreachable at mount time (the ROADMAP lazy-connect
item), so ``replica://remote://h1;remote://h2;remote://h3#w=2&r=2``
mounts with a node down and heals it on reconnect.

Geometry is provisional until the first successful open (a down node
cannot be asked): the wrapper assumes the mount-time ``num_blocks`` /
``block_size`` and adopts the child's real block count on connect.  A
block-size mismatch at that point is a configuration error and raises.
"""

from __future__ import annotations

import threading
import time

from repro.errors import InvalidArgument, StoreUnavailable
from repro.fs.blockdev import DEFAULT_BLOCK_SIZE
from repro.storage.base import BlockStore

#: Seconds to wait after a failed open before trying the child again.
DEFAULT_RETRY_INTERVAL = 1.0


class LazyBlockStore(BlockStore):
    """Defer and retry opening ``uri`` until the backend is reachable.

    ``uri`` may also be a :class:`~repro.storage.spec.StoreSpec` —
    programmatic-only topologies have no URI form, and ``open_store``
    accepts either.
    """

    scheme = "lazy"

    def __init__(self, uri, num_blocks: int = 16384,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 retry_interval: float = DEFAULT_RETRY_INTERVAL):
        super().__init__(num_blocks, block_size)
        self.uri = uri
        #: Short human name for messages (spec objects repr verbosely).
        self._label = uri if isinstance(uri, str) else (
            f"<{type(uri).__name__}>"
        )
        self.retry_interval = retry_interval
        self.reconnects = 0
        self._child: BlockStore | None = None
        self._next_attempt = 0.0  # monotonic deadline for the next try
        self._closed = False
        # Concurrent fan-out (replica lanes racing a read against a
        # background write) may hit a down child from two threads at
        # once; serialize open/reopen so exactly one connection results.
        self._connect_lock = threading.Lock()

    # -- connection management ---------------------------------------------

    @property
    def connected(self) -> bool:
        return self._child is not None

    def try_connect(self) -> bool:
        """Attempt to open the child now; False if it is unreachable."""
        try:
            self._ensure()
            return True
        except StoreUnavailable:
            return False

    def _ensure(self) -> BlockStore:
        with self._connect_lock:
            if self._closed:
                raise InvalidArgument(f"lazy store {self._label} is closed")
            if self._child is not None:
                return self._child
            now = time.monotonic()
            if now < self._next_attempt:
                raise StoreUnavailable(
                    f"{self._label} is down (next retry in "
                    f"{self._next_attempt - now:.1f}s)"
                )
            from repro.storage.registry import open_store

            try:
                child = open_store(self.uri, num_blocks=self.num_blocks,
                                   block_size=self.block_size)
            except StoreUnavailable:
                self._next_attempt = time.monotonic() + self.retry_interval
                raise
            if child.block_size != self.block_size:
                child.close()
                raise InvalidArgument(
                    f"{self._label} has block size {child.block_size}; "
                    f"this mount expected {self.block_size}"
                )
            self.num_blocks = child.num_blocks  # adopt the real geometry
            self._child = child
            self.reconnects += 1
            return child

    def _drop(self) -> None:
        with self._connect_lock:
            child, self._child = self._child, None
            self._next_attempt = time.monotonic() + self.retry_interval
        if child is not None:
            try:
                child.close()
            except Exception:  # a dead child may fail to close cleanly
                pass

    def _forward(self, op):
        child = self._ensure()
        try:
            return op(child)
        except StoreUnavailable:
            self._drop()  # connection is dead; reopen on a later call
            raise

    # -- BlockStore interface ----------------------------------------------

    def _get(self, block_no: int) -> bytes | None:
        return self._forward(lambda c: c.read(block_no))

    def _put(self, block_no: int, data: bytes) -> None:
        self._forward(lambda c: c.write(block_no, data))

    def _get_many(self, block_nos: list[int]) -> list[bytes | None]:
        return self._forward(lambda c: list(c.read_many(block_nos)))

    def _put_many(self, items: list[tuple[int, bytes]]) -> None:
        self._forward(lambda c: c.write_many(items))

    def _contains(self, block_no: int) -> bool:
        return self._forward(lambda c: c._contains(block_no))

    def flush(self) -> None:
        self._forward(lambda c: c.flush())

    def close(self) -> None:
        # Under _connect_lock, or close() can race _ensure(): the swap
        # below could take the slot while _ensure is mid-connect, and the
        # freshly opened child would be resurrected after close (leaked
        # connection on a store the caller believes shut down).
        with self._connect_lock:
            self._closed = True
            child, self._child = self._child, None
        if child is not None:
            child.close()

    def used_blocks(self) -> int:
        return self._forward(lambda c: c.used_blocks())

    def used_block_numbers(self) -> list[int]:
        return self._forward(lambda c: c.used_block_numbers())

    def leaf_stores(self) -> list[BlockStore]:
        return self._child.leaf_stores() if self._child is not None else [self]

    def child_stores(self) -> list[BlockStore]:
        return [self._child] if self._child is not None else []

    def capabilities(self):
        from repro.storage.base import Capabilities

        if self._child is not None:
            child_caps = self._child.capabilities()
            return Capabilities(
                thread_safe=False,
                durable=child_caps.durable,
                networked=child_caps.networked,
                composite=True,
            )
        # Down children are almost always remote nodes; claim nothing
        # beyond the composite wrapper until the child connects.
        return Capabilities(composite=True)

    def _extra_stats(self) -> dict[str, float]:
        return {
            "reconnects": self.reconnects,
            "connected": 1.0 if self.connected else 0.0,
        }

    def describe(self) -> str:
        state = "up" if self.connected else "DOWN"
        return f"lazy({state}) over {self._label}"
