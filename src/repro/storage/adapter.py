"""Adapter presenting a :class:`BlockStore` behind the ``BlockDevice`` API.

The fs/nfs/cli layers were written against
:class:`repro.fs.blockdev.BlockDevice`; this shim lets them run unchanged
on any registry backend while callers migrate incrementally.  Device-level
stats (what the bench cost models read via ``fs.device.stats``) are
recorded here exactly as the legacy devices did; the wrapped store (and
any stores *it* wraps) keep their own per-layer counters.
"""

from __future__ import annotations

from repro.fs.blockdev import BlockDevice
from repro.storage.base import BlockStore


class StoreBlockDevice(BlockDevice):
    """A ``BlockDevice`` view over any :class:`BlockStore`."""

    def __init__(self, store: BlockStore, uri: str | None = None):
        super().__init__(store.num_blocks, store.block_size)
        self.store = store
        self.uri = uri

    def _read(self, block_no: int) -> bytes:
        return self.store.read(block_no)

    def _write(self, block_no: int, data: bytes) -> None:
        self.store.write(block_no, data)

    def flush(self) -> None:
        self.store.flush()

    def close(self) -> None:
        self.store.close()

    def used_blocks(self) -> int:
        return self.store.used_blocks()

    def __enter__(self) -> "StoreBlockDevice":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"StoreBlockDevice({self.store.describe()})"
