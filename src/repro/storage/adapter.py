"""Adapter presenting a :class:`BlockStore` behind the ``BlockDevice`` API.

The fs/nfs/cli layers were written against
:class:`repro.fs.blockdev.BlockDevice`; this shim lets them run unchanged
on any registry backend while callers migrate incrementally.  Device-level
stats (what the bench cost models read via ``fs.device.stats``) are
recorded here exactly as the legacy devices did; the wrapped store (and
any stores *it* wraps) keep their own per-layer counters.
"""

from __future__ import annotations

from repro.errors import InvalidArgument
from repro.fs.blockdev import BlockDevice
from repro.storage.base import BlockStore


class StoreBlockDevice(BlockDevice):
    """A ``BlockDevice`` view over any :class:`BlockStore`."""

    def __init__(self, store: BlockStore, uri: str | None = None):
        super().__init__(store.num_blocks, store.block_size)
        self.store = store
        self.uri = uri

    def _read(self, block_no: int) -> bytes:
        return self.store.read(block_no)

    def _write(self, block_no: int, data: bytes) -> None:
        self.store.write(block_no, data)

    def read_blocks(self, block_nos: list[int]) -> list[bytes]:
        # Device-level stats stay per-block (the bench cost models read
        # them); the store sees one vectored call it can batch per child
        # or per RPC round trip.
        for block_no in block_nos:
            self._check_range(block_no)
            self.stats.record_read(block_no, self.block_size)
        return self.store.read_many(block_nos)

    def write_blocks(self, items: list[tuple[int, bytes]]) -> None:
        for block_no, data in items:
            self._check_range(block_no)
            if len(data) > self.block_size:
                raise InvalidArgument(
                    f"data ({len(data)} bytes) exceeds block size "
                    f"({self.block_size})"
                )
        for block_no, _data in items:
            self.stats.record_write(block_no, self.block_size)
        self.store.write_many(items)

    def flush(self) -> None:
        self.store.flush()

    def close(self) -> None:
        self.store.close()

    def used_blocks(self) -> int:
        return self.store.used_blocks()

    def used_block_numbers(self) -> list[int]:
        return self.store.used_block_numbers()

    def capabilities(self):
        """The wrapped store's typed capability flags (uniform probe for
        the fs/bench layers — no duck-typing on store internals)."""
        return self.store.capabilities()

    def snapshot(self):
        """The wrapped store's :class:`~repro.storage.base.StoreStats`."""
        return self.store.snapshot()

    def __enter__(self) -> "StoreBlockDevice":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"StoreBlockDevice({self.store.describe()})"
