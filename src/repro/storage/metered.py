"""Latency instrumentation overlay (``metered://``): time every op.

:class:`InstrumentedBlockStore` wraps any store and times each
``read``/``write``/``read_many``/``write_many``/``flush`` into
log-bucketed histograms in the process-wide
:class:`~repro.obs.metrics.MetricsRegistry`.  The quantiles come back
through the standard ``snapshot()``/``StoreStats.extra`` protocol under
the stable ``lat:<layer>:<op>:<quantile>`` key namespace, so
``describe()``, ``store-inspect`` (and its ``--json`` form) and the
Prometheus endpoint all render per-layer latency without knowing this
wrapper exists.

It is also where traces start: when tracing is enabled (or an outer
span is already active), each operation runs under its own span, so a
stack like ``metered://replica://remote://…`` produces one client root
span whose children are the per-node RPCs — ``discfs store-trace``
joins them with the server-side spans into one tree.  Ops slower than
``slow_ms`` are counted and flagged on their span.

Because the wrapper is just another store, it composes anywhere:
``metered://cached://metered://file:///…`` measures the cache's hit
latency and the file backend's miss latency separately.
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import (
    Span,
    TraceRecorder,
    current_context,
    get_recorder,
    new_root_context,
    use_context,
)
from repro.storage.base import BlockStore, Capabilities, StoreStats

#: Ops slower than this are counted as slow and flagged on their span;
#: override per mount with ``metered://…#slow_ms=``.
DEFAULT_SLOW_MS = 100.0

_OPS = ("read", "write", "read_many", "write_many", "flush")

T = TypeVar("T")


class InstrumentedBlockStore(BlockStore):
    """Times every operation of ``child``; see module docstring.

    Forwards to the child's *internal* hooks (validation, padding and
    stats already happened in this layer's public wrappers) like the
    other overlay stores, so the measured window is exactly the child's
    work.
    """

    scheme = "metered"

    def __init__(self, child: BlockStore, label: str | None = None,
                 slow_ms: float | None = None, ring: int | None = None,
                 registry: MetricsRegistry | None = None,
                 recorder: TraceRecorder | None = None):
        super().__init__(child.num_blocks, child.block_size)
        self.child = child
        #: Layer name used in metric names and ``lat:`` extras keys;
        #: defaults to the child's scheme (the layer being measured).
        self.label = label or child.scheme or "store"
        self.slow_ms = DEFAULT_SLOW_MS if slow_ms is None else float(slow_ms)
        self._registry = registry if registry is not None else get_registry()
        self._recorder = recorder if recorder is not None else get_recorder()
        if ring is not None:
            self._recorder.set_ring(ring)
        self._hist = {
            op: self._registry.histogram(f"store:{self.label}:{op}_seconds")
            for op in _OPS
        }
        self._slow = self._registry.counter(f"store:{self.label}:slow_ops")

    # -- the measured window -----------------------------------------------

    def _timed(self, op: str, fn: Callable[[], T]) -> T:
        parent = current_context()
        if parent is None and not self._recorder.enabled:
            # Steady-state path: a timer and one histogram record — no
            # span objects, no ring traffic (that is what keeps the
            # metered overhead ablation inside its 10% budget).
            start = time.perf_counter()
            try:
                return fn()
            finally:
                elapsed = time.perf_counter() - start
                self._hist[op].record(elapsed)
                if elapsed * 1000.0 >= self.slow_ms:
                    self._slow.inc()
        ctx = parent.child() if parent is not None else new_root_context()
        wall = time.time()
        start = time.perf_counter()
        status = "ok"
        try:
            with use_context(ctx):
                return fn()
        except Exception:
            status = "error"
            raise
        finally:
            elapsed = time.perf_counter() - start
            self._hist[op].record(elapsed)
            slow = elapsed * 1000.0 >= self.slow_ms
            if slow:
                self._slow.inc()
            span = Span(
                name=op, kind="store", trace_id=ctx.trace_id,
                span_id=ctx.span_id, parent_id=ctx.parent_id,
                node=self.label, start=wall,
                duration_ms=elapsed * 1000.0, status=status,
            )
            if slow:
                span.attrs["slow"] = True
                span.attrs["slow_ms"] = self.slow_ms
            self._recorder.record(span)

    # -- BlockStore interface ----------------------------------------------

    def _get(self, block_no: int) -> bytes | None:
        return self._timed("read", lambda: self.child._get(block_no))

    def _put(self, block_no: int, data: bytes) -> None:
        self._timed("write", lambda: self.child._put(block_no, data))

    def _get_many(self, block_nos: list[int]) -> list[bytes | None]:
        return self._timed("read_many", lambda: self.child._get_many(block_nos))

    def _put_many(self, items: list[tuple[int, bytes]]) -> None:
        self._timed("write_many", lambda: self.child._put_many(items))

    def _contains(self, block_no: int) -> bool:
        return self.child._contains(block_no)  # stats-free, untimed

    def flush(self) -> None:
        self._timed("flush", self.child.flush)

    def close(self) -> None:
        self.child.close()

    def used_blocks(self) -> int:
        return self.child.used_blocks()

    def used_block_numbers(self) -> list[int]:
        return self.child.used_block_numbers()

    def leaf_stores(self) -> list[BlockStore]:
        return [self]

    def child_stores(self) -> list[BlockStore]:
        return [self.child]

    def remote_stats(self) -> StoreStats | None:
        return self.child.remote_stats()

    def capabilities(self) -> Capabilities:
        child_caps = self.child.capabilities()
        return Capabilities(
            thread_safe=child_caps.thread_safe,  # instruments are locked
            durable=child_caps.durable,
            networked=child_caps.networked,
            composite=True,
        )

    def _extra_stats(self) -> dict[str, float]:
        """Per-op latency under the stable ``lat:`` namespace (ms)."""
        out: dict[str, float] = {}
        for op, hist in self._hist.items():
            if not hist.count:
                continue
            pct = hist.percentiles()
            out[f"lat:{self.label}:{op}:p50"] = round(pct["p50"] * 1000.0, 4)
            out[f"lat:{self.label}:{op}:p95"] = round(pct["p95"] * 1000.0, 4)
            out[f"lat:{self.label}:{op}:p99"] = round(pct["p99"] * 1000.0, 4)
            out[f"lat:{self.label}:{op}:count"] = float(hist.count)
        slow = self._slow.value
        if slow:
            out["slow_ops"] = slow
        return out

    def describe(self) -> str:
        return (
            f"metered({self.label}, slow_ms={self.slow_ms:g}) "
            f"over {self.child.describe()}"
        )
