"""Pluggable storage backends for the DisCFS substrate.

The block layer under FFS is chosen by URI::

    from repro.storage import open_device

    device = open_device("sqlite:///var/lib/discfs.db")
    fs = FFS(device)

Backends compose: ``cached://shard://4#capacity=512`` is a write-back
LRU in front of four consistent-hashed memory shards, and
``shard://remote://h1:9001;remote://h2:9002`` spreads the ring across
real nodes served by ``discfs store-serve``.  See
:mod:`repro.storage.registry` for the URI grammar and README "Storage
backends" for worked examples.
"""

from repro.storage.adapter import StoreBlockDevice
from repro.storage.base import BlockStore
from repro.storage.cache import CachedBlockStore, CacheStats
from repro.storage.filestore import FileBlockStore
from repro.storage.journal import (
    JournalBlockStore,
    JournalInfo,
    JournalStats,
    inspect_journal,
)
from repro.storage.lazy import LazyBlockStore
from repro.storage.memory import MemoryBlockStore
from repro.storage.net import (
    BLOCKSTORE_PROGRAM,
    BlockStoreProgram,
    RemoteBlockStore,
    StoreServer,
    serve_store,
)
from repro.storage.registry import (
    DEFAULT_NUM_BLOCKS,
    open_device,
    open_store,
    register_scheme,
    registered_schemes,
    split_uri,
)
from repro.storage.replica import (
    DelayedBlockStore,
    FailingBlockStore,
    ReplicaStats,
    ReplicatedBlockStore,
)
from repro.storage.shard import ShardedBlockStore
from repro.storage.sqlitestore import SQLiteBlockStore

__all__ = [
    "BLOCKSTORE_PROGRAM",
    "BlockStore",
    "BlockStoreProgram",
    "CacheStats",
    "CachedBlockStore",
    "DEFAULT_NUM_BLOCKS",
    "DelayedBlockStore",
    "FailingBlockStore",
    "FileBlockStore",
    "JournalBlockStore",
    "JournalInfo",
    "JournalStats",
    "LazyBlockStore",
    "MemoryBlockStore",
    "RemoteBlockStore",
    "ReplicaStats",
    "ReplicatedBlockStore",
    "ShardedBlockStore",
    "SQLiteBlockStore",
    "StoreBlockDevice",
    "StoreServer",
    "inspect_journal",
    "open_device",
    "open_store",
    "register_scheme",
    "registered_schemes",
    "serve_store",
    "split_uri",
]
