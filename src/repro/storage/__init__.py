"""Pluggable storage backends for the DisCFS substrate.

The block layer under FFS is chosen by URI — or, since the typed-spec
redesign, by a programmatic :mod:`~repro.storage.spec` builder::

    from repro.storage import open_device, open_store
    from repro.storage.spec import shard, remote

    device = open_device("sqlite:///var/lib/discfs.db")
    store = open_store(shard(remote("h1:9001"), remote("h2:9001"),
                             fanout=4))

Backends compose: ``cached://shard://4#capacity=512`` is a write-back
LRU in front of four consistent-hashed memory shards, and
``shard://remote://h1:9001;remote://h2:9002`` spreads the ring across
real nodes served by ``discfs store-serve``.  See
:mod:`repro.storage.registry` for the URI grammar and README "Storage
backends" for worked examples.

The control plane (:mod:`repro.storage.control`) inspects and
reconfigures mounted topologies: :func:`describe` dumps the live tree
with per-node capabilities and stats, and :func:`reshard` migrates a
``shard://`` ring to a new layout moving only the blocks whose
consistent-hash owner changed.
"""

from repro.storage.adapter import StoreBlockDevice
from repro.storage.auth import (
    AuditLog,
    StoreAuthGate,
    TenantQuota,
    issue_store_credential,
)
from repro.storage.base import BlockStore, Capabilities, StoreStats
from repro.storage.cache import CachedBlockStore, CacheStats
from repro.storage.control import (
    ReshardReport,
    SpecTree,
    describe,
    iter_stores,
    latency_usage,
    render_latency_table,
    render_tenant_table,
    reshard,
    tenant_usage,
)
from repro.storage.filestore import FileBlockStore
from repro.storage.journal import (
    JournalBlockStore,
    JournalInfo,
    JournalStats,
    inspect_journal,
)
from repro.storage.lazy import LazyBlockStore
from repro.storage.memory import MemoryBlockStore
from repro.storage.metered import InstrumentedBlockStore
from repro.storage.net import (
    BLOCKSTORE_PROGRAM,
    BlockStoreProgram,
    RemoteBlockStore,
    StoreServer,
    serve_store,
)
from repro.storage.registry import (
    DEFAULT_NUM_BLOCKS,
    build,
    open_device,
    open_store,
    register_scheme,
    registered_schemes,
    split_uri,
)
from repro.storage.replica import (
    DelayedBlockStore,
    FailingBlockStore,
    ReplicaStats,
    ReplicatedBlockStore,
)
from repro.storage.shard import ShardedBlockStore
from repro.storage.spec import SpecError, StoreSpec, parse_spec
from repro.storage.sqlitestore import SQLiteBlockStore
from repro.storage.tenant import TenantBlockStore

__all__ = [
    "AuditLog",
    "BLOCKSTORE_PROGRAM",
    "BlockStore",
    "BlockStoreProgram",
    "CacheStats",
    "CachedBlockStore",
    "Capabilities",
    "DEFAULT_NUM_BLOCKS",
    "DelayedBlockStore",
    "FailingBlockStore",
    "FileBlockStore",
    "InstrumentedBlockStore",
    "JournalBlockStore",
    "JournalInfo",
    "JournalStats",
    "LazyBlockStore",
    "MemoryBlockStore",
    "RemoteBlockStore",
    "ReplicaStats",
    "ReplicatedBlockStore",
    "ReshardReport",
    "SQLiteBlockStore",
    "ShardedBlockStore",
    "SpecError",
    "SpecTree",
    "StoreAuthGate",
    "StoreBlockDevice",
    "StoreServer",
    "StoreSpec",
    "StoreStats",
    "TenantBlockStore",
    "TenantQuota",
    "build",
    "describe",
    "inspect_journal",
    "issue_store_credential",
    "iter_stores",
    "latency_usage",
    "open_device",
    "open_store",
    "parse_spec",
    "register_scheme",
    "registered_schemes",
    "render_latency_table",
    "render_tenant_table",
    "reshard",
    "serve_store",
    "split_uri",
    "tenant_usage",
]
