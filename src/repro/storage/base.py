"""The abstract block store: what every storage backend implements.

A :class:`BlockStore` is a flat array of fixed-size blocks addressed by
integer block number, the same contract :class:`repro.fs.blockdev.BlockDevice`
exposes — but stores are *composable* (``shard://`` and ``cached://`` wrap
other stores) and *URI-addressable* (see :mod:`repro.storage.registry`).

Every store counts its operations in a
:class:`~repro.fs.blockdev.BlockDeviceStats`, so the benchmark cost models
that attribute simulated disk time keep working no matter which backend
(or stack of backends) sits underneath, and composite stores can report
per-layer and per-shard traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidArgument, NoSpace
from repro.fs.blockdev import DEFAULT_BLOCK_SIZE, BlockDeviceStats


@dataclass(frozen=True)
class Capabilities:
    """What a store *is*, as typed flags instead of duck-typed probes.

    ``serve_store``'s wrap-or-not decision, the control plane's
    topology dumps and the bench report tables all consume this
    instead of poking at per-class attributes.
    """

    #: Data operations tolerate concurrent callers (``mem://`` is
    #: GIL-atomic, ``sqlite://`` locks internally).  ``serve_store``
    #: serializes backends that do not claim this.
    thread_safe: bool = False
    #: Writes survive process exit once flushed (``file://``,
    #: ``sqlite://``; composites derive from their children).
    durable: bool = False
    #: At least one layer crosses a network/RPC boundary.
    networked: bool = False
    #: Wraps or fans out over child stores.
    composite: bool = False

    def flags(self) -> str:
        """Compact ``thread-safe,durable,...`` rendering for reports."""
        names = [
            name for name, on in (
                ("thread-safe", self.thread_safe), ("durable", self.durable),
                ("networked", self.networked), ("composite", self.composite),
            ) if on
        ]
        return ",".join(names) or "-"


@dataclass
class StoreStats:
    """Uniform point-in-time stats snapshot every store can produce.

    Core I/O counters come from the store's
    :class:`~repro.fs.blockdev.BlockDeviceStats`; layer-specific
    counters (cache hits, quorum repairs, journal transactions, ...)
    ride in ``extra`` keyed by counter name, so consumers — the bench
    report tables, ``discfs store-inspect`` — read one shape no matter
    which backend (or stack of backends) they are looking at.
    """

    scheme: str = ""
    description: str = ""
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seeks: int = 0
    fsyncs: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "description": self.description,
            "reads": self.reads,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "seeks": self.seeks,
            "fsyncs": self.fsyncs,
            "extra": dict(self.extra),
        }


class BlockStore:
    """Abstract fixed-size-block store.

    Subclasses implement :meth:`_get` / :meth:`_put`; the public
    :meth:`read` / :meth:`write` wrappers validate ranges, zero-fill
    unwritten blocks, pad short writes, and record stats — mirroring the
    semantics callers already rely on from ``BlockDevice``.

    Stats increments are atomic: :class:`BlockDeviceStats.record_read`
    and friends hold a per-instance lock, so the counters stay exact
    even where concurrent paths share a store — replica straggler
    lanes, shard fan-out pools, pooled ``remote://`` windows and
    ``store-serve --workers`` threads all drive the same child from
    several threads at once (a bare ``x += 1`` there silently loses
    updates; ``tests/unit/test_storage_concurrency.py`` regresses
    this).  Counters shared *across* layers (``ReplicaStats``) keep
    their own lock in ``replica://``.
    """

    #: URI scheme this store registers under (set by subclasses).
    scheme: str = ""

    #: Whether this store's *data* operations tolerate concurrent
    #: callers (``mem://`` is GIL-atomic, ``sqlite://`` and
    #: ``journal://`` lock internally).  ``serve_store(..., workers=N)``
    #: serializes backends that do not claim this, so a worker-pool
    #: server never races an unlocked backend (``cached://``'s LRU
    #: mutates even on reads).  Surface through
    #: :meth:`capabilities`; composites derive from their children.
    thread_safe: bool = False

    #: Writes survive process exit once flushed (class default; see
    #: :meth:`capabilities`).
    durable: bool = False

    #: This layer crosses a network boundary (class default; see
    #: :meth:`capabilities`).
    networked: bool = False

    def __init__(self, num_blocks: int, block_size: int = DEFAULT_BLOCK_SIZE):
        if num_blocks <= 0:
            raise InvalidArgument("store must have at least one block")
        if block_size <= 0 or block_size % 512:
            raise InvalidArgument("block size must be a positive multiple of 512")
        self.num_blocks = num_blocks
        self.block_size = block_size
        self.stats = BlockDeviceStats()
        self._zero = bytes(block_size)

    # -- subclass interface ------------------------------------------------

    def _get(self, block_no: int) -> bytes | None:
        """Return the stored block, or None if never written."""
        raise NotImplementedError

    def _put(self, block_no: int, data: bytes) -> None:
        """Store ``data`` (exactly ``block_size`` bytes)."""
        raise NotImplementedError

    def _contains(self, block_no: int) -> bool:
        """Whether the block was ever written — without touching stats.

        Composite stores override this so introspection (e.g. a cache
        overlay counting blocks) never inflates physical-I/O counters.
        """
        return self._get(block_no) is not None

    def _get_many(self, block_nos: list[int]) -> list[bytes | None]:
        """Fetch several blocks; positions align with ``block_nos``.

        The default loops over :meth:`_get`.  Composite and remote stores
        override this to batch — per owning child (``shard://``), per
        cache miss set (``cached://``), or per RPC round trip
        (``remote://``) — which is what makes cold paths affordable once
        blocks live on other nodes.
        """
        return [self._get(block_no) for block_no in block_nos]

    def _put_many(self, items: list[tuple[int, bytes]]) -> None:
        """Store several (block_no, data) pairs (data already padded)."""
        for block_no, data in items:
            self._put(block_no, data)

    # -- public API --------------------------------------------------------

    def read(self, block_no: int) -> bytes:
        self._check_range(block_no)
        self.stats.record_read(block_no, self.block_size)
        data = self._get(block_no)
        return data if data is not None else self._zero

    def write(self, block_no: int, data: bytes) -> None:
        self._check_range(block_no)
        if len(data) > self.block_size:
            raise InvalidArgument(
                f"data ({len(data)} bytes) exceeds block size ({self.block_size})"
            )
        if len(data) < self.block_size:
            data = data + b"\x00" * (self.block_size - len(data))
        self.stats.record_write(block_no, self.block_size)
        self._put(block_no, data)

    def read_many(self, block_nos: list[int]) -> list[bytes]:
        """Read several blocks in one vectored operation.

        Semantically equivalent to ``[self.read(b) for b in block_nos]``
        (same validation, same stats), but a single call into the backend,
        so stores that pay per-operation overhead — an RPC round trip, a
        replica fan-out — amortize it across the whole batch.
        """
        block_nos = list(block_nos)
        for block_no in block_nos:
            self._check_range(block_no)
        for block_no in block_nos:
            self.stats.record_read(block_no, self.block_size)
        if not block_nos:
            return []
        return [
            data if data is not None else self._zero
            for data in self._get_many(block_nos)
        ]

    def write_many(self, items: list[tuple[int, bytes]]) -> None:
        """Write several (block_no, data) pairs in one vectored operation.

        Equivalent to looping :meth:`write` (validation, padding, stats)
        but delivered to the backend as one batch.
        """
        validated: list[tuple[int, bytes]] = []
        for block_no, data in items:
            self._check_range(block_no)
            if len(data) > self.block_size:
                raise InvalidArgument(
                    f"data ({len(data)} bytes) exceeds block size "
                    f"({self.block_size})"
                )
            if len(data) < self.block_size:
                data = data + b"\x00" * (self.block_size - len(data))
            validated.append((block_no, data))
        for block_no, _data in validated:
            self.stats.record_write(block_no, self.block_size)
        if validated:
            self._put_many(validated)

    def _check_range(self, block_no: int) -> None:
        if not 0 <= block_no < self.num_blocks:
            raise NoSpace(
                f"block {block_no} out of range (store has {self.num_blocks})"
            )

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        """Push buffered state to durable/child storage (no-op by default)."""

    def close(self) -> None:
        """Release resources; the store must not be used afterwards."""

    def __enter__(self) -> "BlockStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -----------------------------------------------------

    def used_blocks(self) -> int:
        """Number of distinct blocks ever written, where knowable."""
        raise NotImplementedError

    def used_block_numbers(self) -> list[int]:
        """The distinct block numbers ever written, sorted.

        The enumeration primitive the control plane's ``reshard`` is
        built on: diffing two ring layouts needs to know *which* blocks
        a child holds, not just how many.  Composites union their
        children; ``remote://`` pages the listing over RPC.
        """
        raise NotImplementedError

    def capabilities(self) -> Capabilities:
        """Typed capability flags for this store instance.

        The default reads the class-level declarations; composite
        stores override to derive from their children (a ring is as
        durable as its least durable child, and networked if any child
        is).
        """
        return Capabilities(
            thread_safe=self.thread_safe,
            durable=self.durable,
            networked=self.networked,
            composite=bool(self.child_stores()),
        )

    def child_stores(self) -> list["BlockStore"]:
        """The *live* child stores one layer down (empty for leaves).

        Unlike :meth:`leaf_stores` this does not flatten: walking
        ``child_stores`` recursively reproduces the mounted topology,
        which is what ``describe()``/``store-inspect`` render.
        """
        return []

    def snapshot(self) -> StoreStats:
        """Uniform point-in-time stats snapshot (see :class:`StoreStats`)."""
        return StoreStats(
            scheme=self.scheme,
            description=self.describe(),
            reads=self.stats.reads,
            writes=self.stats.writes,
            bytes_read=self.stats.bytes_read,
            bytes_written=self.stats.bytes_written,
            seeks=self.stats.seeks,
            fsyncs=self.stats.fsyncs,
            extra=self._extra_stats(),
        )

    def _extra_stats(self) -> dict[str, float]:
        """Layer-specific counters folded into :meth:`snapshot`."""
        return {}

    def remote_stats(self) -> StoreStats | None:
        """The *served* store's snapshot, for stores that proxy one over
        the network (``remote://``); None for local stores."""
        return None

    def leaf_stores(self) -> list["BlockStore"]:
        """The physical stores at the bottom of this stack.

        Composite stores (``shard://``, ``cached://``) override this to
        descend; a leaf returns itself.  Summing ``leaf.stats`` over the
        result gives the *physical* I/O that reached backing storage, as
        opposed to the logical traffic counted at the top of the stack —
        the difference is what cache/shard ablations measure.
        """
        return [self]

    def describe(self) -> str:
        """One-line human description (used by CLI and reports)."""
        return f"{self.scheme}://  {self.num_blocks}x{self.block_size}B"

    @property
    def capacity_bytes(self) -> int:
        return self.num_blocks * self.block_size
