"""In-memory block store (``mem://``) — the default for tests and benches."""

from __future__ import annotations

from repro.fs.blockdev import DEFAULT_BLOCK_SIZE
from repro.storage.base import BlockStore


class MemoryBlockStore(BlockStore):
    """Blocks live in a dict; unwritten blocks read as zeros."""

    scheme = "mem"
    thread_safe = True  # dict get/set are GIL-atomic

    def __init__(self, num_blocks: int = 16384, block_size: int = DEFAULT_BLOCK_SIZE):
        super().__init__(num_blocks, block_size)
        self._blocks: dict[int, bytes] = {}

    def _get(self, block_no: int) -> bytes | None:
        return self._blocks.get(block_no)

    def _put(self, block_no: int, data: bytes) -> None:
        self._blocks[block_no] = data

    def used_blocks(self) -> int:
        return len(self._blocks)

    def used_block_numbers(self) -> list[int]:
        return sorted(self._blocks)
