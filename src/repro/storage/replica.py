"""Replicated block store (``replica://``): quorum fan-out over children.

Every write fans out to all ``n`` children and must be accepted by at
least ``W`` of them; every read collects answers from ``R`` children and
returns the newest copy.  With ``W + R > n`` (e.g. ``replica://3?w=2&r=2``)
any read quorum intersects any write quorum, so a one-node outage stays
fully available *and* consistent — the Dynamo-style arithmetic Peer2PIR
assumes of its IPFS substrate.

Freshness is decided by per-block **version stamps**: a counter bumped on
every write and recorded per child.  A child that missed a write (it was
down, or outside the write set) holds a lower stamp; when a later read
sees the divergence it answers with the newest copy (last-write-wins)
and writes that copy back to every lagging child — **read-repair**, the
mechanism that heals a replica after an outage without a separate
anti-entropy pass.  Stamps live in the replica layer, not in the blocks,
so children stay plain byte stores (any backend URI works, including
``remote://``); when a store is reopened over already-populated children
the stamps start empty, i.e. all copies are presumed equally fresh.

Child failures — :class:`~repro.errors.StoreUnavailable` from a dead
``remote://`` node, any :class:`~repro.errors.ReproError` or ``OSError``
— degrade the quorum rather than failing the operation, and are counted
in :class:`ReplicaStats`.  :class:`FailingBlockStore` (``failing://``)
is the injectable failure used to test exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidArgument, QuorumError, ReproError, StoreUnavailable
from repro.storage.base import BlockStore

_CHILD_FAILURES = (ReproError, OSError)


@dataclass
class ReplicaStats:
    """Degraded-mode and repair counters."""

    degraded_writes: int = 0   # write fan-outs where >=1 child failed
    degraded_reads: int = 0    # read quorums assembled past >=1 failure
    repaired_blocks: int = 0   # blocks rewritten onto lagging children
    child_failures: int = 0    # individual child operations that failed

    def reset(self) -> None:
        self.degraded_writes = self.degraded_reads = 0
        self.repaired_blocks = self.child_failures = 0


class ReplicatedBlockStore(BlockStore):
    """Write-fan-out / read-quorum replication over ``children``."""

    scheme = "replica"

    def __init__(self, children: list[BlockStore],
                 write_quorum: int | None = None, read_quorum: int = 1):
        n = len(children)
        if n == 0:
            raise InvalidArgument("replica:// needs at least one child store")
        block_size = children[0].block_size
        if any(c.block_size != block_size for c in children):
            raise InvalidArgument("replica children must share one block size")
        if write_quorum is None:
            write_quorum = n  # write-all / read-one by default
        if not 1 <= write_quorum <= n:
            raise InvalidArgument(
                f"write quorum {write_quorum} outside 1..{n}"
            )
        if not 1 <= read_quorum <= n:
            raise InvalidArgument(f"read quorum {read_quorum} outside 1..{n}")
        super().__init__(min(c.num_blocks for c in children), block_size)
        self.children = list(children)
        self.write_quorum = write_quorum
        self.read_quorum = read_quorum
        self.replica_stats = ReplicaStats()
        #: Lamport-ish write counter; bumped once per write batch.
        self._clock = 0
        #: Per-child block -> version stamp of the copy that child holds.
        self._versions: list[dict[int, int]] = [dict() for _ in children]

    # -- write path --------------------------------------------------------

    def _put(self, block_no: int, data: bytes) -> None:
        self._put_many([(block_no, data)])

    def _put_many(self, items: list[tuple[int, bytes]]) -> None:
        self._clock += 1
        version = self._clock
        successes = 0
        failed = 0
        for idx, child in enumerate(self.children):
            try:
                child.write_many(items)
            except _CHILD_FAILURES:
                failed += 1
                self.replica_stats.child_failures += 1
                continue
            stamps = self._versions[idx]
            for block_no, _data in items:
                stamps[block_no] = version
            successes += 1
        if failed:
            self.replica_stats.degraded_writes += 1
        if successes < self.write_quorum:
            raise QuorumError(
                f"write quorum not met: {successes}/{len(self.children)} "
                f"replicas accepted, need {self.write_quorum}"
            )

    # -- read path ---------------------------------------------------------

    def _get(self, block_no: int) -> bytes | None:
        return self._get_many([block_no])[0]

    def _get_many(self, block_nos: list[int]) -> list[bytes | None]:
        responses: list[tuple[int, list[bytes]]] = []
        failed = 0
        for idx, child in enumerate(self.children):
            if len(responses) >= self.read_quorum:
                break
            try:
                responses.append((idx, child.read_many(block_nos)))
            except _CHILD_FAILURES:
                failed += 1
                self.replica_stats.child_failures += 1
        if failed:
            self.replica_stats.degraded_reads += 1
        if len(responses) < self.read_quorum:
            raise QuorumError(
                f"read quorum not met: {len(responses)} replicas answered, "
                f"need {self.read_quorum}"
            )
        out: list[bytes | None] = [None] * len(block_nos)
        versions: list[int] = [0] * len(block_nos)
        upgrades: dict[int, list[int]] = {}  # holder child -> positions
        for pos, block_no in enumerate(block_nos):
            # Last-write-wins: among the responders, the copy with the
            # highest version stamp is the provisional answer.
            winner_idx, winner_datas = max(
                responses, key=lambda r: self._versions[r[0]].get(block_no, 0)
            )
            out[pos] = winner_datas[pos]
            versions[pos] = self._versions[winner_idx].get(block_no, 0)
            # The stamps may show a child *outside* the read set holding
            # a newer copy (e.g. read-one hitting a just-healed replica).
            # Fetch from a newest-stamp holder so staleness the layer can
            # see locally is never served.
            best_version = max(
                stamps.get(block_no, 0) for stamps in self._versions
            )
            if best_version > versions[pos]:
                holder = next(
                    idx for idx, stamps in enumerate(self._versions)
                    if stamps.get(block_no, 0) == best_version
                )
                upgrades.setdefault(holder, []).append(pos)
        for holder, positions in upgrades.items():
            try:
                datas = self.children[holder].read_many(
                    [block_nos[pos] for pos in positions]
                )
            except _CHILD_FAILURES:
                self.replica_stats.child_failures += 1
                continue  # holder down: serve the responder copy
            for pos, data in zip(positions, datas):
                out[pos] = data
                versions[pos] = self._versions[holder][block_nos[pos]]
        repairs: dict[int, list[tuple[int, bytes, int]]] = {}
        for pos, block_no in enumerate(block_nos):
            if not versions[pos]:
                continue
            for idx in range(len(self.children)):
                if self._versions[idx].get(block_no, 0) < versions[pos]:
                    repairs.setdefault(idx, []).append(
                        (block_no, out[pos], versions[pos])
                    )
        self._apply_repairs(repairs)
        return out

    def _apply_repairs(
        self, repairs: dict[int, list[tuple[int, bytes, int]]]
    ) -> None:
        """Best-effort write-back of winning copies to lagging children."""
        for idx, triples in repairs.items():
            child = self.children[idx]
            try:
                child.write_many([(b, data) for b, data, _v in triples])
            except _CHILD_FAILURES:
                self.replica_stats.child_failures += 1
                continue  # still down; a later read will retry
            stamps = self._versions[idx]
            for block_no, _data, version in triples:
                stamps[block_no] = version
            self.replica_stats.repaired_blocks += len(triples)

    # -- everything else ---------------------------------------------------

    def _contains(self, block_no: int) -> bool:
        if any(stamps.get(block_no) for stamps in self._versions):
            return True
        # Diverged children (e.g. reopened after independent histories)
        # may hold the block on any replica: OR across the reachable ones.
        for child in self.children:
            try:
                if child._contains(block_no):
                    return True
            except _CHILD_FAILURES:
                continue
        return False

    def flush(self) -> None:
        successes = 0
        for child in self.children:
            try:
                child.flush()
            except _CHILD_FAILURES:
                self.replica_stats.child_failures += 1
                continue
            successes += 1
        if successes < self.write_quorum:
            raise QuorumError(
                f"flush reached {successes} replicas, "
                f"need {self.write_quorum}"
            )

    def close(self) -> None:
        for child in self.children:
            try:
                child.close()
            except _CHILD_FAILURES:
                continue

    def used_blocks(self) -> int:
        best: int | None = None
        for child in self.children:
            try:
                used = child.used_blocks()
            except _CHILD_FAILURES:
                continue
            best = used if best is None else max(best, used)
        if best is None:
            raise StoreUnavailable("no replica reachable for used_blocks()")
        return best

    def leaf_stores(self) -> list[BlockStore]:
        return [leaf for c in self.children for leaf in c.leaf_stores()]

    def describe(self) -> str:
        kinds = ",".join(c.scheme for c in self.children)
        return (
            f"replica://{len(self.children)} w={self.write_quorum} "
            f"r={self.read_quorum} [{kinds}]  "
            f"{self.num_blocks}x{self.block_size}B"
        )


class FailingBlockStore(BlockStore):
    """Pass-through wrapper whose failures are switched on and off.

    The injectable outage the replica tests (and ``replica://`` users
    rehearsing failure drills) flip per child:  while ``failing`` is
    True every operation raises :class:`~repro.errors.StoreUnavailable`,
    exactly what a dead ``remote://`` node surfaces.  ``failures``
    counts the operations rejected.  Registered as
    ``failing://<child-uri>`` so outages can be scripted from a URI
    (``replica://failing://mem://;mem://;mem://#w=2&r=2``).
    """

    scheme = "failing"

    def __init__(self, child: BlockStore, failing: bool = False):
        super().__init__(child.num_blocks, child.block_size)
        self.child = child
        self.failing = failing
        self.failures = 0

    def fail(self) -> None:
        """Start rejecting every operation (the node 'goes down')."""
        self.failing = True

    def heal(self) -> None:
        """Stop rejecting operations (the node 'comes back')."""
        self.failing = False

    def _check_up(self) -> None:
        if self.failing:
            self.failures += 1
            raise StoreUnavailable("injected failure: store is down")

    # The wrapper forwards to the child's *internal* hooks: data has
    # already been validated/padded and counted by this layer's public
    # wrappers, so re-entering the child's public read/write would count
    # the same pass-through operation in two stats layers and zero-fill
    # holes so _get could never report None.  Because the child's own
    # counters therefore stay at zero, the wrapper reports *itself* as
    # the physical leaf (see leaf_stores): its stats ARE the leaf count.

    def _get(self, block_no: int) -> bytes | None:
        self._check_up()
        return self.child._get(block_no)

    def _put(self, block_no: int, data: bytes) -> None:
        self._check_up()
        self.child._put(block_no, data)

    def _get_many(self, block_nos: list[int]) -> list[bytes | None]:
        self._check_up()
        return list(self.child._get_many(block_nos))

    def _put_many(self, items: list[tuple[int, bytes]]) -> None:
        self._check_up()
        self.child._put_many(items)

    def _contains(self, block_no: int) -> bool:
        self._check_up()
        return self.child._contains(block_no)

    def flush(self) -> None:
        self._check_up()
        self.child.flush()

    def close(self) -> None:
        self.child.close()

    def used_blocks(self) -> int:
        self._check_up()
        return self.child.used_blocks()

    def leaf_stores(self) -> list[BlockStore]:
        # Physical traffic bypasses the child's public counters (see
        # above), so this wrapper stands in for its child in the
        # leaf-stats contract — summing leaf stats must still equal the
        # I/O that reached backing storage.
        return [self]

    def describe(self) -> str:
        state = "DOWN" if self.failing else "up"
        return f"failing({state}) over {self.child.describe()}"
