"""Replicated block store (``replica://``): quorum fan-out over children.

Every write fans out to all ``n`` children and must be accepted by at
least ``W`` of them; every read collects answers from ``R`` children and
returns the newest copy.  With ``W + R > n`` (e.g. ``replica://3?w=2&r=2``)
any read quorum intersects any write quorum, so a one-node outage stays
fully available *and* consistent — the Dynamo-style arithmetic Peer2PIR
assumes of its IPFS substrate.

The fan-out is **concurrent** by default: writes are issued to every
child in parallel and the call returns as soon as ``W`` children have
accepted, so latency tracks the ``W``-th fastest replica instead of the
slowest.  Stragglers finish on a background lane (counted in
:attr:`ReplicaStats.background_writes`); :meth:`drain`/``flush`` wait
for them.  Reads dispatch ``R`` children *concurrently* (instead of one
after another) and recruit the next child whenever one fails; all ``R``
answers are still required, so a slow-but-alive child inside the chosen
``R`` bounds the read — hedging past stragglers is a noted follow-up
(ROADMAP).
Each child has its own single-thread lane, so operations against one
replica always apply in submission order — a straggler from batch 17
can never land on top of batch 18 — while different replicas overlap
freely.  ``fanout=1`` restores the strictly sequential loop (the
baseline the fanout ablation measures against).

Freshness is decided by per-block **version stamps**: a counter bumped on
every write and recorded per child.  A child that missed a write (it was
down, or outside the write set) holds a lower stamp; when a later read
sees the divergence it answers with the newest copy (last-write-wins)
and writes that copy back to every lagging child — **read-repair**, the
mechanism that heals a replica after an outage without a separate
anti-entropy pass.  Stamps live in the replica layer, not in the blocks,
so children stay plain byte stores (any backend URI works, including
``remote://``); when a store is reopened over already-populated children
the stamps start empty, i.e. all copies are presumed equally fresh.

Child failures — :class:`~repro.errors.StoreUnavailable` from a dead
``remote://`` node, any :class:`~repro.errors.ReproError` or ``OSError``
— degrade the quorum rather than failing the operation, and are counted
in :class:`ReplicaStats`.  :class:`FailingBlockStore` (``failing://``)
is the injectable failure used to test exactly that, and
:class:`DelayedBlockStore` (``slow://``) the injectable straggler.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass

from repro.errors import InvalidArgument, QuorumError, ReproError, StoreUnavailable
from repro.storage.base import BlockStore, Capabilities

_CHILD_FAILURES = (ReproError, OSError)

#: Version of the stamps-sidecar JSON format (``#stamps=PATH``).
_STAMPS_FORMAT = 1


@dataclass
class ReplicaStats:
    """Degraded-mode, repair, and background-completion counters."""

    degraded_writes: int = 0    # write fan-outs where >=1 child failed
    degraded_reads: int = 0     # read quorums assembled past >=1 failure
    repaired_blocks: int = 0    # blocks rewritten onto lagging children
    child_failures: int = 0     # individual child operations that failed
    background_writes: int = 0  # child writes that finished after quorum-W
                                # already let the caller continue
    hedged_reads: int = 0       # extra reads dispatched past hedge_ms

    def reset(self) -> None:
        self.degraded_writes = self.degraded_reads = 0
        self.repaired_blocks = self.child_failures = 0
        self.background_writes = 0
        self.hedged_reads = 0


class ReplicatedBlockStore(BlockStore):
    """Write-fan-out / read-quorum replication over ``children``.

    ``fanout`` controls concurrency: ``1`` runs the legacy sequential
    loops; any larger value (or ``None``, the default) gives every
    child its own ordered lane and overlaps them.  Replica ordering
    needs a full lane per child, so the knob is effectively
    sequential-vs-concurrent rather than a width.
    """

    scheme = "replica"

    def __init__(self, children: list[BlockStore],
                 write_quorum: int | None = None, read_quorum: int = 1,
                 fanout: int | None = None, hedge_ms: float | None = None,
                 stamps_path: str | None = None):
        n = len(children)
        if n == 0:
            raise InvalidArgument("replica:// needs at least one child store")
        block_size = children[0].block_size
        if any(c.block_size != block_size for c in children):
            raise InvalidArgument("replica children must share one block size")
        if write_quorum is None:
            write_quorum = n  # write-all / read-one by default
        if not 1 <= write_quorum <= n:
            raise InvalidArgument(
                f"write quorum {write_quorum} outside 1..{n}"
            )
        if not 1 <= read_quorum <= n:
            raise InvalidArgument(f"read quorum {read_quorum} outside 1..{n}")
        if fanout is not None and fanout < 1:
            raise InvalidArgument("replica fanout must be at least 1")
        if hedge_ms is not None and hedge_ms < 0:
            raise InvalidArgument("replica hedge_ms must be >= 0")
        super().__init__(min(c.num_blocks for c in children), block_size)
        self.children = list(children)
        #: Quorum-overlap classification, decided *before* the quorums
        #: are kept: reads are strongly consistent iff every read
        #: quorum intersects every write quorum (W + R > N).
        #: Non-overlapping configs (w=1&r=1 fan-out) are a supported
        #: eventual-consistency mode, so this is recorded and surfaced
        #: in stats rather than rejected.
        self.consistent_quorums = write_quorum + read_quorum > n
        self.write_quorum = write_quorum
        self.read_quorum = read_quorum
        self.fanout = n if fanout is None else min(int(fanout), n)
        #: After this many milliseconds waiting on a racing read, one
        #: extra child is recruited — capping the tail a slow-but-alive
        #: child inside the chosen R would otherwise impose.  None
        #: disables hedging (the pre-hedge behaviour).
        self.hedge_ms = hedge_ms
        #: Sidecar file persisting version stamps across restarts, so
        #: last-write-wins read-repair still knows which child is stale
        #: after the process reopens the same children.  None keeps the
        #: old presume-all-fresh reopen semantics.
        self.stamps_path = stamps_path
        self.replica_stats = ReplicaStats()
        #: Lamport-ish write counter; bumped once per write batch.
        self._clock = 0
        #: Per-child block -> version stamp of the copy that child holds.
        self._versions: list[dict[int, int]] = [dict() for _ in children]
        #: Whether the stamps changed since the last sidecar save —
        #: flush() runs on the fsync hot path, so an unchanged map must
        #: not re-serialize the whole sidecar.
        self._stamps_dirty = False
        if stamps_path:
            self._load_stamps()
        #: Per-child block -> newest version *scheduled* onto the child
        #: (in flight on its lane or already acknowledged).  Read-repair
        #: consults this so it never queues a redundant repair behind a
        #: straggler write that is about to deliver the same version —
        #: which would make a fast read wait on the slowest lane.
        self._scheduled: list[dict[int, int]] = [dict() for _ in children]
        #: Guards _clock, _versions, and replica_stats against the
        #: background lanes.
        self._lock = threading.Lock()
        #: One ordered lane per child (created lazily in concurrent mode).
        self._lanes: list[ThreadPoolExecutor | None] = [None] * n
        self._lanes_lock = threading.Lock()
        #: Child operations in flight (foreground + background).
        self._pending = 0
        self._drain_cv = threading.Condition()

    # -- lanes -------------------------------------------------------------

    @property
    def _concurrent(self) -> bool:
        return self.fanout > 1 and len(self.children) > 1

    def _lane(self, idx: int) -> ThreadPoolExecutor:
        with self._lanes_lock:
            lane = self._lanes[idx]
            if lane is None:
                lane = self._lanes[idx] = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"replica-{idx}"
                )
            return lane

    def _submit_child(self, idx: int, fn) -> Future:
        """Queue ``fn`` on child ``idx``'s ordered lane.

        The caller's :mod:`contextvars` context is copied into the lane
        so an active trace span parents the child's spans (a lane
        thread outlives many operations and would otherwise see none).
        """
        with self._drain_cv:
            self._pending += 1
        try:
            ctx = contextvars.copy_context()
            fut = self._lane(idx).submit(ctx.run, fn)
        except BaseException:
            with self._drain_cv:
                self._pending -= 1
                self._drain_cv.notify_all()
            raise
        fut.add_done_callback(self._one_done)
        return fut

    def _one_done(self, _fut: Future) -> None:
        with self._drain_cv:
            self._pending -= 1
            self._drain_cv.notify_all()

    def _child_op(self, idx: int, fn):
        """Run ``fn(child)`` in order with that child's queued writes."""
        if not self._concurrent:
            return fn(self.children[idx])
        return self._submit_child(
            idx, lambda: fn(self.children[idx])
        ).result()

    def drain(self) -> None:
        """Wait until no child operation (background included) is in
        flight — the barrier ``flush``/``close`` use so quorum-W returns
        never outrun durability."""
        with self._drain_cv:
            while self._pending:
                self._drain_cv.wait()

    # -- stamp persistence -------------------------------------------------

    def _load_stamps(self) -> None:
        """Restore per-child version stamps from the sidecar, if present.

        A sidecar whose shape no longer matches the mounted topology
        (child count changed) is ignored: wrong stamps are worse than
        no stamps, because repair trusts them to name the freshest copy.
        """
        try:
            with open(self.stamps_path, "r", encoding="utf-8") as f:
                raw = json.load(f)
        except FileNotFoundError:
            return
        except (OSError, ValueError):
            return  # unreadable/corrupt sidecar: presume all fresh
        if (not isinstance(raw, dict)
                or raw.get("format") != _STAMPS_FORMAT
                or len(raw.get("children", ())) != len(self.children)):
            return
        try:
            clock = int(raw.get("clock", 0))
            versions = [
                {int(block): int(version) for block, version in stamps.items()}
                for stamps in raw["children"]
            ]
        except (AttributeError, TypeError, ValueError):
            return  # valid JSON, wrong shape: same presume-fresh fallback
        self._clock = clock
        self._versions = versions

    def _save_stamps(self) -> None:
        """Write the stamps sidecar atomically (tmp + fsync + rename),
        called from ``flush``/``close`` after the drain barrier so every
        stamp reflects an acknowledged child write.  Skipped while the
        map is unchanged — ``flush`` runs on the fsync hot path."""
        if not self.stamps_path:
            return
        with self._lock:
            if not self._stamps_dirty:
                return
            payload = {
                "format": _STAMPS_FORMAT,
                "clock": self._clock,
                "children": [
                    {str(block): version for block, version in stamps.items()}
                    for stamps in self._versions
                ],
            }
            self._stamps_dirty = False
        parent = os.path.dirname(self.stamps_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        tmp_path = self.stamps_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as f:
            json.dump(payload, f)
            # rename-into-place is atomic for the *name* only: without
            # flushing the payload first, a crash can leave the new
            # name pointing at truncated data — exactly the restart the
            # sidecar exists to survive.
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_path, self.stamps_path)

    # -- write path --------------------------------------------------------

    def _put(self, block_no: int, data: bytes) -> None:
        self._put_many([(block_no, data)])

    def _withdraw_scheduled(self, idx: int, items: list[tuple[int, bytes]],
                            version: int) -> None:
        """The scheduled stamp promised ``version`` would land on child
        ``idx``; it won't.  Roll back to the acknowledged stamp (lanes
        are FIFO, so every earlier write already resolved) unless a
        newer write has been scheduled meanwhile."""
        with self._lock:
            scheduled = self._scheduled[idx]
            acked = self._versions[idx]
            for block_no, _data in items:
                if scheduled.get(block_no, 0) == version:
                    if acked.get(block_no, 0):
                        scheduled[block_no] = acked[block_no]
                    else:
                        scheduled.pop(block_no, None)

    def _child_write(self, idx: int, items: list[tuple[int, bytes]],
                     version: int) -> None:
        try:
            self.children[idx].write_many(items)
        except BaseException:
            self._withdraw_scheduled(idx, items, version)
            raise
        with self._lock:
            stamps = self._versions[idx]
            scheduled = self._scheduled[idx]
            for block_no, _data in items:
                if stamps.get(block_no, 0) < version:
                    stamps[block_no] = version
                if scheduled.get(block_no, 0) < version:
                    scheduled[block_no] = version

    def _put_many(self, items: list[tuple[int, bytes]]) -> None:
        with self._lock:
            self._clock += 1
            version = self._clock
            self._stamps_dirty = True
        if not self._concurrent:
            self._put_many_sequential(items, version)
            return
        n = len(self.children)
        need = self.write_quorum
        cv = threading.Condition()
        state = {"ok": 0, "fail": 0, "done": 0, "fatal": None,
                 "degraded": False}

        def on_done(fut: Future) -> None:
            exc = fut.exception()
            with cv:
                state["done"] += 1
                if exc is None:
                    state["ok"] += 1
                elif isinstance(exc, _CHILD_FAILURES):
                    state["fail"] += 1
                    with self._lock:
                        self.replica_stats.child_failures += 1
                        if not state["degraded"]:
                            state["degraded"] = True
                            self.replica_stats.degraded_writes += 1
                else:
                    if state["fatal"] is None:
                        state["fatal"] = exc
                cv.notify_all()

        for idx in range(n):
            with self._lock:
                scheduled = self._scheduled[idx]
                for block_no, _data in items:
                    if scheduled.get(block_no, 0) < version:
                        scheduled[block_no] = version
            try:
                self._submit_child(
                    idx,
                    lambda idx=idx: self._child_write(idx, items, version),
                ).add_done_callback(on_done)
            except BaseException:
                # Nothing was queued: withdraw the scheduled promise so
                # a later read still repairs this child.
                self._withdraw_scheduled(idx, items, version)
                raise

        with cv:
            while (state["fatal"] is None and state["ok"] < need
                   and state["fail"] <= n - need and state["done"] < n):
                cv.wait()
            ok, fatal = state["ok"], state["fatal"]
            background = n - state["done"]
        if background:
            with self._lock:
                self.replica_stats.background_writes += background
        if fatal is not None:
            raise fatal
        if ok < need:
            raise QuorumError(
                f"write quorum not met: {ok}/{n} replicas accepted, "
                f"need {need}"
            )

    def _put_many_sequential(self, items: list[tuple[int, bytes]],
                             version: int) -> None:
        successes = 0
        failed = 0
        for idx, child in enumerate(self.children):
            try:
                child.write_many(items)
            except _CHILD_FAILURES:
                failed += 1
                with self._lock:
                    self.replica_stats.child_failures += 1
                continue
            with self._lock:
                stamps = self._versions[idx]
                for block_no, _data in items:
                    if stamps.get(block_no, 0) < version:
                        stamps[block_no] = version
            successes += 1
        if failed:
            with self._lock:
                self.replica_stats.degraded_writes += 1
        if successes < self.write_quorum:
            raise QuorumError(
                f"write quorum not met: {successes}/{len(self.children)} "
                f"replicas accepted, need {self.write_quorum}"
            )

    # -- read path ---------------------------------------------------------

    def _get(self, block_no: int) -> bytes | None:
        return self._get_many([block_no])[0]

    def _get_many(self, block_nos: list[int]) -> list[bytes | None]:
        if self._concurrent:
            responses, failed = self._collect_reads_racing(block_nos)
        else:
            responses, failed = self._collect_reads_sequential(block_nos)
        if failed:
            with self._lock:
                self.replica_stats.degraded_reads += 1
        if len(responses) < self.read_quorum:
            raise QuorumError(
                f"read quorum not met: {len(responses)} replicas answered, "
                f"need {self.read_quorum}"
            )
        return self._resolve_reads(block_nos, responses)

    def _collect_reads_sequential(
        self, block_nos: list[int]
    ) -> tuple[list[tuple[int, list[bytes]]], int]:
        responses: list[tuple[int, list[bytes]]] = []
        failed = 0
        for idx, child in enumerate(self.children):
            if len(responses) >= self.read_quorum:
                break
            try:
                responses.append((idx, child.read_many(block_nos)))
            except _CHILD_FAILURES:
                failed += 1
                with self._lock:
                    self.replica_stats.child_failures += 1
        return responses, failed

    def _collect_reads_racing(
        self, block_nos: list[int]
    ) -> tuple[list[tuple[int, list[bytes]]], int]:
        """Race the read quorum: R children in flight at once, the next
        child dispatched whenever one fails, first R answers win.

        With ``hedge_ms`` set, a round that produces no answer within
        the budget recruits **one** extra child beyond the chosen R —
        the hedge that caps the tail when a raced child is slow but
        alive (a dead child already triggers recruitment via failure).
        """
        n = len(self.children)
        responses: list[tuple[int, list[bytes]]] = []
        failed = 0
        pending: dict[Future, int] = {}
        next_idx = 0

        def submit_next() -> None:
            nonlocal next_idx
            if next_idx >= n:
                return
            idx = next_idx
            next_idx += 1
            fut = self._submit_child(
                idx, lambda idx=idx: self.children[idx].read_many(block_nos)
            )
            pending[fut] = idx

        for _ in range(min(self.read_quorum, n)):
            submit_next()
        hedge_armed = self.hedge_ms is not None and next_idx < n
        fatal: BaseException | None = None
        while pending and len(responses) < self.read_quorum and fatal is None:
            timeout = self.hedge_ms / 1000.0 if hedge_armed else None
            done, _running = wait(list(pending), timeout=timeout,
                                  return_when=FIRST_COMPLETED)
            if not done:
                # Hedge budget elapsed with a slow-but-alive child still
                # holding up the quorum: dispatch one extra read.  Count
                # only when a spare child actually existed to dispatch
                # (failures may have exhausted the list meanwhile).
                hedge_armed = False
                dispatched_before = next_idx
                submit_next()
                if next_idx > dispatched_before:
                    with self._lock:
                        self.replica_stats.hedged_reads += 1
                continue
            for fut in done:
                idx = pending.pop(fut)
                exc = fut.exception()
                if exc is None:
                    responses.append((idx, fut.result()))
                elif isinstance(exc, _CHILD_FAILURES):
                    failed += 1
                    with self._lock:
                        self.replica_stats.child_failures += 1
                    submit_next()
                elif fatal is None:
                    fatal = exc
        if fatal is not None:
            raise fatal
        # Late extra answers (two children finishing together) are kept:
        # more responders can only improve freshness.  Sort by child
        # index so tie-breaks match the sequential path.
        responses.sort(key=lambda r: r[0])
        return responses, failed

    def _resolve_reads(
        self, block_nos: list[int],
        responses: list[tuple[int, list[bytes]]],
    ) -> list[bytes | None]:
        out: list[bytes | None] = [None] * len(block_nos)
        versions: list[int] = [0] * len(block_nos)
        upgrades: dict[int, list[tuple[int, int]]] = {}  # holder -> (pos, ver)
        with self._lock:
            for pos, block_no in enumerate(block_nos):
                # Last-write-wins: among the responders, the copy with the
                # highest version stamp is the provisional answer.
                winner_idx, winner_datas = max(
                    responses,
                    key=lambda r, _no=block_no: self._versions[r[0]].get(_no, 0),
                )
                out[pos] = winner_datas[pos]
                versions[pos] = self._versions[winner_idx].get(block_no, 0)
                # The stamps may show a child *outside* the read set holding
                # a newer copy (e.g. read-one hitting a just-healed replica).
                # Fetch from a newest-stamp holder so staleness the layer can
                # see locally is never served.
                best_version = max(
                    stamps.get(block_no, 0) for stamps in self._versions
                )
                if best_version > versions[pos]:
                    holder = next(
                        idx for idx, stamps in enumerate(self._versions)
                        if stamps.get(block_no, 0) == best_version
                    )
                    upgrades.setdefault(holder, []).append(
                        (pos, best_version)
                    )
        for holder, entries in upgrades.items():
            positions = [pos for pos, _version in entries]
            try:
                datas = self._child_op(
                    holder,
                    lambda c, positions=positions: c.read_many(
                        [block_nos[pos] for pos in positions]
                    ),
                )
            except _CHILD_FAILURES:
                with self._lock:
                    self.replica_stats.child_failures += 1
                continue  # holder down: serve the responder copy
            for (pos, version), data in zip(entries, datas):
                out[pos] = data
                versions[pos] = version
        repairs: dict[int, list[tuple[int, bytes, int]]] = {}
        with self._lock:
            for pos, block_no in enumerate(block_nos):
                if not versions[pos]:
                    continue
                for idx in range(len(self.children)):
                    # A child counts as behind only if nothing at least
                    # this fresh is acknowledged *or already in flight*
                    # on its lane — repairing an in-flight write would
                    # chain this read behind the straggler for nothing.
                    known = max(
                        self._versions[idx].get(block_no, 0),
                        self._scheduled[idx].get(block_no, 0),
                    )
                    if known < versions[pos]:
                        repairs.setdefault(idx, []).append(
                            (block_no, out[pos], versions[pos])
                        )
        self._apply_repairs(repairs)
        return out

    def _apply_repairs(
        self, repairs: dict[int, list[tuple[int, bytes, int]]]
    ) -> None:
        """Best-effort write-back of winning copies to lagging children."""
        for idx, triples in repairs.items():
            try:
                self._child_op(
                    idx,
                    lambda c, triples=triples: c.write_many(
                        [(b, data) for b, data, _v in triples]
                    ),
                )
            except _CHILD_FAILURES:
                with self._lock:
                    self.replica_stats.child_failures += 1
                continue  # still down; a later read will retry
            with self._lock:
                stamps = self._versions[idx]
                scheduled = self._scheduled[idx]
                for block_no, _data, version in triples:
                    if stamps.get(block_no, 0) < version:
                        stamps[block_no] = version
                    if scheduled.get(block_no, 0) < version:
                        scheduled[block_no] = version
                self.replica_stats.repaired_blocks += len(triples)
                self._stamps_dirty = True

    # -- everything else ---------------------------------------------------

    def _contains(self, block_no: int) -> bool:
        with self._lock:
            if any(stamps.get(block_no) for stamps in self._versions):
                return True
        # Diverged children (e.g. reopened after independent histories)
        # may hold the block on any replica: OR across the reachable
        # ones.  Through _child_op so the probe queues in order with any
        # in-flight background writes instead of racing them.
        for idx in range(len(self.children)):
            try:
                if self._child_op(idx, lambda c: c._contains(block_no)):
                    return True
            # Per-replica probe: one child refusing (or down) must not
            # veto the OR across the others; quorum semantics, not a
            # swallowed denial.
            except _CHILD_FAILURES:  # discfs-lint: disable=error-taxonomy
                continue
        return False

    def flush(self) -> None:
        self.drain()  # background stragglers land before children flush
        successes = 0
        for child in self.children:
            try:
                child.flush()
            except _CHILD_FAILURES:
                with self._lock:
                    self.replica_stats.child_failures += 1
                continue
            successes += 1
        self._save_stamps()
        if successes < self.write_quorum:
            raise QuorumError(
                f"flush reached {successes} replicas, "
                f"need {self.write_quorum}"
            )

    def close(self) -> None:
        self.drain()
        self._save_stamps()
        with self._lanes_lock:
            lanes, self._lanes = self._lanes, [None] * len(self.children)
        for lane in lanes:
            if lane is not None:
                lane.shutdown(wait=True)
        for child in self.children:
            try:
                child.close()
            except _CHILD_FAILURES:
                continue

    def used_blocks(self) -> int:
        best: int | None = None
        for idx in range(len(self.children)):
            try:
                used = self._child_op(idx, lambda c: c.used_blocks())
            except _CHILD_FAILURES:
                continue
            best = used if best is None else max(best, used)
        if best is None:
            raise StoreUnavailable("no replica reachable for used_blocks()")
        return best

    def used_block_numbers(self) -> list[int]:
        numbers: set[int] = set()
        reachable = 0
        for idx in range(len(self.children)):
            try:
                numbers.update(
                    self._child_op(idx, lambda c: c.used_block_numbers())
                )
            except _CHILD_FAILURES:
                continue
            reachable += 1
        if not reachable:
            raise StoreUnavailable(
                "no replica reachable for used_block_numbers()"
            )
        return sorted(numbers)

    def leaf_stores(self) -> list[BlockStore]:
        return [leaf for c in self.children for leaf in c.leaf_stores()]

    def child_stores(self) -> list[BlockStore]:
        return list(self.children)

    def capabilities(self) -> Capabilities:
        child_caps = [c.capabilities() for c in self.children]
        return Capabilities(
            thread_safe=False,  # version stamps assume one caller
            durable=all(c.durable for c in child_caps),
            networked=any(c.networked for c in child_caps),
            composite=True,
        )

    def _extra_stats(self) -> dict[str, float]:
        with self._lock:
            return {
                "degraded_writes": self.replica_stats.degraded_writes,
                "degraded_reads": self.replica_stats.degraded_reads,
                "repaired_blocks": self.replica_stats.repaired_blocks,
                "child_failures": self.replica_stats.child_failures,
                "background_writes": self.replica_stats.background_writes,
                "hedged_reads": self.replica_stats.hedged_reads,
                "write_quorum": self.write_quorum,
                "read_quorum": self.read_quorum,
                "consistent_quorums": float(self.consistent_quorums),
            }

    def describe(self) -> str:
        kinds = ",".join(c.scheme for c in self.children)
        mode = "concurrent" if self._concurrent else "sequential"
        return (
            f"replica://{len(self.children)} w={self.write_quorum} "
            f"r={self.read_quorum} {mode} [{kinds}]  "
            f"{self.num_blocks}x{self.block_size}B"
        )


class FailingBlockStore(BlockStore):
    """Pass-through wrapper whose failures are switched on and off.

    The injectable outage the replica tests (and ``replica://`` users
    rehearsing failure drills) flip per child:  while ``failing`` is
    True every operation raises :class:`~repro.errors.StoreUnavailable`,
    exactly what a dead ``remote://`` node surfaces.  ``failures``
    counts the operations rejected.  Registered as
    ``failing://<child-uri>`` so outages can be scripted from a URI
    (``replica://failing://mem://;mem://;mem://#w=2&r=2``).
    """

    scheme = "failing"

    def __init__(self, child: BlockStore, failing: bool = False):
        super().__init__(child.num_blocks, child.block_size)
        self.child = child
        self.failing = failing
        self.failures = 0

    def fail(self) -> None:
        """Start rejecting every operation (the node 'goes down')."""
        self.failing = True

    def heal(self) -> None:
        """Stop rejecting operations (the node 'comes back')."""
        self.failing = False

    def _check_up(self) -> None:
        if self.failing:
            self.failures += 1
            raise StoreUnavailable("injected failure: store is down")

    # The wrapper forwards to the child's *internal* hooks: data has
    # already been validated/padded and counted by this layer's public
    # wrappers, so re-entering the child's public read/write would count
    # the same pass-through operation in two stats layers and zero-fill
    # holes so _get could never report None.  Because the child's own
    # counters therefore stay at zero, the wrapper reports *itself* as
    # the physical leaf (see leaf_stores): its stats ARE the leaf count.

    def _get(self, block_no: int) -> bytes | None:
        self._check_up()
        return self.child._get(block_no)

    def _put(self, block_no: int, data: bytes) -> None:
        self._check_up()
        self.child._put(block_no, data)

    def _get_many(self, block_nos: list[int]) -> list[bytes | None]:
        self._check_up()
        return list(self.child._get_many(block_nos))

    def _put_many(self, items: list[tuple[int, bytes]]) -> None:
        self._check_up()
        self.child._put_many(items)

    def _contains(self, block_no: int) -> bool:
        self._check_up()
        return self.child._contains(block_no)

    def flush(self) -> None:
        self._check_up()
        self.child.flush()

    def close(self) -> None:
        self.child.close()

    def used_blocks(self) -> int:
        self._check_up()
        return self.child.used_blocks()

    def used_block_numbers(self) -> list[int]:
        self._check_up()
        return self.child.used_block_numbers()

    def leaf_stores(self) -> list[BlockStore]:
        # Physical traffic bypasses the child's public counters (see
        # above), so this wrapper stands in for its child in the
        # leaf-stats contract — summing leaf stats must still equal the
        # I/O that reached backing storage.
        return [self]

    def child_stores(self) -> list[BlockStore]:
        return [self.child]

    def capabilities(self) -> Capabilities:
        child_caps = self.child.capabilities()
        return Capabilities(
            thread_safe=False, durable=child_caps.durable,
            networked=child_caps.networked, composite=True,
        )

    def _extra_stats(self) -> dict[str, float]:
        return {
            "failures": self.failures,
            "failing": 1.0 if self.failing else 0.0,
        }

    def describe(self) -> str:
        state = "DOWN" if self.failing else "up"
        return f"failing({state}) over {self.child.describe()}"


class DelayedBlockStore(BlockStore):
    """Pass-through wrapper that sleeps before every operation.

    The injectable *straggler*: ``slow://<child-uri>#ms=N`` makes one
    replica (or one shard node) pay ``N`` milliseconds per operation,
    which is how the concurrency tests and the fanout ablation model a
    loaded node or a slow link without real remote hosts.  The quorum
    acceptance claim — ``w=2`` write latency tracks the 2nd-fastest
    replica, not the slowest — is demonstrated against exactly this
    wrapper.  ``delay_ms`` is writable at runtime so tests can slow a
    node mid-flight.
    """

    scheme = "slow"

    def __init__(self, child: BlockStore, delay_ms: float = 0.0):
        super().__init__(child.num_blocks, child.block_size)
        self.child = child
        self.delay_ms = float(delay_ms)
        self.delayed_ops = 0

    def _sleep(self) -> None:
        self.delayed_ops += 1
        if self.delay_ms > 0:
            time.sleep(self.delay_ms / 1000.0)

    # Forward to the child's internal hooks for the same reason
    # FailingBlockStore does: one stats layer, holes stay visible.

    def _get(self, block_no: int) -> bytes | None:
        self._sleep()
        return self.child._get(block_no)

    def _put(self, block_no: int, data: bytes) -> None:
        self._sleep()
        self.child._put(block_no, data)

    def _get_many(self, block_nos: list[int]) -> list[bytes | None]:
        self._sleep()
        return list(self.child._get_many(block_nos))

    def _put_many(self, items: list[tuple[int, bytes]]) -> None:
        self._sleep()
        self.child._put_many(items)

    def _contains(self, block_no: int) -> bool:
        return self.child._contains(block_no)

    def flush(self) -> None:
        self.child.flush()

    def close(self) -> None:
        self.child.close()

    def used_blocks(self) -> int:
        return self.child.used_blocks()

    def used_block_numbers(self) -> list[int]:
        return self.child.used_block_numbers()

    def leaf_stores(self) -> list[BlockStore]:
        return [self]

    def child_stores(self) -> list[BlockStore]:
        return [self.child]

    def capabilities(self) -> Capabilities:
        child_caps = self.child.capabilities()
        return Capabilities(
            thread_safe=False, durable=child_caps.durable,
            networked=child_caps.networked, composite=True,
        )

    def _extra_stats(self) -> dict[str, float]:
        return {"delayed_ops": self.delayed_ops, "delay_ms": self.delay_ms}

    def describe(self) -> str:
        return f"slow({self.delay_ms:g}ms) over {self.child.describe()}"
