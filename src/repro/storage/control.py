"""The store control plane: inspect and reconfigure mounted topologies.

The data plane (``read``/``write``/``read_many``/``write_many``) moves
blocks; this module is the *admin* surface over it, in the spirit of the
directory/authentication split the distributed accumulator literature
argues for — an explicit, inspectable description of the topology,
separate from the bytes:

* :func:`describe` — walk a live store stack into a :class:`SpecTree`:
  per-node scheme, description, :class:`~repro.storage.base.Capabilities`
  and :class:`~repro.storage.base.StoreStats` snapshot (plus the served
  node's own stats for ``remote://`` children).  ``discfs store-inspect``
  renders it.
* :func:`reshard` — the flagship consumer: live shard add/remove on a
  mounted ``shard://`` ring.  It diffs the current consistent-hash ring
  against the target :class:`~repro.storage.spec.ShardSpec`'s, moves
  **only** the blocks whose ring owner changes (vectored
  ``read_many``/``write_many``, concurrent per child pair), optionally
  verifies every moved block, then atomically swaps the child list —
  one assignment, so concurrent readers never see a half-migrated ring.
  ``discfs reshard`` and ``benchmarks/test_ablation_reshard.py`` drive
  it.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections.abc import Mapping
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import InvalidArgument
from repro.storage.base import BlockStore, Capabilities, StoreStats
from repro.storage.registry import build, close_quietly
from repro.storage.shard import ShardedBlockStore, build_ring, ring_owner
from repro.storage.spec import ShardSpec, SpecLike, parse_spec

#: Blocks per vectored move batch — bounds migration memory while still
#: amortizing round trips on remote children.
MOVE_BATCH = 1024


# ---------------------------------------------------------------------------
# describe
# ---------------------------------------------------------------------------


@dataclass
class SpecTree:
    """One node of a live topology dump (see :func:`describe`)."""

    scheme: str
    description: str
    capabilities: Capabilities
    stats: StoreStats
    children: list["SpecTree"] = field(default_factory=list)
    #: The served store's own snapshot, for nodes that proxy a remote
    #: one (None elsewhere).
    remote: StoreStats | None = None

    def walk(self):
        """This node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        node = {
            "scheme": self.scheme,
            "description": self.description,
            "capabilities": {
                "thread_safe": self.capabilities.thread_safe,
                "durable": self.capabilities.durable,
                "networked": self.capabilities.networked,
                "composite": self.capabilities.composite,
            },
            "stats": self.stats.to_dict(),
            "children": [child.to_dict() for child in self.children],
        }
        if self.remote is not None:
            node["remote"] = self.remote.to_dict()
        return node

    def render(self, indent: int = 0) -> str:
        """Human tree rendering (what ``discfs store-inspect`` prints)."""
        pad = "  " * indent
        lines = [
            f"{pad}{self.description}",
            f"{pad}  caps: {self.capabilities.flags()}   "
            f"io: {self.stats.reads}r/{self.stats.writes}w "
            f"{self.stats.fsyncs}fsync",
        ]
        interesting = {
            name: value for name, value in self.stats.extra.items() if value
        }
        if interesting:
            rendered = ", ".join(
                f"{name}={value:g}" for name, value in
                sorted(interesting.items())
            )
            lines.append(f"{pad}  {rendered}")
        if self.remote is not None:
            lines.append(
                f"{pad}  served: {self.remote.reads}r/"
                f"{self.remote.writes}w [{self.remote.description}]"
            )
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def describe(store: BlockStore) -> SpecTree:
    """Live topology of a mounted store stack, one node per layer.

    Every node carries the layer's scheme, ``describe()`` line, typed
    capabilities and a stats snapshot; ``remote://`` nodes additionally
    fetch the *served* store's snapshot so a cluster dump shows each
    node's authoritative counters, not just the client's view.
    """
    try:
        remote = store.remote_stats()
    except Exception:
        remote = None  # a dead node still renders locally
    return SpecTree(
        scheme=store.scheme,
        description=store.describe(),
        capabilities=store.capabilities(),
        stats=store.snapshot(),
        children=[describe(child) for child in store.child_stores()],
        remote=remote,
    )


def iter_stores(store: BlockStore):
    """Every store in the mounted stack, depth-first, each once."""
    yield store
    for child in store.child_stores():
        yield from iter_stores(child)


# ---------------------------------------------------------------------------
# tenant usage
# ---------------------------------------------------------------------------


def tenant_usage(extra: Mapping[str, float]) -> dict[str, dict[str, float]]:
    """Group flat ``tenant:<name>:<field>`` stats extras into per-tenant rows.

    :class:`~repro.storage.tenant.TenantBlockStore` publishes its usage
    as flat extra counters so they survive the wire-format STATS payload
    unchanged; a gated ``store-serve`` merges every tenant view's extras
    into one snapshot.  This undoes the flattening for rendering:
    ``{"tenant:alice:used": 3.0}`` becomes ``{"alice": {"used": 3.0}}``.
    Keys without a field segment are ignored rather than guessed at.
    """
    tenants: dict[str, dict[str, float]] = {}
    for key, value in extra.items():
        if not key.startswith("tenant:"):
            continue
        name, sep, field_name = key[len("tenant:"):].rpartition(":")
        if not sep or not name or not field_name:
            continue
        tenants.setdefault(name, {})[field_name] = value
    return tenants


def render_tenant_table(tenants: Mapping[str, Mapping[str, float]]) -> str:
    """Aligned per-tenant usage table (``discfs store-inspect`` prints
    it under the topology tree when a gated node reports tenants)."""

    def limits(fields: Mapping[str, float]) -> str:
        parts = []
        if "quota_blocks" in fields:
            parts.append(f"{int(fields['quota_blocks'])}blk")
        if "quota_bytes" in fields:
            parts.append(f"{int(fields['quota_bytes'])}B")
        if "rate_ops" in fields:
            parts.append(f"{fields['rate_ops']:g}/s")
        return ",".join(parts) or "-"

    rows = [("tenant", "region", "used", "reads", "writes",
             "bytes-w", "limits", "denied")]
    for name in sorted(tenants):
        fields = tenants[name]
        offset = int(fields.get("offset", 0))
        blocks = int(fields.get("blocks", 0))
        denied = int(fields.get("quota_denied", 0)
                     + fields.get("rate_denied", 0))
        rows.append((
            name,
            f"[{offset},{offset + blocks})",
            str(int(fields.get("used", 0))),
            str(int(fields.get("reads", 0))),
            str(int(fields.get("writes", 0))),
            str(int(fields.get("bytes_written", 0))),
            limits(fields),
            str(denied),
        ))
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    return "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    )


# ---------------------------------------------------------------------------
# per-layer latency
# ---------------------------------------------------------------------------


def latency_usage(
    extra: Mapping[str, float],
) -> dict[tuple[str, str], dict[str, float]]:
    """Group flat ``lat:<layer>:<op>:<field>`` stats extras into
    per-(layer, op) rows.

    :class:`~repro.storage.metered.InstrumentedBlockStore` publishes its
    histogram readbacks under this stable key namespace (fields:
    ``p50``/``p95``/``p99`` in milliseconds plus ``count``) so they
    survive the wire-format STATS payload and ``store-inspect --json``
    unchanged.  This undoes the flattening for rendering:
    ``{"lat:mem:read:p99": 0.2}`` becomes ``{("mem", "read"): {"p99":
    0.2}}``.  Malformed keys are ignored rather than guessed at.
    """
    rows: dict[tuple[str, str], dict[str, float]] = {}
    for key, value in extra.items():
        if not key.startswith("lat:"):
            continue
        parts = key.split(":")
        if len(parts) != 4 or not all(parts[1:]):
            continue
        _, layer, op, field_name = parts
        rows.setdefault((layer, op), {})[field_name] = value
    return rows


def render_latency_table(
    rows: Mapping[tuple[str, str], Mapping[str, float]],
) -> str:
    """Aligned per-layer latency table (``discfs store-inspect`` prints
    it under the topology tree when a metered node reports latencies)."""
    table = [("layer", "op", "count", "p50(ms)", "p95(ms)", "p99(ms)")]
    for layer, op in sorted(rows):
        fields = rows[(layer, op)]
        table.append((
            layer,
            op,
            str(int(fields.get("count", 0))),
            f"{fields.get('p50', 0.0):.3f}",
            f"{fields.get('p95', 0.0):.3f}",
            f"{fields.get('p99', 0.0):.3f}",
        ))
    widths = [max(len(row[col]) for row in table)
              for col in range(len(table[0]))]
    return "\n".join(
        "  ".join(cell.ljust(width)
                  for cell, width in zip(row, widths)).rstrip()
        for row in table
    )


# ---------------------------------------------------------------------------
# reshard
# ---------------------------------------------------------------------------


@dataclass
class ReshardReport:
    """What a migration did (``discfs reshard`` and the ablation print
    it): movement is the cost axis, verification the safety one."""

    total_blocks: int = 0       # authoritative blocks on the old ring
    moved_blocks: int = 0       # blocks whose ring owner changed
    reused_children: int = 0    # child positions kept live across the swap
    added_children: int = 0     # newly built (or replaced-in) children
    removed_children: int = 0   # children closed after the swap
    verified: bool = False      # moved blocks re-read and compared
    seconds: float = 0.0        # wall-clock for plan+move+verify+swap

    @property
    def moved_fraction(self) -> float:
        return self.moved_blocks / self.total_blocks if self.total_blocks \
            else 0.0


def _match_positions(old_spec: ShardSpec, new_spec: ShardSpec) -> set[int]:
    """Child positions whose spec is unchanged between the two layouts.

    Matching is positional because ring placement is positional: child
    ``i``'s vnodes hash as ``shard-i``, so the same child spec at a
    different index owns different keys.  (Append/remove at the tail —
    the consistent-hashing sweet spot — matches naturally.)
    """
    return {
        i for i in range(min(len(old_spec.shards), len(new_spec.shards)))
        if old_spec.shards[i] == new_spec.shards[i]
    }


def reshard(
    store: ShardedBlockStore,
    old_spec: SpecLike,
    new_spec: SpecLike,
    *,
    verify: bool = True,
    batch: int = MOVE_BATCH,
) -> ReshardReport:
    """Migrate a live ``shard://`` ring from ``old_spec`` to ``new_spec``.

    ``old_spec`` must describe the currently mounted ring (same child
    count); ``new_spec`` is the target.  Only blocks whose consistent-
    hash owner differs between the two rings are moved — ~1/(n+1) of
    the keyspace for a tail append — each batch read from its current
    owner and written to its new one, child pairs in parallel.  With
    ``verify`` (default) every moved block is re-read from its
    destination and compared before the commit point.  The swap itself
    is a single atomic assignment inside the mounted store; removed
    children are closed afterwards.

    **Reads** may continue through ``store`` for the whole migration:
    they are served by the old ring, and moved blocks are *copied*,
    never deleted from their old owner before the swap.  **Writes must
    be quiesced** for the duration: a write landing on a block *after*
    its copy was taken would be routed to the old owner and silently
    shadowed by the stale copy once the new ring takes over (tracking
    and re-copying dirtied blocks is the noted follow-up in ROADMAP).
    ``discfs reshard`` mounts its own store, so the CLI path has no
    concurrent writers by construction.

    Because copies are never reclaimed, per-child counters
    (``used_blocks()``/``shard_distribution()``) overcount after a
    migration — stale copies linger on old owners until overwritten.
    ``used_block_numbers()`` (distinct blocks) stays exact, and a later
    reshard ignores the stale copies when planning; a ``discard``/trim
    primitive to reclaim them is the noted ROADMAP follow-up.
    """
    old_spec = parse_spec(old_spec)
    new_spec = parse_spec(new_spec)
    if not isinstance(old_spec, ShardSpec) or not isinstance(new_spec, ShardSpec):
        raise InvalidArgument(
            "reshard needs shard:// specs "
            f"(got {old_spec.scheme}:// -> {new_spec.scheme}://)"
        )
    if not isinstance(store, ShardedBlockStore):
        raise InvalidArgument(
            f"reshard operates on a mounted shard:// store, "
            f"not {store.scheme}://"
        )
    old_children = store.children
    if len(old_spec.shards) != len(old_children):
        raise InvalidArgument(
            f"old spec names {len(old_spec.shards)} children but the "
            f"mounted ring has {len(old_children)}"
        )
    started = time.monotonic()
    report = ReshardReport()

    keep = _match_positions(old_spec, new_spec)
    n_new = len(new_spec.shards)
    new_ring, new_ring_shard = build_ring(n_new)

    # Build the target child list: reuse unchanged positions, open the
    # rest from their specs.
    new_children: list[BlockStore] = []
    opened: list[BlockStore] = []
    try:
        for j in range(n_new):
            if j in keep:
                new_children.append(old_children[j])
            else:
                child = build(new_spec.shards[j],
                              num_blocks=store.num_blocks,
                              block_size=store.block_size)
                opened.append(child)
                new_children.append(child)

        # Plan: every authoritative block (held by its old-ring owner)
        # whose destination differs — a changed ring position, or an
        # unchanged position whose child is being replaced.
        moves: dict[tuple[int, int], list[int]] = {}
        for i, child in enumerate(old_children):
            for block_no in child.used_block_numbers():
                if block_no >= store.num_blocks:
                    continue  # beyond the mounted geometry
                if store.shard_for(block_no) != i:
                    continue  # stale non-owner copy from an older layout
                report.total_blocks += 1
                j = ring_owner(new_ring, new_ring_shard, block_no)
                if j == i and i in keep:
                    continue  # same child object keeps owning it
                moves.setdefault((i, j), []).append(block_no)

        # Pairs run concurrently, but two pairs may share a child (two
        # sources feeding one new node, or a kept child acting as both
        # source and destination) — and children do not in general
        # tolerate concurrent callers.  One lock per live store object
        # serializes access per child while distinct pairs still overlap.
        child_locks: dict[int, threading.Lock] = {}
        for store_obj in (*old_children, *new_children):
            child_locks.setdefault(id(store_obj), threading.Lock())

        def move_pair(pair: tuple[int, int]) -> int:
            src, dst = pair
            block_nos = moves[pair]
            src_lock = child_locks[id(old_children[src])]
            dst_lock = child_locks[id(new_children[dst])]
            for start in range(0, len(block_nos), batch):
                window = block_nos[start:start + batch]
                with src_lock:
                    datas = old_children[src].read_many(window)
                with dst_lock:
                    new_children[dst].write_many(list(zip(window, datas)))
                    if verify:
                        echoed = new_children[dst].read_many(window)
                        for block_no, want, got in zip(window, datas, echoed):
                            if want != got:
                                raise InvalidArgument(
                                    f"reshard verification failed: block "
                                    f"{block_no} mismatched on child {dst}"
                                )
            return len(block_nos)

        pairs = list(moves)
        if len(pairs) > 1:
            with ThreadPoolExecutor(
                max_workers=min(8, len(pairs)),
                thread_name_prefix="reshard",
            ) as pool:
                # Copy the caller's contextvars per task so an active
                # trace span parents the mover writes (one Context
                # cannot be entered concurrently — copy per submission,
                # like the shard fan-out pool does).
                futures = [
                    pool.submit(contextvars.copy_context().run,
                                move_pair, pair)
                    for pair in pairs
                ]
                moved = [fut.result() for fut in futures]
        else:
            moved = [move_pair(pair) for pair in pairs]
        report.moved_blocks = sum(moved)
        report.verified = verify

        # Commit point: one atomic assignment flips the ring.
        store.swap_children(new_children, fanout=new_spec.fanout)
    except Exception:
        close_quietly(opened)
        raise

    # Retire children that did not make it into the new ring.
    for i, child in enumerate(old_children):
        if i >= n_new or i not in keep:
            report.removed_children += 1
            try:
                child.close()
            except Exception:
                pass  # a dead node may not close cleanly
    report.reused_children = len(keep)
    report.added_children = len(opened)
    report.seconds = time.monotonic() - started
    return report
