"""Write-back LRU cache overlay (``cached://<child-uri>#capacity=N``).

Keeps the hottest ``capacity`` blocks in memory in front of any child
store.  Writes dirty the cache entry and only reach the child on LRU
eviction or :meth:`flush` — the classic write-back discipline, so a
``cached://sqlite://...`` stack absorbs Bonnie's rewrite phase at memory
speed while the child still holds everything after a flush.

The overlay's own :class:`~repro.fs.blockdev.BlockDeviceStats` counts the
*logical* traffic callers issued; the child's stats count the *physical*
traffic that survived the cache — the difference is what the ablation
measures.  Hit/miss/eviction/write-back counts live in
:class:`CacheStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import InvalidArgument
from repro.storage.base import BlockStore, Capabilities

DEFAULT_CAPACITY = 256


@dataclass
class CacheStats:
    """Overlay behaviour counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.writebacks = 0


class CachedBlockStore(BlockStore):
    """LRU write-back cache in front of ``child``."""

    scheme = "cached"

    def __init__(self, child: BlockStore, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise InvalidArgument("cache capacity must be positive")
        super().__init__(child.num_blocks, child.block_size)
        self.child = child
        self.capacity = capacity
        self.cache_stats = CacheStats()
        self._entries: OrderedDict[int, bytes] = OrderedDict()
        self._dirty: set[int] = set()

    def _get(self, block_no: int) -> bytes | None:
        cached = self._entries.get(block_no)
        if cached is not None:
            self.cache_stats.hits += 1
            self._entries.move_to_end(block_no)
            return cached
        self.cache_stats.misses += 1
        data = self.child.read(block_no)
        self._insert(block_no, data, dirty=False)
        return data

    def _put(self, block_no: int, data: bytes) -> None:
        self._insert(block_no, data, dirty=True)

    def _contains(self, block_no: int) -> bool:
        return block_no in self._dirty or self.child._contains(block_no)

    def _get_many(self, block_nos: list[int]) -> list[bytes | None]:
        # Serve hits from the overlay; fetch all misses from the child in
        # one read_many, so a cached://remote:// stack pays one round trip
        # per cold batch instead of one per cold block.
        out: list[bytes | None] = [None] * len(block_nos)
        miss_positions: dict[int, list[int]] = {}
        for pos, block_no in enumerate(block_nos):
            cached = self._entries.get(block_no)
            if cached is not None:
                self.cache_stats.hits += 1
                self._entries.move_to_end(block_no)
                out[pos] = cached
            elif block_no in miss_positions:
                # Same block again in this batch: the looped path would
                # hit the just-filled entry, so count it as a hit.
                self.cache_stats.hits += 1
                miss_positions[block_no].append(pos)
            else:
                self.cache_stats.misses += 1
                miss_positions[block_no] = [pos]
        if miss_positions:
            missing = list(miss_positions)
            for block_no, data in zip(missing, self.child.read_many(missing)):
                self._insert(block_no, data, dirty=False)
                for pos in miss_positions[block_no]:
                    out[pos] = data
        return out

    def _put_many(self, items: list[tuple[int, bytes]]) -> None:
        for block_no, data in items:
            self._insert(block_no, data, dirty=True)

    def _insert(self, block_no: int, data: bytes, dirty: bool) -> None:
        if block_no in self._entries:
            self._entries.move_to_end(block_no)
        self._entries[block_no] = data
        if dirty:
            self._dirty.add(block_no)
        while len(self._entries) > self.capacity:
            victim, victim_data = self._entries.popitem(last=False)
            self.cache_stats.evictions += 1
            if victim in self._dirty:
                self._dirty.discard(victim)
                self.cache_stats.writebacks += 1
                self.child.write(victim, victim_data)

    def flush(self) -> None:
        dirty = sorted(self._dirty)
        if dirty:
            # One vectored write-back instead of one write per dirty
            # block: over a remote child this is one round trip.
            self.cache_stats.writebacks += len(dirty)
            self.child.write_many(
                [(block_no, self._entries[block_no]) for block_no in dirty]
            )
        self._dirty.clear()
        self.child.flush()

    def close(self) -> None:
        self.flush()
        self.child.close()

    def used_blocks(self) -> int:
        # Count dirty blocks the child has never seen without flushing
        # them: mid-run introspection must not add physical writes to the
        # child's stats, or the logical-vs-physical ablation is skewed.
        new_dirty = sum(
            1 for block_no in self._dirty if not self.child._contains(block_no)
        )
        return self.child.used_blocks() + new_dirty

    def used_block_numbers(self) -> list[int]:
        # Dirty blocks the child has never seen, plus the child's own —
        # without flushing (introspection must stay stats-pure).
        return sorted(set(self.child.used_block_numbers()) | self._dirty)

    def leaf_stores(self) -> list[BlockStore]:
        return self.child.leaf_stores()

    def child_stores(self) -> list[BlockStore]:
        return [self.child]

    def capabilities(self) -> Capabilities:
        child_caps = self.child.capabilities()
        return Capabilities(
            thread_safe=False,  # the LRU mutates even on reads
            durable=False,      # write-back holds dirty blocks in memory
            networked=child_caps.networked,
            composite=True,
        )

    def _extra_stats(self) -> dict[str, float]:
        lookups = self.cache_stats.hits + self.cache_stats.misses
        return {
            "hits": self.cache_stats.hits,
            "misses": self.cache_stats.misses,
            "hit_ratio": round(self.cache_stats.hits / lookups, 4)
            if lookups else 0.0,
            "evictions": self.cache_stats.evictions,
            "writebacks": self.cache_stats.writebacks,
            "dirty": len(self._dirty),
        }

    def describe(self) -> str:
        return f"cached(cap={self.capacity}) over {self.child.describe()}"
