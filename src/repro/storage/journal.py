"""Write-ahead journal overlay (``journal://<child-uri>[#cap=N]``).

Checkpoint persistence (:mod:`repro.fs.persist`) loses whatever happened
since the last ``sync``; this layer upgrades any durable child backend
to **crash recovery**: every write is appended to an append-only intent
log and ``fsync``\\ ed *before* the blocks reach the child, so once a
``write``/``write_many`` call returns, that data survives a crash at any
later point.  On reopen, committed-but-unapplied records are replayed
into the child and a torn tail (a record cut short by the crash, or one
whose CRC no longer matches) is discarded.

On-disk format — a fixed header followed by length-prefixed records::

    header: magic "DJRNL001" | u32 block_size | u32 reserved
    record: u32 payload_len | u64 seq | u8 kind | payload | u32 crc32

``crc32`` covers ``seq | kind | payload``.  A transaction is one DATA
record (payload: ``u32 count`` then ``count`` x ``u32 block_no`` +
``block_size`` bytes) followed by a COMMIT record with the same
sequence number and an empty payload.  Replay applies a DATA record
only if its COMMIT made it to disk — a batch whose commit marker was
lost is, by definition, a write that was never acknowledged.

Costs and amortization:

* one journal ``fsync`` per transaction, not per block — a
  ``write_many`` batch (the FFS extent paths) is a single **group
  commit**, so durability overhead scales with batches, not blocks;
* the journal is truncated (checkpointed) whenever :meth:`flush` pushes
  the child to durable storage, and automatically once ``cap``
  transactions accumulate, which bounds both log growth and replay
  time after a crash.

``discfs journal-inspect`` dumps and verifies a log via
:func:`inspect_journal`.  :class:`~repro.fs.blockdev.BlockDeviceStats`
grew an ``fsyncs`` counter so the journal ablation
(``benchmarks/test_ablation_journal.py``) can report what the log costs
next to what it buys.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field

from repro.errors import InvalidArgument
from repro.obs.metrics import Histogram
from repro.storage.base import BlockStore

MAGIC = b"DJRNL001"
_HEADER = struct.Struct(">8sII")  # magic, block size, reserved
_REC = struct.Struct(">IQB")      # payload length, sequence, kind
_U32 = struct.Struct(">I")

KIND_DATA = 1
KIND_COMMIT = 2
_KIND_NAMES = {KIND_DATA: "data", KIND_COMMIT: "commit"}

#: Committed transactions the journal may hold before an automatic
#: checkpoint (child flush + log truncation) bounds replay work.
DEFAULT_JOURNAL_CAP = 1024


@dataclass
class JournalStats:
    """What the write-ahead log did, for benchmarks and reports."""

    transactions: int = 0          # DATA+COMMIT pairs appended
    blocks_journaled: int = 0      # block images written to the log
    fsyncs: int = 0                # journal-file fsync barriers issued
    checkpoints: int = 0           # truncations after a child flush
    auto_checkpoints: int = 0      # the subset forced by the cap
    replayed_transactions: int = 0  # committed txns applied at open
    replayed_blocks: int = 0
    torn_bytes: int = 0            # trailing bytes discarded at open
    replay_seconds: float = 0.0

    def reset(self) -> None:
        self.transactions = self.blocks_journaled = 0
        self.fsyncs = self.checkpoints = self.auto_checkpoints = 0
        self.replayed_transactions = self.replayed_blocks = 0
        self.torn_bytes = 0
        self.replay_seconds = 0.0


@dataclass
class JournalRecord:
    """One parsed log record (see :func:`inspect_journal`)."""

    offset: int
    seq: int
    kind: int
    blocks: int          # block count for DATA records, 0 for COMMIT
    crc_ok: bool

    @property
    def kind_name(self) -> str:
        return _KIND_NAMES.get(self.kind, f"kind-{self.kind}")


@dataclass
class JournalInfo:
    """Verification summary of a journal file."""

    path: str
    block_size: int
    size: int
    records: list[JournalRecord] = field(default_factory=list)
    committed: int = 0             # transactions with a commit marker
    committed_blocks: int = 0
    uncommitted: list[int] = field(default_factory=list)  # seqs w/o commit
    torn_offset: int | None = None  # first byte of the discarded tail


def _scan(buf: bytes, block_size: int) -> tuple[list[JournalRecord], int | None]:
    """Walk records in ``buf`` (the file contents after the header).

    Returns the valid records (offsets are absolute file offsets) and
    the torn-tail offset — the absolute position of the first truncated
    or corrupt record, or None when the log parses cleanly.  In an
    append-only fsynced log, damage can only be a tail cut short by a
    crash, so everything after the first bad record is discarded.
    """
    records: list[JournalRecord] = []
    pos = 0
    while pos < len(buf):
        offset = _HEADER.size + pos
        if pos + _REC.size + _U32.size > len(buf):
            return records, offset  # cut mid record header
        payload_len, seq, kind = _REC.unpack_from(buf, pos)
        total = _REC.size + payload_len + _U32.size
        if kind not in _KIND_NAMES or pos + total > len(buf):
            return records, offset  # garbled head or cut-short payload
        body = buf[pos + _REC.size : pos + _REC.size + payload_len]
        (crc,) = _U32.unpack_from(buf, pos + _REC.size + payload_len)
        if crc != zlib.crc32(buf[pos + 4 : pos + _REC.size] + body):
            return records, offset
        blocks = 0
        if kind == KIND_DATA:
            if payload_len < _U32.size:
                return records, offset
            (blocks,) = _U32.unpack_from(body, 0)
            if payload_len != _U32.size + blocks * (_U32.size + block_size):
                return records, offset
        records.append(JournalRecord(offset, seq, kind, blocks, True))
        pos += total
    return records, None


def _decode_data(buf: bytes, record: JournalRecord,
                 block_size: int) -> list[tuple[int, bytes]]:
    """Block images of a DATA record (``buf`` excludes the header)."""
    start = record.offset - _HEADER.size + _REC.size + _U32.size
    items: list[tuple[int, bytes]] = []
    for i in range(record.blocks):
        at = start + i * (_U32.size + block_size)
        (block_no,) = _U32.unpack_from(buf, at)
        items.append(
            (block_no, buf[at + _U32.size : at + _U32.size + block_size])
        )
    return items


def inspect_journal(path: str) -> JournalInfo:
    """Parse and verify a journal file without touching any child store.

    Raises :class:`~repro.errors.InvalidArgument` if the file is not a
    DisCFS journal; torn tails and uncommitted transactions are normal
    after a crash and are *reported*, not raised.
    """
    with open(path, "rb") as f:
        raw = f.read()
    if len(raw) < _HEADER.size:
        raise InvalidArgument(f"{path} is too short to be a journal")
    magic, block_size, _reserved = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise InvalidArgument(f"{path} is not a DisCFS journal")
    records, torn_offset = _scan(raw[_HEADER.size:], block_size)
    info = JournalInfo(path=path, block_size=block_size, size=len(raw),
                       records=records, torn_offset=torn_offset)
    pending: dict[int, int] = {}  # seq -> block count
    for record in records:
        if record.kind == KIND_DATA:
            pending[record.seq] = record.blocks
        elif record.seq in pending:
            info.committed += 1
            info.committed_blocks += pending.pop(record.seq)
    info.uncommitted = sorted(pending)
    return info


class JournalBlockStore(BlockStore):
    """Write-ahead journal in front of a durable child store."""

    scheme = "journal"

    def __init__(self, child: BlockStore, journal_path: str,
                 cap: int = DEFAULT_JOURNAL_CAP):
        if cap <= 0:
            raise InvalidArgument("journal cap must be positive")
        super().__init__(child.num_blocks, child.block_size)
        self.child = child
        # Writes serialize under this layer's lock, but reads go to the
        # child directly — concurrent safety is the child's to claim.
        self.thread_safe = child.thread_safe
        self.journal_path = journal_path
        self.cap = cap
        self.journal_stats = JournalStats()
        # Per-instance (not registry-shared): a mounted stack can hold
        # several journals and each reports its own fsync latency.
        self._fsync_hist = Histogram("journal:fsync_seconds")
        self._seq = 0
        self._txns_in_log = 0
        self._end = 0  # append offset
        # ``discfs serve``/``store-serve`` dispatch each client on its
        # own thread (the reason sqlite:// carries a lock): the append
        # offset, sequence counter and truncation must be serialized or
        # concurrent writers interleave records and garble the log.
        self._lock = threading.Lock()
        parent = os.path.dirname(journal_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fd = os.open(journal_path, os.O_RDWR | os.O_CREAT, 0o600)
        try:
            if os.fstat(self._fd).st_size >= _HEADER.size:
                self._replay()
            else:
                self._reset_log()
        except Exception:
            os.close(self._fd)
            self._fd = -1
            raise

    # -- logging -----------------------------------------------------------

    def _reset_log(self) -> None:
        os.ftruncate(self._fd, 0)
        os.pwrite(self._fd, _HEADER.pack(MAGIC, self.block_size, 0), 0)
        self._fsync()
        self._end = _HEADER.size
        self._seq = 0
        self._txns_in_log = 0

    def _fsync(self) -> None:
        """The journal's one durability barrier, timed: fsync latency is
        the per-transaction floor, so it feeds the latency extras
        (``lat:journal:fsync:*``) alongside the raw counters."""
        t0 = time.perf_counter()
        os.fsync(self._fd)
        self._fsync_hist.record(time.perf_counter() - t0)
        self.stats.record_fsync()
        self.journal_stats.fsyncs += 1

    def _encode_record(self, kind: int, seq: int, payload: bytes) -> bytes:
        head = _REC.pack(len(payload), seq, kind)
        crc = zlib.crc32(head[4:] + payload)
        return head + payload + _U32.pack(crc)

    def _append_transaction(self, items: list[tuple[int, bytes]]) -> None:
        """Durably log one batch: DATA + COMMIT, then a single fsync —
        the group commit that makes write_many pay one barrier per
        batch instead of one per block."""
        self._seq += 1
        payload = bytearray(_U32.pack(len(items)))
        for block_no, data in items:
            payload += _U32.pack(block_no)
            payload += data
        rec = (self._encode_record(KIND_DATA, self._seq, bytes(payload))
               + self._encode_record(KIND_COMMIT, self._seq, b""))
        os.pwrite(self._fd, rec, self._end)
        self._fsync()
        self._end += len(rec)
        self._txns_in_log += 1
        self.journal_stats.transactions += 1
        self.journal_stats.blocks_journaled += len(items)

    # -- replay ------------------------------------------------------------

    def _replay(self) -> None:
        started = time.monotonic()
        size = os.fstat(self._fd).st_size
        raw = os.pread(self._fd, size, 0)
        magic, block_size, _reserved = _HEADER.unpack_from(raw)
        if magic != MAGIC:
            raise InvalidArgument(
                f"{self.journal_path} is not a DisCFS journal"
            )
        if block_size != self.block_size:
            raise InvalidArgument(
                f"{self.journal_path} logs {block_size}-byte blocks, "
                f"child uses {self.block_size}"
            )
        buf = raw[_HEADER.size:]
        records, torn_offset = _scan(buf, block_size)
        pending: dict[int, JournalRecord] = {}
        # Later committed writes of the same block win; apply the final
        # image once instead of every intermediate version.
        final: dict[int, bytes] = {}
        committed = 0
        for record in records:
            if record.kind == KIND_DATA:
                pending[record.seq] = record
            elif record.seq in pending:
                data_rec = pending.pop(record.seq)
                for block_no, data in _decode_data(buf, data_rec,
                                                   block_size):
                    final[block_no] = data
                committed += 1
        if final:
            self.child.write_many(sorted(final.items()))
        if torn_offset is not None:
            self.journal_stats.torn_bytes = size - torn_offset
        self.journal_stats.replayed_transactions = committed
        self.journal_stats.replayed_blocks = len(final)
        # The replayed state is only durable once the child flushes; then
        # the log can be truncated (an idempotent crash between the two
        # just replays again).
        self.child.flush()
        self._reset_log()
        self.journal_stats.replay_seconds = time.monotonic() - started

    # -- checkpointing -----------------------------------------------------

    def _checkpoint(self, auto: bool = False) -> None:
        self.child.flush()
        self._reset_log()
        self.journal_stats.checkpoints += 1
        if auto:
            self.journal_stats.auto_checkpoints += 1

    @property
    def pending_transactions(self) -> int:
        """Committed transactions in the log not yet checkpointed away."""
        return self._txns_in_log

    # -- BlockStore interface ----------------------------------------------

    def _require_open(self) -> None:
        if self._fd < 0:
            raise InvalidArgument(
                f"journal store {self.journal_path} is closed"
            )

    def _put(self, block_no: int, data: bytes) -> None:
        self._put_many([(block_no, data)])

    def _put_many(self, items: list[tuple[int, bytes]]) -> None:
        with self._lock:
            self._require_open()
            self._append_transaction(items)
            self.child.write_many(items)
            if self._txns_in_log >= self.cap:
                self._checkpoint(auto=True)

    def _get(self, block_no: int) -> bytes | None:
        return self.child.read(block_no)

    def _get_many(self, block_nos: list[int]) -> list[bytes | None]:
        return list(self.child.read_many(block_nos))

    def _contains(self, block_no: int) -> bool:
        return self.child._contains(block_no)

    def flush(self) -> None:
        with self._lock:
            self._require_open()
            self._checkpoint()

    def close(self) -> None:
        # The final checkpoint can fail (the child's flush is somebody
        # else's disk or network); the fd and the child must be released
        # regardless, or a flaky child at shutdown leaks the WAL fd.
        # The log keeps its records when the checkpoint fails, so the
        # acknowledged writes stay replayable on reopen.
        try:
            with self._lock:
                if self._fd >= 0:
                    try:
                        self._checkpoint()
                    finally:
                        os.close(self._fd)
                        self._fd = -1
        finally:
            self.child.close()

    def abandon(self) -> None:
        """Drop the store *without* checkpointing — the crash simulation
        used by recovery tests and the replay benchmark.  The journal
        file keeps its records; the child is left exactly as the crash
        would leave it (buffered state discarded, nothing flushed)."""
        with self._lock:
            if self._fd >= 0:
                os.close(self._fd)
                self._fd = -1
        # Deliberately do NOT close the child: sqlite's close() commits,
        # which would fake durability a real crash does not provide.

    def used_blocks(self) -> int:
        return self.child.used_blocks()

    def used_block_numbers(self) -> list[int]:
        # Writes reach the child right after the log append, so the
        # child's enumeration is complete even before a checkpoint.
        return self.child.used_block_numbers()

    def leaf_stores(self) -> list[BlockStore]:
        return self.child.leaf_stores()

    def child_stores(self) -> list[BlockStore]:
        return [self.child]

    def capabilities(self):
        from repro.storage.base import Capabilities

        child_caps = self.child.capabilities()
        return Capabilities(
            thread_safe=self.thread_safe,
            durable=child_caps.durable,
            networked=child_caps.networked,
            composite=True,
        )

    def _extra_stats(self) -> dict[str, float]:
        return {
            "transactions": self.journal_stats.transactions,
            "blocks_journaled": self.journal_stats.blocks_journaled,
            "journal_fsyncs": self.journal_stats.fsyncs,
            "checkpoints": self.journal_stats.checkpoints,
            "auto_checkpoints": self.journal_stats.auto_checkpoints,
            "replayed_transactions":
                self.journal_stats.replayed_transactions,
            "replayed_blocks": self.journal_stats.replayed_blocks,
            "pending_transactions": self._txns_in_log,
        } | self._fsync_latency_extras()

    def _fsync_latency_extras(self) -> dict[str, float]:
        if not self._fsync_hist.count:
            return {}
        p = self._fsync_hist.percentiles()
        return {
            "lat:journal:fsync:count": float(self._fsync_hist.count),
            "lat:journal:fsync:p50": round(p["p50"] * 1000.0, 4),
            "lat:journal:fsync:p95": round(p["p95"] * 1000.0, 4),
            "lat:journal:fsync:p99": round(p["p99"] * 1000.0, 4),
        }

    def describe(self) -> str:
        return (
            f"journal(cap={self.cap}, {self.journal_path}) over "
            f"{self.child.describe()}"
        )
