"""SQLite-backed block store (``sqlite://<path>``).

Blocks are rows in a ``blocks`` table keyed by block number, with a
``meta`` table recording the geometry so a reopened store recovers the
block size it was created with.  Writes are batched inside a transaction
and committed on :meth:`flush`/:meth:`close` (and every
:data:`COMMIT_EVERY` writes), which keeps the per-block overhead close to
a dict insert while still giving real on-disk durability — the cheapest
"database-grade" backend the ablation can compare against ``file://``.

A single connection is shared across threads (``check_same_thread=False``
with a lock serializing every statement), because ``discfs serve`` hands
each TCP client to its own thread while the store was opened on the main
thread.
"""

from __future__ import annotations

import os
import sqlite3
import threading

from repro.errors import InvalidArgument
from repro.fs.blockdev import DEFAULT_BLOCK_SIZE
from repro.storage.base import BlockStore

#: Commit the write transaction after this many buffered writes.
COMMIT_EVERY = 512


class SQLiteBlockStore(BlockStore):
    """Blocks stored as rows of an SQLite database."""

    scheme = "sqlite"
    thread_safe = True  # every statement runs under an internal lock
    durable = True

    def __init__(
        self, path: str, num_blocks: int = 16384, block_size: int = DEFAULT_BLOCK_SIZE
    ):
        self.path = path
        if path == ":memory:":
            self.durable = False  # instance override: nothing on disk
        if path != ":memory:":
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
        conn = sqlite3.connect(path, isolation_level=None, check_same_thread=False)
        conn.execute("PRAGMA journal_mode=MEMORY")
        conn.execute("PRAGMA synchronous=OFF")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS blocks"
            " (block_no INTEGER PRIMARY KEY, data BLOB NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value INTEGER)"
        )
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'block_size'"
        ).fetchone()
        if row is not None:
            stored_bs = int(row[0])
            if stored_bs != block_size:
                conn.close()
                raise InvalidArgument(
                    f"{path} was created with block size {stored_bs}, "
                    f"not {block_size}"
                )
            stored_blocks = conn.execute(
                "SELECT value FROM meta WHERE key = 'num_blocks'"
            ).fetchone()
            # A reopened store never shrinks below its created capacity.
            num_blocks = max(num_blocks, int(stored_blocks[0]))
        super().__init__(num_blocks, block_size)
        conn.execute(
            "INSERT OR REPLACE INTO meta VALUES ('block_size', ?)", (block_size,)
        )
        conn.execute(
            "INSERT OR REPLACE INTO meta VALUES ('num_blocks', ?)", (num_blocks,)
        )
        self._conn = conn
        self._pending = 0
        self._lock = threading.Lock()
        conn.execute("BEGIN")

    def _require_conn(self) -> sqlite3.Connection:
        if self._conn is None:
            raise InvalidArgument(f"sqlite store {self.path} is closed")
        return self._conn

    def _get(self, block_no: int) -> bytes | None:
        with self._lock:
            row = self._require_conn().execute(
                "SELECT data FROM blocks WHERE block_no = ?", (block_no,)
            ).fetchone()
        return None if row is None else bytes(row[0])

    def _put(self, block_no: int, data: bytes) -> None:
        with self._lock:
            self._require_conn().execute(
                "INSERT OR REPLACE INTO blocks VALUES (?, ?)", (block_no, data)
            )
            self._pending += 1
            if self._pending >= COMMIT_EVERY:
                self._commit_locked()

    def _contains(self, block_no: int) -> bool:
        with self._lock:
            return self._require_conn().execute(
                "SELECT 1 FROM blocks WHERE block_no = ?", (block_no,)
            ).fetchone() is not None

    def _commit_locked(self) -> None:
        self._conn.execute("COMMIT")
        self._conn.execute("BEGIN")
        self._pending = 0

    def flush(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._commit_locked()

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.execute("COMMIT")
                self._conn.close()
                self._conn = None

    def used_blocks(self) -> int:
        with self._lock:
            if self._conn is None:
                return 0
            return int(
                self._conn.execute("SELECT COUNT(*) FROM blocks").fetchone()[0]
            )

    def used_block_numbers(self) -> list[int]:
        with self._lock:
            if self._conn is None:
                return []
            rows = self._conn.execute(
                "SELECT block_no FROM blocks ORDER BY block_no"
            ).fetchall()
        return [int(row[0]) for row in rows]

    def describe(self) -> str:
        return f"sqlite://{self.path}  {self.num_blocks}x{self.block_size}B"
