"""URI-driven backend registry: ``open_store("sqlite:///tmp/fs.db")``.

Every storage backend registers a URI scheme; callers name a backend with
a string instead of constructing classes, so the CLI, servers, examples
and benchmarks all accept ``--backend <uri>`` uniformly.  Supported
grammars (see README "Storage backends" for examples):

``mem://``
    In-memory store.  Options: ``?blocks=N&bs=N``.
``file://<path>``
    One host file (``file:///abs/path`` or ``file://rel/path``).
``sqlite://<path>``
    SQLite database file (``sqlite://:memory:`` works too).
``shard://<n>``
    ``n`` in-memory children on a consistent-hash ring.  Options:
    ``?base=mem|file|sqlite&dir=PATH`` (file/sqlite children are created
    as ``PATH/shard-<i>.blk``/``.db``).
``shard://<uri>;<uri>;...``
    Explicit child URIs, semicolon-separated.
``cached://<child-uri>[#capacity=N]``
    Write-back LRU overlay on any child URI; overlay options ride in the
    URI *fragment* so they never collide with the child's own query.

Composition nests naturally: ``cached://shard://4#capacity=512``.
"""

from __future__ import annotations

import os
from typing import Callable
from urllib.parse import parse_qsl

from repro.errors import InvalidArgument
from repro.fs.blockdev import DEFAULT_BLOCK_SIZE
from repro.storage.base import BlockStore
from repro.storage.cache import DEFAULT_CAPACITY, CachedBlockStore
from repro.storage.filestore import FileBlockStore
from repro.storage.memory import MemoryBlockStore
from repro.storage.shard import ShardedBlockStore
from repro.storage.sqlitestore import SQLiteBlockStore

DEFAULT_NUM_BLOCKS = 16384

#: scheme -> factory(rest-of-uri, num_blocks, block_size) -> BlockStore
_FACTORIES: dict[str, Callable[[str, int, int], BlockStore]] = {}


def register_scheme(
    scheme: str, factory: Callable[[str, int, int], BlockStore]
) -> None:
    """Register (or replace) a backend factory for ``scheme``."""
    _FACTORIES[scheme] = factory


def registered_schemes() -> tuple[str, ...]:
    """All URI schemes ``open_store`` currently resolves."""
    return tuple(sorted(_FACTORIES))


def split_uri(uri: str) -> tuple[str, str]:
    """Split ``scheme://rest`` (InvalidArgument if malformed)."""
    scheme, sep, rest = uri.partition("://")
    if not sep or not scheme:
        raise InvalidArgument(
            f"backend URI {uri!r} must look like '<scheme>://...'"
        )
    return scheme, rest


def _parse_options(rest: str) -> tuple[str, dict[str, str]]:
    body, sep, query = rest.partition("?")
    return body, (dict(parse_qsl(query)) if sep else {})


def _geometry(
    options: dict[str, str], num_blocks: int, block_size: int
) -> tuple[int, int]:
    """Apply ``blocks=``/``bs=`` URI overrides to the requested geometry."""
    if "blocks" in options:
        num_blocks = int(options["blocks"])
    if "bs" in options:
        block_size = int(options["bs"])
    return num_blocks, block_size


def open_store(
    uri: str,
    *,
    num_blocks: int = DEFAULT_NUM_BLOCKS,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> BlockStore:
    """Resolve a backend URI to a live :class:`BlockStore`."""
    scheme, rest = split_uri(uri)
    factory = _FACTORIES.get(scheme)
    if factory is None:
        raise InvalidArgument(
            f"unknown storage scheme {scheme!r}; "
            f"registered: {', '.join(registered_schemes())}"
        )
    return factory(rest, num_blocks, block_size)


def open_device(
    uri: str,
    *,
    num_blocks: int = DEFAULT_NUM_BLOCKS,
    block_size: int = DEFAULT_BLOCK_SIZE,
):
    """Resolve a backend URI to a ``BlockDevice``-compatible adapter.

    This is the constructor the fs/nfs/cli layers use: existing callers
    keep the ``BlockDevice`` API while the storage stack underneath is
    chosen by URI.
    """
    from repro.storage.adapter import StoreBlockDevice

    return StoreBlockDevice(
        open_store(uri, num_blocks=num_blocks, block_size=block_size), uri=uri
    )


# ---------------------------------------------------------------------------
# Built-in scheme factories
# ---------------------------------------------------------------------------


def _make_mem(rest: str, num_blocks: int, block_size: int) -> BlockStore:
    body, options = _parse_options(rest)
    if body:
        raise InvalidArgument(f"mem:// takes no path (got {body!r})")
    num_blocks, block_size = _geometry(options, num_blocks, block_size)
    return MemoryBlockStore(num_blocks, block_size)


def _make_file(rest: str, num_blocks: int, block_size: int) -> BlockStore:
    path, options = _parse_options(rest)
    if not path:
        raise InvalidArgument("file:// needs a path, e.g. file:///tmp/fs.img")
    num_blocks, block_size = _geometry(options, num_blocks, block_size)
    return FileBlockStore(path, num_blocks, block_size)


def _make_sqlite(rest: str, num_blocks: int, block_size: int) -> BlockStore:
    path, options = _parse_options(rest)
    if not path:
        raise InvalidArgument("sqlite:// needs a path, e.g. sqlite:///tmp/fs.db")
    num_blocks, block_size = _geometry(options, num_blocks, block_size)
    return SQLiteBlockStore(path, num_blocks, block_size)


def _make_shard(rest: str, num_blocks: int, block_size: int) -> BlockStore:
    if "://" in rest:
        child_uris = [u for u in rest.split(";") if u]
        children = [
            open_store(u, num_blocks=num_blocks, block_size=block_size)
            for u in child_uris
        ]
        return ShardedBlockStore(children)

    body, options = _parse_options(rest)
    try:
        n = int(body)
    except ValueError:
        raise InvalidArgument(
            f"shard:// needs a shard count or child URIs (got {rest!r})"
        ) from None
    if n <= 0:
        raise InvalidArgument("shard count must be positive")
    num_blocks, block_size = _geometry(options, num_blocks, block_size)
    base = options.get("base", "mem")
    directory = options.get("dir", "")
    children: list[BlockStore] = []
    for i in range(n):
        if base == "mem":
            child_uri = "mem://"
        elif base in ("file", "sqlite"):
            if not directory:
                raise InvalidArgument(
                    f"shard://{n}?base={base} needs &dir=PATH for child files"
                )
            ext = "blk" if base == "file" else "db"
            child_uri = f"{base}://{os.path.join(directory, f'shard-{i}.{ext}')}"
        else:
            raise InvalidArgument(f"unknown shard base {base!r}")
        children.append(
            open_store(child_uri, num_blocks=num_blocks, block_size=block_size)
        )
    return ShardedBlockStore(children)


def _make_cached(rest: str, num_blocks: int, block_size: int) -> BlockStore:
    child_uri, sep, fragment = rest.rpartition("#")
    if not sep:
        child_uri, fragment = rest, ""
    options = dict(parse_qsl(fragment)) if fragment else {}
    capacity = int(options.get("capacity", DEFAULT_CAPACITY))
    if not child_uri:
        raise InvalidArgument(
            "cached:// needs a child URI, e.g. cached://mem://#capacity=64"
        )
    child = open_store(child_uri, num_blocks=num_blocks, block_size=block_size)
    return CachedBlockStore(child, capacity=capacity)


register_scheme("mem", _make_mem)
register_scheme("file", _make_file)
register_scheme("sqlite", _make_sqlite)
register_scheme("shard", _make_shard)
register_scheme("cached", _make_cached)
