"""URI-driven backend registry: ``open_store("sqlite:///tmp/fs.db")``.

Every storage backend registers a URI scheme; callers name a backend with
a string instead of constructing classes, so the CLI, servers, examples
and benchmarks all accept ``--backend <uri>`` uniformly.  Supported
grammars (see README "Storage backends" for examples):

``mem://``
    In-memory store.  Options: ``?blocks=N&bs=N``.
``file://<path>``
    One host file (``file:///abs/path`` or ``file://rel/path``).
``sqlite://<path>``
    SQLite database file (``sqlite://:memory:`` works too).
``shard://<n>``
    ``n`` in-memory children on a consistent-hash ring.  Options:
    ``?base=mem|file|sqlite&dir=PATH`` (file/sqlite children are created
    as ``PATH/shard-<i>.blk``/``.db``) and ``?fanout=N`` (how many
    children a vectored batch addresses concurrently; 1 = sequential).
``shard://<uri>;<uri>;...[#fanout=N]``
    Explicit child URIs, semicolon-separated; the fan-out knob rides in
    the fragment so child queries stay untouched.
``cached://<child-uri>[#capacity=N]``
    Write-back LRU overlay on any child URI; overlay options ride in the
    URI *fragment* so they never collide with the child's own query.
``remote://<host>:<port>``
    Client for a block store served by ``discfs store-serve`` (or
    :func:`repro.storage.net.serve_store`).  Geometry comes from the
    server.  Options: ``?timeout=SECONDS&batch=on|off`` (``batch=off``
    forces per-block RPCs — for measuring what batching saves) and
    ``?workers=N`` (a pool of ``N`` pipelined connections keeping
    several read_many/write_many windows in flight at once).
``replica://<n>``
    ``n``-way replication.  Options: ``?w=W&r=R`` (write/read quorums,
    default write-all/read-one), ``?fanout=N`` (1 = sequential fan-out;
    anything larger fans writes to all replicas in parallel and returns
    at quorum W) plus ``base=mem|file|sqlite&dir=PATH`` like
    ``shard://``.
``replica://<n>/<child-uri>``
    ``n`` copies built from a child template; ``{i}`` in the template is
    replaced with the replica index.  Replica options ride in the
    *fragment* (``#w=2&r=2&fanout=N``) since the child may use its own
    query.
``replica://<uri>;<uri>;...[#w=W&r=R&fanout=N]``
    Explicit replica URIs, semicolon-separated.
``failing://<child-uri>[#fail=1]``
    Pass-through that can be switched to reject every operation — the
    injectable outage for replica/remote failure drills.
``journal://<child-uri>[#cap=N&path=PATH]``
    Write-ahead journal in front of a durable child: every write is
    fsynced to an append-only intent log *before* it reaches the child,
    and committed-but-unapplied records replay on reopen — crash
    recovery for ``file://``/``sqlite://`` and their compositions.  The
    log lives at ``<child-path>.journal`` when derivable, else pass
    ``#path=``; ``#cap=N`` bounds the transactions held before an
    automatic checkpoint.
``lazy://<child-uri>[#retry=S]``
    Defer/retry opening the child until it is reachable; while down,
    operations raise ``StoreUnavailable``.  ``replica://`` applies this
    automatically to children that are unreachable at mount time, so a
    quorum mounts with a node down and heals it on reconnect.
``slow://<child-uri>[#ms=N]``
    Pass-through that sleeps ``N`` milliseconds before every operation —
    the injectable straggler for concurrency drills (a loaded replica,
    a slow link), the counterpart of ``failing://``'s outage.

Composition nests naturally: ``cached://shard://4#capacity=512``, or a
real cluster: ``shard://remote://h1:9001;remote://h2:9002``, or crash-
safe local durability: ``journal://sqlite:///var/lib/discfs.db``.
"""

from __future__ import annotations

import difflib
import os
import re
from typing import Callable
from urllib.parse import parse_qsl

from repro.errors import InvalidArgument, StoreUnavailable
from repro.fs.blockdev import DEFAULT_BLOCK_SIZE
from repro.storage.base import BlockStore
from repro.storage.cache import DEFAULT_CAPACITY, CachedBlockStore
from repro.storage.filestore import FileBlockStore
from repro.storage.memory import MemoryBlockStore
from repro.storage.shard import ShardedBlockStore
from repro.storage.sqlitestore import SQLiteBlockStore

DEFAULT_NUM_BLOCKS = 16384

#: scheme -> factory(rest-of-uri, num_blocks, block_size) -> BlockStore
_FACTORIES: dict[str, Callable[[str, int, int], BlockStore]] = {}


def register_scheme(
    scheme: str, factory: Callable[[str, int, int], BlockStore]
) -> None:
    """Register (or replace) a backend factory for ``scheme``."""
    _FACTORIES[scheme] = factory


def registered_schemes() -> tuple[str, ...]:
    """All URI schemes ``open_store`` currently resolves."""
    return tuple(sorted(_FACTORIES))


def split_uri(uri: str) -> tuple[str, str]:
    """Split ``scheme://rest`` (InvalidArgument if malformed)."""
    scheme, sep, rest = uri.partition("://")
    if not sep or not scheme:
        raise InvalidArgument(
            f"backend URI {uri!r} must look like '<scheme>://...'"
        )
    return scheme, rest


def _parse_options(rest: str) -> tuple[str, dict[str, str]]:
    body, sep, query = rest.partition("?")
    return body, (dict(parse_qsl(query)) if sep else {})


def _geometry(
    options: dict[str, str], num_blocks: int, block_size: int
) -> tuple[int, int]:
    """Apply ``blocks=``/``bs=`` URI overrides to the requested geometry."""
    if "blocks" in options:
        num_blocks = int(options["blocks"])
    if "bs" in options:
        block_size = int(options["bs"])
    return num_blocks, block_size


def open_store(
    uri: str,
    *,
    num_blocks: int = DEFAULT_NUM_BLOCKS,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> BlockStore:
    """Resolve a backend URI to a live :class:`BlockStore`."""
    scheme, rest = split_uri(uri)
    factory = _FACTORIES.get(scheme)
    if factory is None:
        close = difflib.get_close_matches(scheme, registered_schemes(), n=1)
        hint = f"did you mean {close[0]!r}? " if close else ""
        raise InvalidArgument(
            f"unknown storage scheme {scheme!r}; {hint}"
            f"registered: {', '.join(registered_schemes())}"
        )
    return factory(rest, num_blocks, block_size)


def open_device(
    uri: str,
    *,
    num_blocks: int = DEFAULT_NUM_BLOCKS,
    block_size: int = DEFAULT_BLOCK_SIZE,
):
    """Resolve a backend URI to a ``BlockDevice``-compatible adapter.

    This is the constructor the fs/nfs/cli layers use: existing callers
    keep the ``BlockDevice`` API while the storage stack underneath is
    chosen by URI.
    """
    from repro.storage.adapter import StoreBlockDevice

    return StoreBlockDevice(
        open_store(uri, num_blocks=num_blocks, block_size=block_size), uri=uri
    )


# ---------------------------------------------------------------------------
# Built-in scheme factories
# ---------------------------------------------------------------------------


def _make_mem(rest: str, num_blocks: int, block_size: int) -> BlockStore:
    body, options = _parse_options(rest)
    if body:
        raise InvalidArgument(f"mem:// takes no path (got {body!r})")
    num_blocks, block_size = _geometry(options, num_blocks, block_size)
    return MemoryBlockStore(num_blocks, block_size)


def _make_file(rest: str, num_blocks: int, block_size: int) -> BlockStore:
    path, options = _parse_options(rest)
    if not path:
        raise InvalidArgument("file:// needs a path, e.g. file:///tmp/fs.img")
    num_blocks, block_size = _geometry(options, num_blocks, block_size)
    return FileBlockStore(path, num_blocks, block_size)


def _make_sqlite(rest: str, num_blocks: int, block_size: int) -> BlockStore:
    path, options = _parse_options(rest)
    if not path:
        raise InvalidArgument("sqlite:// needs a path, e.g. sqlite:///tmp/fs.db")
    num_blocks, block_size = _geometry(options, num_blocks, block_size)
    return SQLiteBlockStore(path, num_blocks, block_size)


def _make_shard(rest: str, num_blocks: int, block_size: int) -> BlockStore:
    if "://" in rest:
        body, fragment_options = _split_fragment_options(rest, {"fanout"})
        fanout = (int(fragment_options["fanout"])
                  if "fanout" in fragment_options else None)
        child_uris = [u for u in body.split(";") if u]
        children = [
            open_store(u, num_blocks=num_blocks, block_size=block_size)
            for u in child_uris
        ]
        return ShardedBlockStore(children, fanout=fanout)

    body, options = _parse_options(rest)
    try:
        n = int(body)
    except ValueError:
        raise InvalidArgument(
            f"shard:// needs a shard count or child URIs (got {rest!r})"
        ) from None
    if n <= 0:
        raise InvalidArgument("shard count must be positive")
    num_blocks, block_size = _geometry(options, num_blocks, block_size)
    fanout = int(options["fanout"]) if "fanout" in options else None
    return ShardedBlockStore(
        _numbered_children("shard", n, options, num_blocks, block_size),
        fanout=fanout,
    )


def _numbered_children(
    prefix: str, n: int, options: dict[str, str],
    num_blocks: int, block_size: int,
) -> list[BlockStore]:
    """Children for the count forms of ``shard://<n>``/``replica://<n>``:
    ``?base=mem|file|sqlite`` with file/sqlite children created as
    ``<dir>/<prefix>-<i>.blk|.db``."""
    base = options.get("base", "mem")
    directory = options.get("dir", "")
    children: list[BlockStore] = []
    for i in range(n):
        if base == "mem":
            child_uri = "mem://"
        elif base in ("file", "sqlite"):
            if not directory:
                raise InvalidArgument(
                    f"{prefix}://{n}?base={base} needs &dir=PATH "
                    "for child files"
                )
            ext = "blk" if base == "file" else "db"
            child_uri = (
                f"{base}://{os.path.join(directory, f'{prefix}-{i}.{ext}')}"
            )
        else:
            raise InvalidArgument(f"unknown {prefix} base {base!r}")
        children.append(
            open_store(child_uri, num_blocks=num_blocks, block_size=block_size)
        )
    return children


def _make_cached(rest: str, num_blocks: int, block_size: int) -> BlockStore:
    child_uri, sep, fragment = rest.rpartition("#")
    if not sep:
        child_uri, fragment = rest, ""
    options = dict(parse_qsl(fragment)) if fragment else {}
    capacity = int(options.get("capacity", DEFAULT_CAPACITY))
    if not child_uri:
        raise InvalidArgument(
            "cached:// needs a child URI, e.g. cached://mem://#capacity=64"
        )
    child = open_store(child_uri, num_blocks=num_blocks, block_size=block_size)
    return CachedBlockStore(child, capacity=capacity)


def _make_remote(rest: str, num_blocks: int, block_size: int) -> BlockStore:
    from repro.storage.net import RemoteBlockStore

    body, options = _parse_options(rest)
    host, sep, port = body.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise InvalidArgument(
            f"remote:// needs host:port (got {body!r}), "
            "e.g. remote://127.0.0.1:9001"
        )
    timeout = float(options.get("timeout", 10.0))
    batch = options.get("batch", "on") not in ("off", "0", "false")
    workers = int(options.get("workers", 1))
    if workers < 1:
        raise InvalidArgument("remote:// workers must be at least 1")
    # num_blocks/block_size are ignored: the serving node owns geometry.
    return RemoteBlockStore.connect(host, int(port), timeout=timeout,
                                    batch=batch, workers=workers)


def _split_fragment_options(
    rest: str, keys: frozenset[str] | set[str]
) -> tuple[str, dict[str, str]]:
    """Peel a trailing ``#key=value&...`` fragment off a composite URI.

    Only fragments made exclusively of ``keys`` are consumed, so a child
    URI ending in its own fragment (``cached://...#capacity=8``) passes
    through intact.
    """
    body, sep, fragment = rest.rpartition("#")
    if sep:
        options = dict(parse_qsl(fragment))
        if options and set(options) <= set(keys):
            return body, options
    return rest, {}


def _open_replica_child(uri: str, num_blocks: int, block_size: int) -> BlockStore:
    """Open one replica child; a child that is unreachable at mount time
    (a dead ``remote://`` node) becomes a lazy wrapper instead of failing
    the whole mount — the quorum covers for it until it heals."""
    from repro.storage.lazy import LazyBlockStore

    try:
        return open_store(uri, num_blocks=num_blocks, block_size=block_size)
    except StoreUnavailable:
        return LazyBlockStore(uri, num_blocks=num_blocks,
                              block_size=block_size)


def _make_replica(rest: str, num_blocks: int, block_size: int) -> BlockStore:
    from repro.storage.replica import ReplicatedBlockStore

    body, options = _split_fragment_options(rest, {"w", "r", "fanout"})
    children: list[BlockStore]
    template_match = re.match(r"^(\d+)/(.+)$", body)
    if template_match and "://" in template_match.group(2):
        # replica://<n>/<child-template>, {i} = replica index
        n = int(template_match.group(1))
        if n <= 0:
            raise InvalidArgument("replica count must be positive")
        template = template_match.group(2)
        children = [
            _open_replica_child(template.replace("{i}", str(i)),
                                num_blocks, block_size)
            for i in range(n)
        ]
    elif "://" in body:
        # replica://<uri>;<uri>;...
        children = [
            _open_replica_child(u, num_blocks, block_size)
            for u in body.split(";") if u
        ]
    else:
        # replica://<n>?w=&r=&base=&dir= — count form, options in query
        count, qopts = _parse_options(body)
        options = {**qopts, **options}
        try:
            n = int(count)
        except ValueError:
            raise InvalidArgument(
                f"replica:// needs a count or child URIs (got {rest!r})"
            ) from None
        if n <= 0:
            raise InvalidArgument("replica count must be positive")
        num_blocks, block_size = _geometry(options, num_blocks, block_size)
        children = _numbered_children("replica", n, options, num_blocks,
                                      block_size)
    write_quorum = int(options["w"]) if "w" in options else None
    read_quorum = int(options.get("r", 1))
    fanout = int(options["fanout"]) if "fanout" in options else None
    return ReplicatedBlockStore(children, write_quorum=write_quorum,
                                read_quorum=read_quorum, fanout=fanout)


def _make_failing(rest: str, num_blocks: int, block_size: int) -> BlockStore:
    from repro.storage.replica import FailingBlockStore

    child_uri, options = _split_fragment_options(rest, {"fail"})
    if not child_uri:
        raise InvalidArgument(
            "failing:// needs a child URI, e.g. failing://mem://"
        )
    child = open_store(child_uri, num_blocks=num_blocks,
                       block_size=block_size)
    return FailingBlockStore(child, failing=options.get("fail") == "1")


def _journal_path_for(child_uri: str) -> str:
    """Default journal location next to a path-addressed child."""
    scheme, rest = split_uri(child_uri)
    body = rest.partition("?")[0]
    if scheme in ("file", "sqlite") and body and body != ":memory:":
        return body + ".journal"
    raise InvalidArgument(
        f"journal:// cannot derive a log path for a {scheme}:// child; "
        "pass an explicit #path=/path/to.journal"
    )


def _make_journal(rest: str, num_blocks: int, block_size: int) -> BlockStore:
    from repro.storage.journal import DEFAULT_JOURNAL_CAP, JournalBlockStore

    child_uri, options = _split_fragment_options(rest, {"cap", "path"})
    if not child_uri:
        raise InvalidArgument(
            "journal:// needs a child URI, "
            "e.g. journal://file:///var/lib/discfs.img"
        )
    path = options.get("path") or _journal_path_for(child_uri)
    cap = int(options.get("cap", DEFAULT_JOURNAL_CAP))
    child = open_store(child_uri, num_blocks=num_blocks,
                       block_size=block_size)
    try:
        return JournalBlockStore(child, path, cap=cap)
    except Exception:
        child.close()
        raise


def _make_slow(rest: str, num_blocks: int, block_size: int) -> BlockStore:
    from repro.storage.replica import DelayedBlockStore

    child_uri, options = _split_fragment_options(rest, {"ms"})
    if not child_uri:
        raise InvalidArgument(
            "slow:// needs a child URI, e.g. slow://mem://#ms=5"
        )
    child = open_store(child_uri, num_blocks=num_blocks,
                       block_size=block_size)
    return DelayedBlockStore(child, delay_ms=float(options.get("ms", 0.0)))


def _make_lazy(rest: str, num_blocks: int, block_size: int) -> BlockStore:
    from repro.storage.lazy import DEFAULT_RETRY_INTERVAL, LazyBlockStore

    child_uri, options = _split_fragment_options(rest, {"retry"})
    if not child_uri:
        raise InvalidArgument(
            "lazy:// needs a child URI, e.g. lazy://remote://127.0.0.1:9001"
        )
    retry = float(options.get("retry", DEFAULT_RETRY_INTERVAL))
    store = LazyBlockStore(child_uri, num_blocks=num_blocks,
                           block_size=block_size, retry_interval=retry)
    store.try_connect()  # eager best effort; a down child is tolerated
    return store


register_scheme("mem", _make_mem)
register_scheme("file", _make_file)
register_scheme("sqlite", _make_sqlite)
register_scheme("shard", _make_shard)
register_scheme("cached", _make_cached)
register_scheme("remote", _make_remote)
register_scheme("replica", _make_replica)
register_scheme("failing", _make_failing)
register_scheme("journal", _make_journal)
register_scheme("lazy", _make_lazy)
register_scheme("slow", _make_slow)
