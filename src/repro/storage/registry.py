"""Backend resolution: ``open_store("sqlite:///tmp/fs.db")`` and friends.

The registry is now a thin two-stage pipeline over the typed spec layer
(:mod:`repro.storage.spec`):

1. :func:`~repro.storage.spec.parse_spec` turns a backend URI into its
   :class:`~repro.storage.spec.StoreSpec` (strict option validation,
   typo suggestions for schemes *and* options);
2. :func:`build` turns a spec into a live
   :class:`~repro.storage.base.BlockStore` — one builder per spec type,
   each a few lines, because all string plumbing already happened.

``open_store``/``open_device`` accept either form (URI string or spec
object), so callers can keep their ``--backend <uri>`` flags while
programmatic topologies use the builder API::

    from repro.storage.spec import shard, remote
    store = open_store(shard(remote("h1:9001"), remote("h2:9001"),
                             fanout=4))

Supported URI grammars (see README "Storage backends" for examples):

``mem://``
    In-memory store.  Options: ``?blocks=N&bs=N``.
``file://<path>``
    One host file (``file:///abs/path`` or ``file://rel/path``).
``sqlite://<path>``
    SQLite database file (``sqlite://:memory:`` works too).
``shard://<n>``
    ``n`` in-memory children on a consistent-hash ring.  Options:
    ``?base=mem|file|sqlite&dir=PATH`` (file/sqlite children are created
    as ``PATH/shard-<i>.blk``/``.db``) and ``?fanout=N`` (how many
    children a vectored batch addresses concurrently; 1 = sequential).
``shard://<uri>;<uri>;...[#fanout=N]``
    Explicit child URIs, semicolon-separated; the fan-out knob rides in
    the fragment so child queries stay untouched.
``cached://<child-uri>[#capacity=N]``
    Write-back LRU overlay on any child URI; overlay options ride in the
    URI *fragment* so they never collide with the child's own query.
``remote://<host>:<port>``
    Client for a block store served by ``discfs store-serve`` (or
    :func:`repro.storage.net.serve_store`).  Geometry comes from the
    server.  Options: ``?timeout=SECONDS&batch=on|off`` (``batch=off``
    forces per-block RPCs — for measuring what batching saves) and
    ``?workers=N`` (a pool of ``N`` pipelined connections keeping
    several read_many/write_many windows in flight at once).  Against a
    credential-gated server, ``#cred=FILE&key=FILE&tenant=NAME&rights=R``
    opens an authenticated session (KeyNote credentials + the private
    key that signs the session challenge).
``replica://<n>``
    ``n``-way replication.  Options: ``?w=W&r=R`` (write/read quorums,
    default write-all/read-one), ``?fanout=N`` (1 = sequential fan-out;
    anything larger fans writes to all replicas in parallel and returns
    at quorum W), ``?hedge_ms=N`` (dispatch one extra racing read after
    ``N`` ms — tail capping past a slow-but-alive child), ``?stamps=P``
    (persist version stamps to sidecar ``P`` so read-repair survives a
    restart) plus ``base=mem|file|sqlite&dir=PATH`` like ``shard://``.
``replica://<n>/<child-uri>``
    ``n`` copies built from a child template; ``{i}`` in the template is
    replaced with the replica index.  Replica options ride in the
    *fragment* (``#w=2&r=2&fanout=N&hedge_ms=N&stamps=P``) since the
    child may use its own query.
``replica://<uri>;<uri>;...[#w=W&r=R&...]``
    Explicit replica URIs, semicolon-separated.
``failing://<child-uri>[#fail=1]``
    Pass-through that can be switched to reject every operation — the
    injectable outage for replica/remote failure drills.
``journal://<child-uri>[#cap=N&path=PATH]``
    Write-ahead journal in front of a durable child: every write is
    fsynced to an append-only intent log *before* it reaches the child,
    and committed-but-unapplied records replay on reopen — crash
    recovery for ``file://``/``sqlite://`` and their compositions.  The
    log lives at ``<child-path>.journal`` when derivable, else pass
    ``#path=``; ``#cap=N`` bounds the transactions held before an
    automatic checkpoint.
``lazy://<child-uri>[#retry=S]``
    Defer/retry opening the child until it is reachable; while down,
    operations raise ``StoreUnavailable``.  ``replica://`` applies this
    automatically to children that are unreachable at mount time, so a
    quorum mounts with a node down and heals it on reconnect.
``slow://<child-uri>[#ms=N]``
    Pass-through that sleeps ``N`` milliseconds before every operation —
    the injectable straggler for concurrency drills (a loaded replica,
    a slow link), the counterpart of ``failing://``'s outage.
``metered://<child-uri>[#slow_ms=F&ring=N]``
    Latency-instrumentation overlay: every op is timed into the
    process-wide metrics registry (p50/p95/p99 surface through
    ``snapshot()`` extras and ``store-serve --metrics-port``), traces
    originate here when tracing is on, and ops slower than ``slow_ms``
    are counted/flagged.  ``ring`` resizes the trace ring buffer.
``tenant://<child-uri>#name=N[&offset=&blocks=&quota=&bytes=&rate=&burst=]``
    A named private window onto a region of the child store — each
    tenant sees a zero-based namespace and cannot address blocks outside
    its region — with optional distinct-block quota, cumulative byte
    budget, and token-bucket rate limit (``rate`` ops/s, burst
    ``burst``).  ``store-serve --policy … --tenant-quota`` builds these
    views server-side, one per declared tenant, over one shared ring.

Composition nests naturally: ``cached://shard://4#capacity=512``, or a
real cluster: ``shard://remote://h1:9001;remote://h2:9002``, or crash-
safe local durability: ``journal://sqlite:///var/lib/discfs.db``.

Unknown ``?``/``#`` options now *raise* (with a did-you-mean hint that
searches every scheme's option names) instead of being silently
ignored — a misspelled quorum is a configuration bug, not a default.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import InvalidArgument, StoreUnavailable
from repro.fs.blockdev import DEFAULT_BLOCK_SIZE
from repro.storage import spec as specs
from repro.storage.base import BlockStore
from repro.storage.cache import DEFAULT_CAPACITY, CachedBlockStore
from repro.storage.filestore import FileBlockStore
from repro.storage.memory import MemoryBlockStore
from repro.storage.shard import ShardedBlockStore
from repro.storage.spec import (
    CachedSpec,
    FailingSpec,
    FileSpec,
    JournalSpec,
    LazySpec,
    MemSpec,
    MeteredSpec,
    OpaqueSpec,
    RemoteSpec,
    ReplicaSpec,
    ShardSpec,
    SlowSpec,
    SpecLike,
    SqliteSpec,
    StoreSpec,
    TenantSpec,
    parse_spec,
    split_uri,
)
from repro.storage.sqlitestore import SQLiteBlockStore

DEFAULT_NUM_BLOCKS = 16384

#: Legacy extension hook: scheme -> factory(rest, num_blocks, block_size).
#: Third-party schemes registered this way parse to ``OpaqueSpec`` and
#: build through their factory, so ``register_scheme`` keeps working.
_FACTORIES: dict[str, Callable[[str, int, int], BlockStore]] = {}

#: spec type -> builder(spec, num_blocks, block_size) -> BlockStore.
_BUILDERS: dict[type[StoreSpec], Callable[[StoreSpec, int, int], BlockStore]] = {}


def register_scheme(
    scheme: str, factory: Callable[[str, int, int], BlockStore]
) -> None:
    """Register (or replace) a legacy backend factory for ``scheme``.

    New code should define a :class:`~repro.storage.spec.StoreSpec`
    subclass and a builder instead; this hook remains for third-party
    backends that only need string-in/store-out."""
    _FACTORIES[scheme] = factory


def registered_schemes() -> tuple[str, ...]:
    """All URI schemes ``open_store`` currently resolves."""
    return tuple(sorted(set(specs.known_schemes()) | set(_FACTORIES)))


specs._install_legacy_schemes(lambda: tuple(_FACTORIES))


def _geometry(
    spec: MemSpec | FileSpec | SqliteSpec, num_blocks: int, block_size: int
) -> tuple[int, int]:
    """Apply a leaf spec's ``blocks=``/``bs=`` overrides."""
    if spec.blocks is not None:
        num_blocks = spec.blocks
    if spec.bs is not None:
        block_size = spec.bs
    return num_blocks, block_size


def build(
    spec: SpecLike,
    *,
    num_blocks: int = DEFAULT_NUM_BLOCKS,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> BlockStore:
    """Build a live :class:`BlockStore` from a spec (or URI string).

    ``num_blocks``/``block_size`` are the mount-time geometry defaults;
    a leaf spec's own ``blocks``/``bs`` win where set.
    """
    spec = parse_spec(spec)
    if isinstance(spec, OpaqueSpec):
        factory = _FACTORIES.get(spec.scheme_name)
        if factory is None:
            raise InvalidArgument(
                f"scheme {spec.scheme_name!r} lost its registered factory"
            )
        return factory(spec.rest, num_blocks, block_size)
    builder = _BUILDERS.get(type(spec))
    if builder is None:
        raise InvalidArgument(
            f"no builder for spec type {type(spec).__name__}"
        )
    return builder(spec, num_blocks, block_size)


def open_store(
    uri: SpecLike,
    *,
    num_blocks: int = DEFAULT_NUM_BLOCKS,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> BlockStore:
    """Resolve a backend URI (or spec) to a live :class:`BlockStore`."""
    return build(uri, num_blocks=num_blocks, block_size=block_size)


def open_device(
    uri: SpecLike,
    *,
    num_blocks: int = DEFAULT_NUM_BLOCKS,
    block_size: int = DEFAULT_BLOCK_SIZE,
):
    """Resolve a backend URI to a ``BlockDevice``-compatible adapter.

    This is the constructor the fs/nfs/cli layers use: existing callers
    keep the ``BlockDevice`` API while the storage stack underneath is
    chosen by URI.
    """
    from repro.storage.adapter import StoreBlockDevice

    spec = parse_spec(uri)
    try:
        canonical: str | None = spec.to_uri()
    except specs.SpecError:
        canonical = None  # programmatic-only topology: no URI form
    store = build(spec, num_blocks=num_blocks, block_size=block_size)
    try:
        return StoreBlockDevice(store, uri=canonical)
    except Exception:
        store.close()
        raise


# ---------------------------------------------------------------------------
# Built-in spec builders
# ---------------------------------------------------------------------------


def _build_mem(spec: MemSpec, num_blocks: int, block_size: int) -> BlockStore:
    num_blocks, block_size = _geometry(spec, num_blocks, block_size)
    return MemoryBlockStore(num_blocks, block_size)


def _build_file(spec: FileSpec, num_blocks: int, block_size: int) -> BlockStore:
    num_blocks, block_size = _geometry(spec, num_blocks, block_size)
    return FileBlockStore(spec.path, num_blocks, block_size)


def _build_sqlite(
    spec: SqliteSpec, num_blocks: int, block_size: int
) -> BlockStore:
    num_blocks, block_size = _geometry(spec, num_blocks, block_size)
    return SQLiteBlockStore(spec.path, num_blocks, block_size)


def close_quietly(stores: list[BlockStore]) -> None:
    """Best-effort close of partially built stacks on the error path —
    a child that fails to close must not mask the original error."""
    for store in stores:
        try:
            store.close()
        except Exception:
            pass


def _build_children(
    children: list[StoreSpec], num_blocks: int, block_size: int,
    open_child: Callable[[StoreSpec, int, int], BlockStore] | None = None,
) -> list[BlockStore]:
    """Build every child spec, closing the already-built on failure.
    ``open_child`` lets composites customize the per-child open (the
    replica builder wraps unreachable children lazily)."""
    opener = open_child or (
        lambda child, nb, bs: build(child, num_blocks=nb, block_size=bs)
    )
    built: list[BlockStore] = []
    try:
        for child in children:
            built.append(opener(child, num_blocks, block_size))
    except Exception:
        close_quietly(built)
        raise
    return built


def _build_shard(
    spec: ShardSpec, num_blocks: int, block_size: int
) -> BlockStore:
    children = _build_children(spec.shards, num_blocks, block_size)
    try:
        return ShardedBlockStore(children, fanout=spec.fanout)
    except Exception:
        close_quietly(children)
        raise


def _build_cached(
    spec: CachedSpec, num_blocks: int, block_size: int
) -> BlockStore:
    child = build(spec.child, num_blocks=num_blocks, block_size=block_size)
    capacity = spec.capacity if spec.capacity is not None else DEFAULT_CAPACITY
    try:
        return CachedBlockStore(child, capacity=capacity)
    except Exception:
        child.close()
        raise


def _build_remote(
    spec: RemoteSpec, num_blocks: int, block_size: int
) -> BlockStore:
    from repro.crypto.keycodec import decode_key
    from repro.storage.net import RemoteBlockStore

    key = None
    credentials: list[str] | None = None
    if spec.key is not None:
        try:
            with open(spec.key, encoding="utf-8") as fh:
                key = decode_key(fh.read().strip())
        except OSError as exc:
            raise InvalidArgument(
                f"remote:// cannot read key file {spec.key!r}: {exc}"
            ) from exc
        if not hasattr(key, "sign"):
            raise InvalidArgument(
                f"remote:// key file {spec.key!r} holds a public key; "
                "the session challenge needs the private half"
            )
    if spec.cred is not None:
        try:
            with open(spec.cred, encoding="utf-8") as fh:
                credentials = [fh.read()]
        except OSError as exc:
            raise InvalidArgument(
                f"remote:// cannot read credential file {spec.cred!r}: {exc}"
            ) from exc
    # num_blocks/block_size are ignored: the serving node owns geometry.
    return RemoteBlockStore.connect(
        spec.host, spec.port,
        timeout=spec.timeout if spec.timeout is not None else 10.0,
        batch=spec.batch if spec.batch is not None else True,
        workers=spec.workers if spec.workers is not None else 1,
        key=key, credentials=credentials,
        tenant=spec.tenant or "",
        rights=spec.rights or "rw",
    )


def _lazy_target(child: StoreSpec) -> SpecLike:
    """What a LazyBlockStore should reopen later: the canonical URI
    where one exists, else the spec object itself (programmatic-only
    topologies have no URI form, and `open_store` accepts specs)."""
    try:
        return child.to_uri()
    except specs.SpecError:
        return child


def _open_replica_child(
    child: StoreSpec, num_blocks: int, block_size: int
) -> BlockStore:
    """Open one replica child; a child that is unreachable at mount time
    (a dead ``remote://`` node) becomes a lazy wrapper instead of failing
    the whole mount — the quorum covers for it until it heals."""
    from repro.storage.lazy import LazyBlockStore

    try:
        return build(child, num_blocks=num_blocks, block_size=block_size)
    except StoreUnavailable:
        return LazyBlockStore(_lazy_target(child), num_blocks=num_blocks,
                              block_size=block_size)


def _build_replica(
    spec: ReplicaSpec, num_blocks: int, block_size: int
) -> BlockStore:
    from repro.storage.replica import ReplicatedBlockStore

    children = _build_children(spec.replicas, num_blocks, block_size,
                               open_child=_open_replica_child)
    try:
        return ReplicatedBlockStore(
            children,
            write_quorum=spec.w,
            read_quorum=spec.r if spec.r is not None else 1,
            fanout=spec.fanout,
            hedge_ms=spec.hedge_ms,
            stamps_path=spec.stamps,
        )
    except Exception:
        close_quietly(children)
        raise


def _build_failing(
    spec: FailingSpec, num_blocks: int, block_size: int
) -> BlockStore:
    from repro.storage.replica import FailingBlockStore

    child = build(spec.child, num_blocks=num_blocks, block_size=block_size)
    try:
        return FailingBlockStore(child, failing=bool(spec.fail))
    except Exception:
        child.close()
        raise


def _journal_path_for(child: StoreSpec) -> str:
    """Default journal location next to a path-addressed child."""
    if isinstance(child, (FileSpec, SqliteSpec)) \
            and child.path and child.path != ":memory:":
        return child.path + ".journal"
    raise InvalidArgument(
        f"journal:// cannot derive a log path for a {child.scheme}:// "
        "child; pass an explicit #path=/path/to.journal"
    )


def _build_journal(
    spec: JournalSpec, num_blocks: int, block_size: int
) -> BlockStore:
    from repro.storage.journal import DEFAULT_JOURNAL_CAP, JournalBlockStore

    path = spec.path or _journal_path_for(spec.child)
    cap = spec.cap if spec.cap is not None else DEFAULT_JOURNAL_CAP
    child = build(spec.child, num_blocks=num_blocks, block_size=block_size)
    try:
        return JournalBlockStore(child, path, cap=cap)
    except Exception:
        child.close()
        raise


def _build_lazy(spec: LazySpec, num_blocks: int, block_size: int) -> BlockStore:
    from repro.storage.lazy import DEFAULT_RETRY_INTERVAL, LazyBlockStore

    retry = spec.retry if spec.retry is not None else DEFAULT_RETRY_INTERVAL
    store = LazyBlockStore(_lazy_target(spec.child), num_blocks=num_blocks,
                           block_size=block_size, retry_interval=retry)
    store.try_connect()  # eager best effort; a down child is tolerated
    return store


def _build_slow(spec: SlowSpec, num_blocks: int, block_size: int) -> BlockStore:
    from repro.storage.replica import DelayedBlockStore

    child = build(spec.child, num_blocks=num_blocks, block_size=block_size)
    try:
        return DelayedBlockStore(child, delay_ms=spec.ms if spec.ms is not None
                                 else 0.0)
    except Exception:
        child.close()
        raise


def _build_metered(
    spec: MeteredSpec, num_blocks: int, block_size: int
) -> BlockStore:
    from repro.storage.metered import InstrumentedBlockStore

    child = build(spec.child, num_blocks=num_blocks, block_size=block_size)
    try:
        return InstrumentedBlockStore(child, slow_ms=spec.slow_ms,
                                      ring=spec.ring)
    except Exception:
        child.close()
        raise


def _build_tenant(
    spec: TenantSpec, num_blocks: int, block_size: int
) -> BlockStore:
    from repro.storage.tenant import TenantBlockStore

    child = build(spec.child, num_blocks=num_blocks, block_size=block_size)
    try:
        return TenantBlockStore(
            child,
            name=spec.name or "",
            offset=spec.offset if spec.offset is not None else 0,
            num_blocks=spec.blocks,
            quota_blocks=spec.quota,
            quota_bytes=spec.bytes,
            rate_ops=spec.rate,
            burst=spec.burst,
            owns_child=True,
        )
    except Exception:
        child.close()
        raise


_BUILDERS.update({
    MemSpec: _build_mem,
    FileSpec: _build_file,
    SqliteSpec: _build_sqlite,
    ShardSpec: _build_shard,
    CachedSpec: _build_cached,
    RemoteSpec: _build_remote,
    ReplicaSpec: _build_replica,
    FailingSpec: _build_failing,
    JournalSpec: _build_journal,
    LazySpec: _build_lazy,
    SlowSpec: _build_slow,
    TenantSpec: _build_tenant,
    MeteredSpec: _build_metered,
})

__all__ = [
    "DEFAULT_NUM_BLOCKS",
    "build",
    "open_device",
    "open_store",
    "register_scheme",
    "registered_schemes",
    "split_uri",
]
