"""Sharded block store (``shard://``): consistent hashing over child stores.

Block numbers are placed on a consistent-hash ring of virtual nodes
(:data:`VNODES_PER_SHARD` per child), so:

* placement is **deterministic** — the same block always lands on the
  same shard across processes and runs (no randomness, no dict-order
  dependence), which persistence and the conformance suite rely on;
* adding a shard moves only ~1/(n+1) of the keyspace, the property that
  makes ``shard://`` the substrate later resharding/replication PRs
  build on (ROADMAP "Open items").

Vectored ``read_many``/``write_many`` batches are grouped per owning
child and — when ``fanout`` allows — dispatched to the children
**concurrently**: with ``remote://`` children on independent nodes the
round trips overlap, so a batch costs roughly the slowest child's share
instead of the sum of every child's (``fanout=1`` restores the
sequential loop; the fanout ablation measures the difference).  Results
are position-aligned either way, so concurrency never changes answers.

Each child keeps its own :class:`~repro.fs.blockdev.BlockDeviceStats`, so
benchmarks can report per-shard traffic and verify balance.
"""

from __future__ import annotations

import bisect
import contextvars
import hashlib
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.errors import InvalidArgument
from repro.storage.base import BlockStore, Capabilities

#: Virtual nodes per shard; 64 keeps the ring balanced within a few
#: percent while the ring stays tiny (n*64 entries).
VNODES_PER_SHARD = 64

#: Ceiling for the automatic fan-out width (``fanout=None``): wide
#: enough to cover every ring the benchmarks run, without an unbounded
#: thread pool when someone mounts a 64-way ring.
DEFAULT_MAX_FANOUT = 8


def _ring_hash(key: str) -> int:
    return int.from_bytes(hashlib.sha1(key.encode("ascii")).digest()[:8], "big")


def build_ring(n: int) -> tuple[list[int], list[int]]:
    """The consistent-hash ring for ``n`` children: sorted vnode points
    and the owning child index per point.  A module-level function so
    the control plane can compute the ring of a *prospective* topology
    (``reshard`` diffs the current ring against the target's) without
    mounting it."""
    ring: list[int] = []
    ring_shard: list[int] = []
    points = sorted(
        (_ring_hash(f"shard-{idx}:vnode-{v}"), idx)
        for idx in range(n)
        for v in range(VNODES_PER_SHARD)
    )
    for point, idx in points:
        ring.append(point)
        ring_shard.append(idx)
    return ring, ring_shard


def ring_owner(ring: list[int], ring_shard: list[int], block_no: int) -> int:
    """Index of the child owning ``block_no`` on this ring."""
    point = _ring_hash(f"block-{block_no}")
    i = bisect.bisect_right(ring, point)
    if i == len(ring):
        i = 0
    return ring_shard[i]


class ShardedBlockStore(BlockStore):
    """Scatter blocks over ``children`` via a consistent-hash ring.

    Children must share one block size.  The sharded store presents the
    *union* capacity semantics of its children: every child is addressed
    with the global block number (children are sparse, so a child's
    nominal capacity just needs to cover the global range).

    ``fanout`` bounds how many children a vectored operation addresses
    concurrently: ``None`` picks ``min(len(children), 8)``, ``1`` is
    strictly sequential.  A child that fails mid-fan-out does not stop
    the others — every child's portion runs to completion, then the
    first error is raised, so a slow or dead node never leaves sibling
    batches half-issued.
    """

    scheme = "shard"

    def __init__(self, children: list[BlockStore],
                 fanout: int | None = None):
        if not children:
            raise InvalidArgument("shard:// needs at least one child store")
        block_size = children[0].block_size
        if any(c.block_size != block_size for c in children):
            raise InvalidArgument("shard children must share one block size")
        num_blocks = min(c.num_blocks for c in children)
        super().__init__(num_blocks, block_size)
        if fanout is None:
            fanout = min(len(children), DEFAULT_MAX_FANOUT)
        if fanout < 1:
            raise InvalidArgument("shard fanout must be at least 1")
        self.fanout = min(int(fanout), len(children))
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        # children + ring live in ONE attribute so a topology swap
        # (reshard) is a single atomic assignment: a concurrent reader
        # never sees the new children with the old ring or vice versa.
        ring, ring_shard = build_ring(len(children))
        self._topology: tuple[list[BlockStore], list[int], list[int]] = (
            list(children), ring, ring_shard,
        )

    @property
    def children(self) -> list[BlockStore]:
        return self._topology[0]

    # -- placement ---------------------------------------------------------

    def shard_for(self, block_no: int) -> int:
        """Index of the child that owns ``block_no`` (deterministic)."""
        _children, ring, ring_shard = self._topology
        return ring_owner(ring, ring_shard, block_no)

    def swap_children(self, children: list[BlockStore],
                      fanout: int | None = None) -> None:
        """Atomically replace the child list (and its ring).

        The control plane's ``reshard`` calls this *after* migrating
        every block whose owner changes, so the swap is the commit
        point: one attribute assignment flips placement for all
        subsequent operations.  The new children must cover the store's
        existing geometry.
        """
        if not children:
            raise InvalidArgument("shard:// needs at least one child store")
        if any(c.block_size != self.block_size for c in children):
            raise InvalidArgument("shard children must share one block size")
        if min(c.num_blocks for c in children) < self.num_blocks:
            raise InvalidArgument(
                "swapped-in children must cover the store's "
                f"{self.num_blocks} blocks"
            )
        ring, ring_shard = build_ring(len(children))
        if fanout is not None:
            if fanout < 1:
                raise InvalidArgument("shard fanout must be at least 1")
            new_fanout = min(int(fanout), len(children))
        else:
            new_fanout = min(self.fanout, len(children))
        if new_fanout != self.fanout:
            # The lazily created pool was sized for the old fanout;
            # retire it so the next fan-out builds one at the new width
            # (in-flight tasks on the old pool run to completion).
            self.fanout = new_fanout
            with self._executor_lock:
                executor, self._executor = self._executor, None
            if executor is not None:
                executor.shutdown(wait=False)
        self._topology = (list(children), ring, ring_shard)

    # -- fan-out machinery -------------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.fanout,
                    thread_name_prefix="shard-fanout",
                )
            return self._executor

    def _fan_out(self, tasks: list) -> list:
        """Run ``tasks`` (thunks) concurrently; every task is attempted
        even when an earlier one fails, then the first error is raised.
        Returns the task results in order."""
        if self.fanout == 1 or len(tasks) == 1:
            return [task() for task in tasks]
        # Copy the caller's contextvars so an active trace span parents
        # the per-shard spans run on the long-lived pool threads.
        futures = [
            self._pool().submit(contextvars.copy_context().run, task)
            for task in tasks
        ]
        results = []
        first_exc: BaseException | None = None
        for fut in futures:
            try:
                results.append(fut.result())
            except BaseException as exc:
                if first_exc is None:
                    first_exc = exc
                results.append(None)
        if first_exc is not None:
            raise first_exc
        return results

    # -- BlockStore interface ----------------------------------------------

    # Every data-path operation snapshots ``self._topology`` exactly
    # once and uses children + ring from the SAME snapshot: reading them
    # through separate attribute accesses could pair the new ring with
    # the old child list across a concurrent swap_children (the reshard
    # commit point), which is precisely what the single-assignment swap
    # exists to prevent.

    def _get(self, block_no: int) -> bytes | None:
        children, ring, ring_shard = self._topology
        child = children[ring_owner(ring, ring_shard, block_no)]
        return child.read(block_no)

    def _put(self, block_no: int, data: bytes) -> None:
        children, ring, ring_shard = self._topology
        children[ring_owner(ring, ring_shard, block_no)].write(block_no, data)

    def _contains(self, block_no: int) -> bool:
        children, ring, ring_shard = self._topology
        child = children[ring_owner(ring, ring_shard, block_no)]
        return child._contains(block_no)

    @staticmethod
    def _group_by_shard(topology, block_nos: list[int]) -> dict[int, list[int]]:
        """Positions into ``block_nos`` grouped by owning child index,
        placed on the given topology snapshot's ring."""
        _children, ring, ring_shard = topology
        groups: dict[int, list[int]] = {}
        for pos, block_no in enumerate(block_nos):
            groups.setdefault(
                ring_owner(ring, ring_shard, block_no), []
            ).append(pos)
        return groups

    def _get_many(self, block_nos: list[int]) -> list[bytes | None]:
        # One read_many per owning child instead of one read per block —
        # and, past fanout=1, all children at once: with remote:// nodes
        # that is one *overlapped* RPC round trip per shard.
        topology = self._topology
        children = topology[0]
        out: list[bytes | None] = [None] * len(block_nos)
        groups = list(self._group_by_shard(topology, block_nos).items())

        def fetch(child_idx: int, positions: list[int]):
            datas = children[child_idx].read_many(
                [block_nos[pos] for pos in positions]
            )
            for pos, data in zip(positions, datas):
                out[pos] = data

        self._fan_out([
            (lambda idx=idx, positions=positions: fetch(idx, positions))
            for idx, positions in groups
        ])
        return out

    def _put_many(self, items: list[tuple[int, bytes]]) -> None:
        topology = self._topology
        children = topology[0]
        groups = list(
            self._group_by_shard(
                topology, [block_no for block_no, _ in items]
            ).items()
        )
        self._fan_out([
            (lambda idx=idx, positions=positions:
                children[idx].write_many([items[pos] for pos in positions]))
            for idx, positions in groups
        ])

    def flush(self) -> None:
        # Attempt every child even when one raises — a failing shard
        # must not leave its siblings unflushed — then surface the
        # first error.
        first_exc: BaseException | None = None
        for child in self.children:
            try:
                child.flush()
            except BaseException as exc:
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc

    def close(self) -> None:
        first_exc: BaseException | None = None
        for child in self.children:
            try:
                child.close()
            except BaseException as exc:
                if first_exc is None:
                    first_exc = exc
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        if first_exc is not None:
            raise first_exc

    def used_blocks(self) -> int:
        return sum(c.used_blocks() for c in self.children)

    def used_block_numbers(self) -> list[int]:
        numbers: set[int] = set()
        for child in self.children:
            numbers.update(child.used_block_numbers())
        return sorted(numbers)

    def leaf_stores(self) -> list[BlockStore]:
        return [leaf for c in self.children for leaf in c.leaf_stores()]

    def child_stores(self) -> list[BlockStore]:
        return list(self.children)

    def capabilities(self) -> Capabilities:
        child_caps = [c.capabilities() for c in self.children]
        return Capabilities(
            thread_safe=False,  # fan-out bookkeeping assumes one caller
            durable=all(c.durable for c in child_caps),
            networked=any(c.networked for c in child_caps),
            composite=True,
        )

    def shard_distribution(self) -> list[int]:
        """Blocks currently held per shard (for balance reporting)."""
        return [c.used_blocks() for c in self.children]

    def describe(self) -> str:
        kinds = ",".join(c.scheme for c in self.children)
        return (
            f"shard://{len(self.children)} [{kinds}] fanout={self.fanout}  "
            f"{self.num_blocks}x{self.block_size}B"
        )
