"""Sharded block store (``shard://``): consistent hashing over child stores.

Block numbers are placed on a consistent-hash ring of virtual nodes
(:data:`VNODES_PER_SHARD` per child), so:

* placement is **deterministic** — the same block always lands on the
  same shard across processes and runs (no randomness, no dict-order
  dependence), which persistence and the conformance suite rely on;
* adding a shard moves only ~1/(n+1) of the keyspace, the property that
  makes ``shard://`` the substrate later resharding/replication PRs
  build on (ROADMAP "Open items").

Each child keeps its own :class:`~repro.fs.blockdev.BlockDeviceStats`, so
benchmarks can report per-shard traffic and verify balance.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import InvalidArgument
from repro.fs.blockdev import DEFAULT_BLOCK_SIZE
from repro.storage.base import BlockStore

#: Virtual nodes per shard; 64 keeps the ring balanced within a few
#: percent while the ring stays tiny (n*64 entries).
VNODES_PER_SHARD = 64


def _ring_hash(key: str) -> int:
    return int.from_bytes(hashlib.sha1(key.encode("ascii")).digest()[:8], "big")


class ShardedBlockStore(BlockStore):
    """Scatter blocks over ``children`` via a consistent-hash ring.

    Children must share one block size.  The sharded store presents the
    *union* capacity semantics of its children: every child is addressed
    with the global block number (children are sparse, so a child's
    nominal capacity just needs to cover the global range).
    """

    scheme = "shard"

    def __init__(self, children: list[BlockStore]):
        if not children:
            raise InvalidArgument("shard:// needs at least one child store")
        block_size = children[0].block_size
        if any(c.block_size != block_size for c in children):
            raise InvalidArgument("shard children must share one block size")
        num_blocks = min(c.num_blocks for c in children)
        super().__init__(num_blocks, block_size)
        self.children = list(children)
        self._ring: list[int] = []
        self._ring_shard: list[int] = []
        points = sorted(
            (_ring_hash(f"shard-{idx}:vnode-{v}"), idx)
            for idx in range(len(children))
            for v in range(VNODES_PER_SHARD)
        )
        for point, idx in points:
            self._ring.append(point)
            self._ring_shard.append(idx)

    # -- placement ---------------------------------------------------------

    def shard_for(self, block_no: int) -> int:
        """Index of the child that owns ``block_no`` (deterministic)."""
        point = _ring_hash(f"block-{block_no}")
        i = bisect.bisect_right(self._ring, point)
        if i == len(self._ring):
            i = 0
        return self._ring_shard[i]

    # -- BlockStore interface ----------------------------------------------

    def _get(self, block_no: int) -> bytes | None:
        child = self.children[self.shard_for(block_no)]
        data = child.read(block_no)
        return data

    def _put(self, block_no: int, data: bytes) -> None:
        self.children[self.shard_for(block_no)].write(block_no, data)

    def _contains(self, block_no: int) -> bool:
        return self.children[self.shard_for(block_no)]._contains(block_no)

    def _group_by_shard(self, block_nos: list[int]) -> dict[int, list[int]]:
        """Positions into ``block_nos`` grouped by owning child index."""
        groups: dict[int, list[int]] = {}
        for pos, block_no in enumerate(block_nos):
            groups.setdefault(self.shard_for(block_no), []).append(pos)
        return groups

    def _get_many(self, block_nos: list[int]) -> list[bytes | None]:
        # One read_many per owning child instead of one read per block:
        # when children are remote:// nodes this is one RPC round trip
        # per shard rather than per block.
        out: list[bytes | None] = [None] * len(block_nos)
        for child_idx, positions in self._group_by_shard(block_nos).items():
            datas = self.children[child_idx].read_many(
                [block_nos[pos] for pos in positions]
            )
            for pos, data in zip(positions, datas):
                out[pos] = data
        return out

    def _put_many(self, items: list[tuple[int, bytes]]) -> None:
        groups = self._group_by_shard([block_no for block_no, _ in items])
        for child_idx, positions in groups.items():
            self.children[child_idx].write_many([items[pos] for pos in positions])

    def flush(self) -> None:
        for child in self.children:
            child.flush()

    def close(self) -> None:
        for child in self.children:
            child.close()

    def used_blocks(self) -> int:
        return sum(c.used_blocks() for c in self.children)

    def leaf_stores(self) -> list[BlockStore]:
        return [leaf for c in self.children for leaf in c.leaf_stores()]

    def shard_distribution(self) -> list[int]:
        """Blocks currently held per shard (for balance reporting)."""
        return [c.used_blocks() for c in self.children]

    def describe(self) -> str:
        kinds = ",".join(c.scheme for c in self.children)
        return (
            f"shard://{len(self.children)} [{kinds}]  "
            f"{self.num_blocks}x{self.block_size}B"
        )
