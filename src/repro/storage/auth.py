"""Credential-gated sessions for served block stores.

DisCFS's central idea is that *credentials, not host identity* decide
access (conf_usenix_MiltchevPIIKS03).  The NFS layer already authorizes
per-request with KeyNote; this module brings the same model to the
distributed block plane, so a `store-serve` ring can sit on a shared
network and still admit only principals a policy file trusts.

The handshake (procs ``CHALLENGE`` + ``SESSION_OPEN`` in
:mod:`repro.storage.net`):

1. the client fetches a single-use server nonce (``CHALLENGE``);
2. it signs ``context || nonce || identity || tenant || rights`` with
   its private key and sends identity, requested tenant + rights, its
   KeyNote credentials and the signature (``SESSION_OPEN``);
3. the server checks the nonce (popped on first use — replay-safe over
   plain TCP, no ipsec channel required), verifies the signature
   against the claimed key, then runs a KeyNote compliance query:
   policy + presented credentials, action attributes
   ``app_domain "discfs-store"``, ``tenant``, ``rights``, ``now``, with
   the client key as action authorizer and the ordered compliance
   values ``none < r < rw < admin``;
4. if the chain supports at least the requested rights, the server
   mints an opaque session token; every subsequent proc carries it and
   is authorized against the session's granted rights and confined to
   the session tenant's :class:`~repro.storage.tenant.TenantBlockStore`
   view.

Every grant/deny — session and per-proc — can be appended to a
structured audit log (JSON lines), the process-accounting substrate the
security-analysis literature builds on.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, TextIO

from repro.crypto.keycodec import (
    decode_key,
    decode_signature,
    encode_public_key,
    signature_scheme,
)
from repro.errors import (
    AuthError,
    CryptoError,
    InvalidArgument,
    KeyNoteError,
)
from repro.keynote.ast import ComplianceValues
from repro.keynote.session import KeyNoteSession
from repro.keynote.signing import sign_assertion
from repro.storage.base import BlockStore
from repro.storage.tenant import TenantBlockStore

#: The ``app_domain`` action attribute every store query carries.
APP_DOMAIN = "discfs-store"

#: Ordered compliance values for store queries, least to most.
RIGHTS_LADDER = ("none", "r", "rw", "admin")

#: Domain-separation context for session-open signatures.
SIGN_CONTEXT = b"discfs-store-session"

#: How long an issued challenge nonce stays redeemable (seconds).
NONCE_TTL = 120.0
#: How many outstanding nonces the server keeps before shedding.
MAX_NONCES = 1024
#: How long a session token stays valid (seconds).
SESSION_TTL = 3600.0


def rights_rank(rights: str) -> int:
    """Position of ``rights`` on the ladder; raises AuthError if unknown."""
    try:
        return RIGHTS_LADDER.index(rights)
    except ValueError:
        raise AuthError(
            f"unknown rights {rights!r} (expected one of "
            f"{', '.join(RIGHTS_LADDER[1:])})"
        ) from None


def session_signature_payload(nonce: bytes, identity: str, tenant: str,
                              rights: str) -> bytes:
    """The exact bytes a client signs to open a session."""
    return b"\x00".join(
        [SIGN_CONTEXT, nonce, identity.encode("utf-8"),
         tenant.encode("utf-8"), rights.encode("utf-8")]
    )


def sign_session_request(key, nonce: bytes, identity: str, tenant: str,
                         rights: str) -> str:
    """Client half of the handshake: sign the challenge, return the
    encoded signature identifier."""
    from repro.crypto.keycodec import encode_signature

    payload = session_signature_payload(nonce, identity, tenant, rights)
    raw = key.sign(payload, hash_name="sha1")
    return encode_signature(key.algorithm, "sha1", raw, "hex")


def issue_store_credential(
    issuer,
    licensee: str,
    tenant: Optional[str],
    rights: str = "rw",
    expires_at: Optional[int] = None,
    comment: str = "",
) -> str:
    """Sign a store credential: *licensee may use ``tenant`` at ``rights``*.

    ``tenant=None`` omits the tenant clause — a whole-store grant (the
    operator mount).  ``expires_at`` appends an ``@now`` expiry, the
    paper's suggested revocation aid.
    """
    rights_rank(rights)  # validate early
    clauses = [f'(app_domain == "{APP_DOMAIN}")']
    if tenant is not None:
        escaped = tenant.replace("\\", "\\\\").replace('"', '\\"')
        clauses.append(f'(tenant == "{escaped}")')
    if expires_at is not None:
        clauses.append(f"(@now < {int(expires_at)})")
    conditions = " && ".join(clauses) + f' -> "{rights}";'
    body = f'Authorizer: "{encode_public_key(issuer)}"\n'
    body += f'Licensees: "{licensee}"\n'
    body += f"Conditions: {conditions}\n"
    if comment:
        body += f"Comment: {comment}\n"
    return sign_assertion(body, issuer)


@dataclass(frozen=True)
class TenantQuota:
    """One ``--tenant-quota`` declaration: region span plus limits."""

    name: str
    blocks: int
    quota_bytes: Optional[int] = None
    rate_ops: Optional[float] = None

    @classmethod
    def parse(cls, text: str) -> "TenantQuota":
        """Parse the CLI grammar ``NAME=BLOCKS[:BYTES[:RATE]]``."""
        name, sep, rest = text.partition("=")
        if not sep or not name:
            raise InvalidArgument(
                f"bad tenant quota {text!r} "
                "(expected NAME=BLOCKS[:BYTES[:RATE]])"
            )
        parts = rest.split(":")
        if not 1 <= len(parts) <= 3:
            raise InvalidArgument(
                f"bad tenant quota {text!r} "
                "(expected NAME=BLOCKS[:BYTES[:RATE]])"
            )
        try:
            blocks = int(parts[0])
            quota_bytes = int(parts[1]) if len(parts) > 1 and parts[1] else None
            rate_ops = float(parts[2]) if len(parts) > 2 and parts[2] else None
        except ValueError as exc:
            raise InvalidArgument(f"bad tenant quota {text!r}: {exc}") from None
        if blocks <= 0:
            raise InvalidArgument(f"tenant {name!r} needs a positive span")
        return cls(name=name, blocks=blocks, quota_bytes=quota_bytes,
                   rate_ops=rate_ops)


@dataclass
class Session:
    """An authenticated client session on a served store."""

    token: bytes
    identity: str
    tenant: str
    rights: str
    expires: float
    store: BlockStore

    @property
    def rank(self) -> int:
        return rights_rank(self.rights)


class AuditLog:
    """Append-only JSON-lines audit trail (thread-safe)."""

    def __init__(self, path: Optional[str] = None,
                 stream: Optional[TextIO] = None,
                 clock: Callable[[], float] = time.time):
        self._stream = stream
        self._path = path
        self._clock = clock
        self._lock = threading.Lock()
        if path is not None and stream is None:
            self._stream = open(path, "a", encoding="utf-8")
            self._owns = True
        else:
            self._owns = False

    def record(self, event: str, verdict: str, **fields: object) -> None:
        if self._stream is None:
            return
        line = {"ts": round(self._clock(), 3), "event": event,
                "verdict": verdict}
        line.update({k: v for k, v in fields.items() if v is not None})
        with self._lock:
            self._stream.write(json.dumps(line, sort_keys=True) + "\n")
            self._stream.flush()

    def close(self) -> None:
        if self._owns and self._stream is not None:
            self._stream.close()
            self._stream = None


class StoreAuthGate:
    """Policy + tenant table + session state for one served store.

    Construct with configuration only; :meth:`bind` attaches the served
    store (after ``serve_store`` has decided whether to serialize it) and
    carves the tenant regions.  ``BlockStoreProgram`` consults
    :meth:`authorize` on every gated proc.
    """

    def __init__(
        self,
        policy_text: str,
        tenants: Iterable[TenantQuota] = (),
        audit: Optional[AuditLog] = None,
        clock: Callable[[], float] = time.time,
        session_ttl: float = SESSION_TTL,
        nonce_ttl: float = NONCE_TTL,
    ):
        # Parse once at startup so a broken policy file fails loudly
        # before the server ever binds a socket.
        if not any(a.is_policy for a in self._load_policy(KeyNoteSession(),
                                                          policy_text)):
            raise InvalidArgument("policy file contains no POLICY assertions")
        self.policy_text = policy_text
        self.tenants = list(tenants)
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise InvalidArgument(f"duplicate tenant names in {names}")
        self.audit = audit or AuditLog()
        self._clock = clock
        self._session_ttl = session_ttl
        self._nonce_ttl = nonce_ttl
        self._lock = threading.Lock()
        self._nonces: dict[bytes, float] = {}
        self._sessions: dict[bytes, Session] = {}
        self._store: Optional[BlockStore] = None
        self._views: dict[str, TenantBlockStore] = {}
        #: Denied decisions (sessions + procs), surfaced as ``auth_denied``.
        self.auth_denied = 0
        self.sessions_opened = 0

    @staticmethod
    def _load_policy(engine: KeyNoteSession, text: str) -> list:
        """Install a policy file that may mix POLICY assertions with
        pre-trusted (signed) intermediate credentials."""
        from repro.keynote.parser import parse_assertions

        added = []
        for assertion in parse_assertions(text):
            if assertion.is_policy:
                added.append(engine.add_policy(assertion))
            else:
                added.append(engine.add_credential(assertion))
        return added

    # -- binding -----------------------------------------------------------

    def bind(self, store: BlockStore) -> None:
        """Attach the served store and carve per-tenant regions.

        Regions are allocated sequentially in declaration order, so the
        ``--tenant-quota`` flags *are* the layout.
        """
        offset = 0
        views: dict[str, TenantBlockStore] = {}
        for quota in self.tenants:
            if offset + quota.blocks > store.num_blocks:
                raise InvalidArgument(
                    f"tenant regions ({offset + quota.blocks} blocks) exceed "
                    f"store capacity ({store.num_blocks} blocks)"
                )
            views[quota.name] = TenantBlockStore(
                store, quota.name, offset=offset, num_blocks=quota.blocks,
                quota_blocks=None, quota_bytes=quota.quota_bytes,
                rate_ops=quota.rate_ops, owns_child=False,
            )
            offset += quota.blocks
        self._store = store
        self._views = views

    # -- challenge/session lifecycle ---------------------------------------

    def issue_nonce(self) -> bytes:
        now = self._clock()
        nonce = os.urandom(16)
        with self._lock:
            self._nonces = {
                n: exp for n, exp in self._nonces.items() if exp > now
            }
            if len(self._nonces) >= MAX_NONCES:
                oldest = min(self._nonces, key=self._nonces.__getitem__)
                del self._nonces[oldest]
            self._nonces[nonce] = now + self._nonce_ttl
        return nonce

    def _deny(self, event: str, reason: str, **fields: object) -> AuthError:
        with self._lock:
            self.auth_denied += 1
        self.audit.record(event, "deny", reason=reason, **fields)
        return AuthError(reason)

    def open_session(
        self,
        identity: str,
        tenant: str,
        rights: str,
        credentials: list[str],
        nonce: bytes,
        signature: str,
    ) -> Session:
        """Verify the handshake and mint a session; raises AuthError."""
        ctx = {"identity": identity[:64], "tenant": tenant, "rights": rights}
        now = self._clock()
        with self._lock:
            expiry = self._nonces.pop(nonce, None)
        if expiry is None or expiry <= now:
            raise self._deny("session_open", "unknown, expired or replayed "
                             "challenge nonce", **ctx)
        if rights_rank(rights) < 1:
            raise self._deny("session_open", f"cannot request {rights!r}",
                             **ctx)

        # 1. Proof of possession: the signature binds this very request
        #    (nonce, identity, tenant, rights) to the claimed key.
        try:
            key = decode_key(identity)
            public = getattr(key, "public", key)
            algorithm, hash_name, _enc = signature_scheme(signature)
            if algorithm != public.algorithm:
                raise self._deny(
                    "session_open",
                    f"signature algorithm {algorithm!r} does not match "
                    f"identity key {public.algorithm!r}", **ctx)
            public.verify(
                session_signature_payload(nonce, identity, tenant, rights),
                decode_signature(signature), hash_name=hash_name,
            )
        except CryptoError as exc:
            raise self._deny("session_open",
                             f"challenge signature invalid: {exc}", **ctx)

        # 2. Tenant resolution: with a tenant table, the name must be
        #    declared (or empty for a whole-store operator session).
        if tenant and self._views and tenant not in self._views:
            raise self._deny("session_open", f"unknown tenant {tenant!r}",
                             **ctx)
        if tenant and not self._views:
            raise self._deny(
                "session_open",
                f"server has no tenant table; cannot grant tenant "
                f"{tenant!r}", **ctx)

        # 3. The compliance query: does policy + presented credentials
        #    delegate ``rights`` on ``tenant`` to this key?
        engine = KeyNoteSession()
        self._load_policy(engine, self.policy_text)
        try:
            for text in credentials:
                engine.add_credentials(text)
        except (KeyNoteError, CryptoError) as exc:
            raise self._deny("session_open",
                             f"credential rejected: {exc}", **ctx)
        granted = engine.query(
            action={
                "app_domain": APP_DOMAIN,
                "tenant": tenant,
                "rights": rights,
                "now": str(int(now)),
            },
            action_authorizers=[identity],
            values=ComplianceValues(list(RIGHTS_LADDER)),
        )
        if rights_rank(granted) < rights_rank(rights):
            raise self._deny(
                "session_open",
                f"policy grants {granted!r}, session requested {rights!r}",
                **ctx)

        if self._store is None:
            raise self._deny("session_open", "gate not bound to a store",
                             **ctx)
        view: BlockStore = self._views.get(tenant, self._store) if tenant \
            else self._store
        token = os.urandom(16)
        session = Session(
            token=token, identity=identity, tenant=tenant, rights=rights,
            expires=now + self._session_ttl, store=view,
        )
        with self._lock:
            self._sessions = {
                t: s for t, s in self._sessions.items() if s.expires > now
            }
            self._sessions[token] = session
            self.sessions_opened += 1
        self.audit.record("session_open", "grant", granted=granted, **ctx)
        return session

    # -- per-proc authorization --------------------------------------------

    def authorize(self, token: bytes, proc_name: str,
                  required: str) -> Session:
        """Return the live session iff it holds ``required`` rights."""
        now = self._clock()
        with self._lock:
            session = self._sessions.get(token)
        if session is None or session.expires <= now:
            raise self._deny(
                "proc", f"{proc_name}: no authenticated session "
                "(open one with SESSION_OPEN)", proc=proc_name)
        if session.rank < rights_rank(required):
            raise self._deny(
                "proc",
                f"{proc_name} needs {required!r} rights, session has "
                f"{session.rights!r}", proc=proc_name,
                tenant=session.tenant, identity=session.identity[:64])
        self.audit.record("proc", "grant", proc=proc_name,
                          tenant=session.tenant)
        return session

    # -- introspection -----------------------------------------------------

    def extra_stats(self) -> dict[str, float]:
        """Gate counters + per-tenant usage, flat-keyed for StoreStats."""
        with self._lock:
            out = {
                "auth_denied": float(self.auth_denied),
                "auth_sessions": float(self.sessions_opened),
                "auth_tenants": float(len(self._views)),
            }
        for view in self._views.values():
            out.update(view.snapshot().extra)
        return out

    def close(self) -> None:
        self.audit.close()
