"""Networked block storage (``remote://``): any backend served over RPC.

Two halves, both riding the existing :mod:`repro.rpc` stack:

* :class:`BlockStoreProgram` — an RPC program (its own program number,
  XDR-encoded procedures) exporting *any* :class:`BlockStore` over any
  transport.  ``discfs store-serve --backend URI`` runs one on a TCP
  port; tests run it in-process.
* :class:`RemoteBlockStore` — the client store, registered as
  ``remote://host:port``.  Geometry is learned from the server at
  connect time (GEOM), so the remote node owns its configuration.

Because a remote store is just another :class:`BlockStore`, it composes
with everything else: ``shard://remote://h1:9001;remote://h2:9002``
turns the consistent-hash ring into a real multi-node cluster, and
``replica://remote://h1:9001;remote://h2:9002#w=1&r=1`` replicates
across nodes.

Per-block round trips would make that unusable, so the batched
interface is first-class on the wire: READ_MANY/WRITE_MANY carry whole
extents in one message, and :class:`RemoteBlockStore` routes the
``read_many``/``write_many`` cold paths through them.  ``?batch=off``
forces per-block calls — the knob the replication ablation uses to
price the round trips batching saves.  ``?workers=N`` adds the other
distributed win: a :class:`~repro.rpc.client.ConnectionPool` of
pipelined connections keeps several windows in flight at once, so a
large extent overlaps its round trips instead of paying them serially
(``serve_store(..., workers=N)`` gives the server matching concurrency).

Procedures (version 2 — every request except NULL starts with an opaque
session token, empty before SESSION_OPEN; every reply except NULL's
starts with a uint status, 0 = OK, else an error code followed by a
message string)::

    0 NULL                                    (ping; no v2 envelope)
    1 GEOM        void -> uint num_blocks, uint block_size, string desc
    2 READ        uint block_no -> opaque data
    3 WRITE       uint block_no, opaque data -> void
    4 READ_MANY   uint<> block_nos -> opaque<> blocks
    5 WRITE_MANY  struct{uint, opaque}<> -> void
    6 FLUSH       void -> void
    7 USED        void -> uhyper used_blocks
    8 CONTAINS    uint block_no -> bool      (stats-free, for overlays)
    9 LIST        uint start, uint limit -> uint<> block_nos
                                              (paginated enumeration —
                                               the reshard primitive)
   10 STATS       void -> string json        (served store's snapshot +
                                               capabilities, for
                                               ``store-inspect``)
   11 CHALLENGE   void -> opaque nonce       (single-use, for
                                               SESSION_OPEN; empty on an
                                               ungated server)
   12 SESSION_OPEN  string identity, string tenant, string rights,
                    string<> credentials, opaque nonce, string signature
                    -> opaque token, string granted

When the server runs a :class:`~repro.storage.auth.StoreAuthGate`
(``store-serve --policy``), NULL/CHALLENGE/SESSION_OPEN are the only
procs an unauthenticated client may call; everything else is authorized
against the session's granted rights (read procs need ``r``, mutating
procs ``rw``, STATS ``admin``) and runs against the session tenant's
:class:`~repro.storage.tenant.TenantBlockStore` view.  Authorization,
quota and rate-limit failures come back as in-band status codes and
re-raise client-side as the same typed errors — *not* as
:class:`~repro.errors.StoreUnavailable`, so ``replica://`` never
mistakes a denied tenant for a down node.
"""

from __future__ import annotations

import contextlib
import json
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Optional

from repro.errors import (
    AuthError,
    QuotaExceeded,
    RateLimited,
    RPCError,
    StoreUnavailable,
    TransportError,
)
from repro.rpc.client import ConnectionPool, RPCClient, abandon_call
from repro.rpc.server import CallContext, RPCProgram, RPCServer
from repro.rpc.transport import (
    PipelinedTCPTransport,
    TCPServer,
    TCPTransport,
    Transport,
    serve_tcp,
)
from repro.rpc.xdr import XDRDecoder, XDREncoder
from repro.crypto.keycodec import encode_public_key
from repro.obs.metrics import get_registry
from repro.obs.trace import (
    Span,
    SpanContext,
    current_context,
    decode_context,
    encode_context,
    get_recorder,
    take_request_received,
    use_context,
)
from repro.storage.auth import StoreAuthGate, sign_session_request
from repro.storage.base import BlockStore, Capabilities, StoreStats

#: DisCFS-private program number, next to AUTH_CHANNEL's 390000 range.
BLOCKSTORE_PROGRAM = 390010
BLOCKSTORE_VERSION = 2

PROC_GEOM = 1
PROC_READ = 2
PROC_WRITE = 3
PROC_READ_MANY = 4
PROC_WRITE_MANY = 5
PROC_FLUSH = 6
PROC_USED = 7
PROC_CONTAINS = 8
PROC_LIST = 9
PROC_STATS = 10
PROC_CHALLENGE = 11
PROC_SESSION_OPEN = 12

#: In-band reply status codes and the typed errors they carry.
ERR_OK = 0
ERR_AUTH = 1
ERR_QUOTA = 2
ERR_RATE = 3
_STATUS_ERRORS: dict[int, type[Exception]] = {
    ERR_AUTH: AuthError,
    ERR_QUOTA: QuotaExceeded,
    ERR_RATE: RateLimited,
}
_ERROR_STATUS: list[tuple[type[Exception], int]] = [
    (AuthError, ERR_AUTH),
    (QuotaExceeded, ERR_QUOTA),
    (RateLimited, ERR_RATE),
]

#: Minimum rights a gated proc needs; ``None`` = unauthenticated.
PROC_RIGHTS: dict[int, Optional[str]] = {
    0: None, PROC_CHALLENGE: None, PROC_SESSION_OPEN: None,
    PROC_GEOM: "r", PROC_READ: "r", PROC_READ_MANY: "r",
    PROC_CONTAINS: "r", PROC_USED: "r", PROC_LIST: "r",
    PROC_WRITE: "rw", PROC_WRITE_MANY: "rw", PROC_FLUSH: "rw",
    PROC_STATS: "admin",
}

PROC_NAMES: dict[int, str] = {
    0: "NULL", PROC_GEOM: "GEOM", PROC_READ: "READ", PROC_WRITE: "WRITE",
    PROC_READ_MANY: "READ_MANY", PROC_WRITE_MANY: "WRITE_MANY",
    PROC_FLUSH: "FLUSH", PROC_USED: "USED", PROC_CONTAINS: "CONTAINS",
    PROC_LIST: "LIST", PROC_STATS: "STATS", PROC_CHALLENGE: "CHALLENGE",
    PROC_SESSION_OPEN: "SESSION_OPEN",
}

#: Size caps for handshake fields (tokens/nonces are 16 bytes today).
MAX_TOKEN = 64
MAX_IDENTITY = 4096
MAX_CREDENTIAL = 1 << 16
MAX_CREDENTIALS = 32

#: Block numbers one LIST page may carry.
LIST_PAGE = 4096

#: Reusable no-op context manager for the untraced fast path.
_NO_CONTEXT = contextlib.nullcontext()

#: Upper bounds on one READ_MANY/WRITE_MANY message.  The client
#: window is the smaller of an item cap and a byte budget computed from
#: the negotiated block size, so large-block stores stay under the
#: transport's 64 MiB record sanity limit while still amortizing round
#: trips by orders of magnitude.
MAX_BATCH_BLOCKS = 4096
MAX_BATCH_BYTES = 1 << 25  # 32 MiB of payload per message


class BlockStoreProgram(RPCProgram):
    """Exports one :class:`BlockStore` as an RPC program.

    The store's own ``read``/``write`` wrappers run server-side, so the
    served node keeps authoritative stats and range validation; client
    stores layer their *local* stats on top.  Thread safety is the
    backend's concern (``TCPServer`` dispatches each connection on its
    own thread; ``mem://`` is safe under the GIL, ``sqlite://``
    serializes internally).
    """

    def __init__(self, store: BlockStore,
                 gate: Optional[StoreAuthGate] = None):
        super().__init__(BLOCKSTORE_PROGRAM, BLOCKSTORE_VERSION,
                         name="blockstore")
        self.store = store
        self.gate = gate
        if gate is not None:
            gate.bind(store)
        #: "host:port" label stamped on server-side spans (set by
        #: StoreServer once the listener is bound; in-process programs
        #: keep the generic default).
        self.node = "server"
        registry = get_registry()
        self._recorder = get_recorder()
        #: Per-proc service-time histograms plus one queue-wait
        #: histogram, registered eagerly so the metrics endpoint shows
        #: the full proc surface from the first scrape.
        self._svc_hist = {
            proc: registry.histogram(
                f"rpc:server:{name}:service_seconds"
            )
            for proc, name in PROC_NAMES.items() if proc != 0
        }
        self._queue_hist = registry.histogram("rpc:server:queue_wait_seconds")
        # Proc 0 (NULL) keeps the RPC-wide convention — empty args,
        # empty reply, no token/status envelope — so transport-level
        # health checks work against any program uniformly.
        self.register(PROC_GEOM, self._gated(PROC_GEOM, self._proc_geom))
        self.register(PROC_READ, self._gated(PROC_READ, self._proc_read))
        self.register(PROC_WRITE, self._gated(PROC_WRITE, self._proc_write))
        self.register(PROC_READ_MANY,
                      self._gated(PROC_READ_MANY, self._proc_read_many))
        self.register(PROC_WRITE_MANY,
                      self._gated(PROC_WRITE_MANY, self._proc_write_many))
        self.register(PROC_FLUSH, self._gated(PROC_FLUSH, self._proc_flush))
        self.register(PROC_USED, self._gated(PROC_USED, self._proc_used))
        self.register(PROC_CONTAINS,
                      self._gated(PROC_CONTAINS, self._proc_contains))
        self.register(PROC_LIST, self._gated(PROC_LIST, self._proc_list))
        self.register(PROC_STATS, self._gated(PROC_STATS, self._proc_stats))
        self.register(PROC_CHALLENGE,
                      self._gated(PROC_CHALLENGE, self._proc_challenge))
        self.register(PROC_SESSION_OPEN,
                      self._gated(PROC_SESSION_OPEN, self._proc_session_open))

    def _gated(
        self,
        proc: int,
        handler: Callable[[BlockStore, XDRDecoder, CallContext], bytes],
    ) -> Callable[[XDRDecoder, CallContext], bytes]:
        """Wrap a proc handler in the v2 envelope: consume the leading
        session token, authorize it against the gate, run the handler on
        the session's store view, and prefix the reply with a status —
        turning the typed auth/quota/rate errors into in-band codes
        instead of SYSTEM_ERR transport failures.

        The wrapper is also the server-side observation point: every
        call lands in the per-proc service histogram plus the shared
        queue-wait histogram (arrival stamped by the transport, so the
        worker-pool wait is split from handler time), and when the
        client shipped a span context in the call's credential body a
        child server span is recorded — under which the handler runs,
        so a metered served store parents its spans correctly."""
        name = PROC_NAMES[proc]
        required = PROC_RIGHTS[proc]

        def wrapped(dec: XDRDecoder, ctx: CallContext) -> bytes:
            received = take_request_received()
            wall = time.time()
            start = time.perf_counter()
            queue_wait = max(0.0, start - received) if received is not None \
                else 0.0
            parent = decode_context(ctx.call.auth_body) \
                if ctx.call is not None else None
            span_ctx: Optional[SpanContext] = \
                parent.child() if parent is not None else None
            status = "ok"
            try:
                token = dec.unpack_opaque(max_size=MAX_TOKEN)
                try:
                    store = self.store
                    if self.gate is not None and required is not None:
                        session = self.gate.authorize(token, name, required)
                        store = session.store
                    with use_context(span_ctx) if span_ctx is not None \
                            else _NO_CONTEXT:
                        payload = handler(store, dec, ctx)
                except (AuthError, QuotaExceeded, RateLimited) as exc:
                    status = "denied"
                    for err_type, code in _ERROR_STATUS:
                        if isinstance(exc, err_type):
                            return (XDREncoder().pack_uint(code)
                                    .pack_string(str(exc)).getvalue())
                    raise  # unreachable
                return XDREncoder().pack_uint(ERR_OK).getvalue() + payload
            except Exception:
                if status == "ok":
                    status = "error"
                raise
            finally:
                service = time.perf_counter() - start
                self._svc_hist[proc].record(service)
                self._queue_hist.record(queue_wait)
                if span_ctx is not None:
                    self._recorder.record(Span(
                        name=name, kind="server",
                        trace_id=span_ctx.trace_id,
                        span_id=span_ctx.span_id,
                        parent_id=span_ctx.parent_id,
                        node=self.node, start=wall,
                        duration_ms=service * 1000.0,
                        queue_ms=queue_wait * 1000.0,
                        status=status,
                    ))

        return wrapped

    def _proc_challenge(self, store: BlockStore, dec: XDRDecoder,
                        ctx: CallContext) -> bytes:
        """A single-use nonce for SESSION_OPEN (empty if ungated, so a
        credentialed client degrades gracefully on an open server)."""
        dec.done()
        nonce = self.gate.issue_nonce() if self.gate is not None else b""
        return XDREncoder().pack_opaque(nonce).getvalue()

    def _proc_session_open(self, store: BlockStore, dec: XDRDecoder,
                           ctx: CallContext) -> bytes:
        identity = dec.unpack_string(max_size=MAX_IDENTITY)
        tenant = dec.unpack_string(max_size=256)
        rights = dec.unpack_string(max_size=32)
        credentials = dec.unpack_array(
            lambda d: d.unpack_string(max_size=MAX_CREDENTIAL),
            max_items=MAX_CREDENTIALS,
        )
        nonce = dec.unpack_opaque(max_size=MAX_TOKEN)
        signature = dec.unpack_string(max_size=MAX_IDENTITY)
        dec.done()
        if self.gate is None:
            # Open server: hand back an empty token; every proc accepts it.
            return (XDREncoder().pack_opaque(b"")
                    .pack_string("admin").getvalue())
        session = self.gate.open_session(
            identity=identity, tenant=tenant, rights=rights,
            credentials=credentials, nonce=nonce, signature=signature,
        )
        return (XDREncoder().pack_opaque(session.token)
                .pack_string(session.rights).getvalue())

    def _proc_geom(self, store: BlockStore, dec: XDRDecoder,
                   ctx: CallContext) -> bytes:
        dec.done()
        return (
            XDREncoder()
            .pack_uint(store.num_blocks)
            .pack_uint(store.block_size)
            .pack_string(store.describe())
            .getvalue()
        )

    def _proc_read(self, store: BlockStore, dec: XDRDecoder,
                   ctx: CallContext) -> bytes:
        block_no = dec.unpack_uint()
        dec.done()
        return XDREncoder().pack_opaque(store.read(block_no)).getvalue()

    def _proc_write(self, store: BlockStore, dec: XDRDecoder,
                    ctx: CallContext) -> bytes:
        block_no = dec.unpack_uint()
        data = dec.unpack_opaque(max_size=store.block_size)
        dec.done()
        store.write(block_no, data)
        return b""

    def _proc_read_many(self, store: BlockStore, dec: XDRDecoder,
                        ctx: CallContext) -> bytes:
        block_nos = dec.unpack_array(
            lambda d: d.unpack_uint(), max_items=MAX_BATCH_BLOCKS
        )
        dec.done()
        blocks = store.read_many(block_nos)
        enc = XDREncoder()
        enc.pack_array(blocks, lambda e, b: e.pack_opaque(b))
        return enc.getvalue()

    def _proc_write_many(self, store: BlockStore, dec: XDRDecoder,
                         ctx: CallContext) -> bytes:
        def unpack_item(d: XDRDecoder) -> tuple[int, bytes]:
            block_no = d.unpack_uint()
            return block_no, d.unpack_opaque(max_size=store.block_size)

        items = dec.unpack_array(unpack_item, max_items=MAX_BATCH_BLOCKS)
        dec.done()
        store.write_many(items)
        return b""

    def _proc_flush(self, store: BlockStore, dec: XDRDecoder,
                    ctx: CallContext) -> bytes:
        dec.done()
        store.flush()
        return b""

    def _proc_used(self, store: BlockStore, dec: XDRDecoder,
                   ctx: CallContext) -> bytes:
        dec.done()
        return XDREncoder().pack_uhyper(store.used_blocks()).getvalue()

    def _proc_contains(self, store: BlockStore, dec: XDRDecoder,
                       ctx: CallContext) -> bytes:
        block_no = dec.unpack_uint()
        dec.done()
        return XDREncoder().pack_bool(store._contains(block_no)).getvalue()

    def _proc_list(self, store: BlockStore, dec: XDRDecoder,
                   ctx: CallContext) -> bytes:
        """One page of used block numbers at or past ``start``; the
        client advances ``start`` past the last entry until a page comes
        back empty.  The enumeration is recomputed per page (stateless —
        pages stay correct across concurrent writes) but sliced by
        bisection, so a page costs one sorted listing, not a linear
        filter over it."""
        import bisect

        start = dec.unpack_uint()
        limit = dec.unpack_uint()
        dec.done()
        limit = max(1, min(limit, LIST_PAGE))
        numbers = store.used_block_numbers()  # sorted by contract
        lo = bisect.bisect_left(numbers, start)
        page = numbers[lo:lo + limit]
        enc = XDREncoder()
        enc.pack_array(page, lambda e, b: e.pack_uint(b))
        return enc.getvalue()

    def _proc_stats(self, store: BlockStore, dec: XDRDecoder,
                    ctx: CallContext) -> bytes:
        """The served store's snapshot + capabilities, as JSON — the
        control plane's window into the node's own counters.  Always the
        *root* served store (STATS needs ``admin``); gate counters and
        per-tenant usage ride in ``extra``."""
        dec.done()
        snap = self.store.snapshot()
        caps = self.store.capabilities()
        payload = snap.to_dict()
        if self.gate is not None:
            payload["extra"].update(self.gate.extra_stats())
        payload["capabilities"] = {
            "thread_safe": caps.thread_safe,
            "durable": caps.durable,
            "networked": caps.networked,
            "composite": caps.composite,
        }
        return XDREncoder().pack_string(json.dumps(payload)).getvalue()


class SerializedBlockStore(BlockStore):
    """Lock wrapper making any store safe under concurrent callers.

    ``serve_store(..., workers=N)`` answers one connection's requests
    from several threads, but most composite stores (``cached://``'s
    LRU mutates even on reads) assume a single caller.  This wrapper
    serializes every operation under one lock; backends that declare
    ``thread_safe`` (``mem://``, ``sqlite://``) are served unwrapped so
    their operations still overlap.

    Like :class:`~repro.storage.replica.FailingBlockStore`, it forwards
    to the child's *internal* hooks — validation, padding and stats
    already happened in this layer's public wrappers — and stands in
    for the child in the leaf-stats contract.
    """

    def __init__(self, child: BlockStore):
        import threading

        super().__init__(child.num_blocks, child.block_size)
        self.child = child
        self._op_lock = threading.RLock()

    def _get(self, block_no: int) -> bytes | None:
        with self._op_lock:
            return self.child._get(block_no)

    def _put(self, block_no: int, data: bytes) -> None:
        with self._op_lock:
            self.child._put(block_no, data)

    def _get_many(self, block_nos: list[int]) -> list[bytes | None]:
        with self._op_lock:
            return list(self.child._get_many(block_nos))

    def _put_many(self, items: list[tuple[int, bytes]]) -> None:
        with self._op_lock:
            self.child._put_many(items)

    def _contains(self, block_no: int) -> bool:
        with self._op_lock:
            return self.child._contains(block_no)

    def flush(self) -> None:
        with self._op_lock:
            self.child.flush()

    def close(self) -> None:
        with self._op_lock:
            self.child.close()

    def used_blocks(self) -> int:
        with self._op_lock:
            return self.child.used_blocks()

    def used_block_numbers(self) -> list[int]:
        with self._op_lock:
            return self.child.used_block_numbers()

    def leaf_stores(self) -> list[BlockStore]:
        return [self]

    def child_stores(self) -> list[BlockStore]:
        return [self.child]

    def capabilities(self) -> Capabilities:
        child_caps = self.child.capabilities()
        return Capabilities(
            thread_safe=True,  # that is the point of the wrapper
            durable=child_caps.durable,
            networked=child_caps.networked,
            composite=True,
        )

    def _extra_stats(self) -> dict[str, float]:
        return self.child._extra_stats()

    def describe(self) -> str:
        return f"serialized {self.child.describe()}"


class StoreServer:
    """A :class:`BlockStoreProgram` bound to a TCP listener.

    ``address`` is the (host, port) actually bound (port 0 picks a free
    one).  Closing stops the listener; the store is flushed but left
    open for the caller (who may also own it through other references).
    """

    def __init__(self, store: BlockStore, host: str = "127.0.0.1",
                 port: int = 0, workers: int = 0,
                 gate: Optional[StoreAuthGate] = None):
        self.store = store
        self.gate = gate
        served = store
        if not store.capabilities().thread_safe and (
            workers > 0 or (gate is not None and gate.tenants)
        ):
            # Worker threads would race a backend that does not claim
            # concurrent-caller safety; serialize its operations
            # (network/pipelining still overlaps).  Tenant views make
            # even a sequential server multi-caller: each connection
            # runs on its own thread and the views share one child.
            served = SerializedBlockStore(store)
        self.program = BlockStoreProgram(served, gate=gate)
        rpc = RPCServer()
        rpc.register(self.program)
        self.rpc = rpc
        self._tcp: TCPServer = serve_tcp(rpc.handler_for(None),
                                         host=host, port=port,
                                         workers=workers)
        self.address: tuple[str, int] = self._tcp.address
        # Server spans carry the bound endpoint, so a cross-node trace
        # tree names which node served each proc.
        self.program.node = f"{self.address[0]}:{self.address[1]}"

    def handler(self, request: bytes) -> bytes:
        """``bytes -> bytes`` entry point for in-process transports."""
        return self.rpc.handle(request)

    def close(self) -> None:
        self._tcp.close()
        self.store.flush()
        if self.gate is not None:
            self.gate.close()

    def __enter__(self) -> "StoreServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve_store(store: BlockStore, host: str = "127.0.0.1",
                port: int = 0, workers: int = 0,
                gate: Optional[StoreAuthGate] = None) -> StoreServer:
    """Serve ``store`` over TCP; returns the running :class:`StoreServer`.

    ``workers=N`` answers each connection's requests from a thread pool
    (replies may come back out of request order — xid matching on the
    client makes that safe), so pipelined clients overlap server-side
    work too; ``workers=0`` keeps the sequential per-connection loop.
    Backends that do not declare ``thread_safe`` are wrapped in
    :class:`SerializedBlockStore` first, so worker threads never race
    an unlocked store.

    ``gate=StoreAuthGate(...)`` credential-gates the server: clients
    must SESSION_OPEN with KeyNote credentials the gate's policy
    accepts, and tenant sessions are confined to their region view.
    """
    return StoreServer(store, host=host, port=port, workers=workers,
                       gate=gate)


class RemoteBlockStore(BlockStore):
    """Client store speaking the block-store program over a transport.

    Any transport works — :func:`connect` opens TCP for the
    ``remote://host:port`` registry form; tests wire an
    :class:`~repro.rpc.transport.InProcessTransport` straight to a
    :class:`StoreServer`.  Transport and RPC failures surface as
    :class:`~repro.errors.StoreUnavailable`, the signal ``replica://``
    treats as a down node.
    """

    scheme = "remote"
    networked = True

    def __init__(self, transport: Transport, batch: bool = True,
                 workers: int = 1, timeout: float | None = None,
                 endpoint: tuple[str, int] | None = None,
                 key=None, credentials: list[str] | None = None,
                 tenant: str = "", rights: str = "rw"):
        self._client = RPCClient(transport, BLOCKSTORE_PROGRAM,
                                 BLOCKSTORE_VERSION)
        self.batch = batch
        self.workers = max(1, workers)
        self.timeout = timeout
        #: ``(host, port)`` for TCP mounts (None for in-process
        #: transports) — lets the control plane name the node.
        self.endpoint = endpoint
        # A connection pool multiplexes concurrent callers safely; a
        # single blocking transport does not.
        self.thread_safe = self.workers > 1
        #: Session token carried on every request (empty = no session;
        #: an ungated server accepts that on every proc).  The token is
        #: server-global, not per-connection, so one session covers the
        #: whole connection pool.
        self._token = b""
        self.tenant = tenant
        #: Rights granted at SESSION_OPEN (None on an open mount).
        self.session_rights: str | None = None
        if key is not None:
            self._open_session(key, list(credentials or []), tenant, rights)
        dec = self._call(PROC_GEOM)
        num_blocks = dec.unpack_uint()
        block_size = dec.unpack_uint()
        self.remote_description = dec.unpack_string()
        dec.done()
        super().__init__(num_blocks, block_size)

    def _open_session(self, key, credentials: list[str], tenant: str,
                      rights: str) -> None:
        """CHALLENGE + SESSION_OPEN: prove key possession over the
        nonce, present credentials, and pocket the session token."""
        dec = self._call(PROC_CHALLENGE)
        nonce = dec.unpack_opaque(max_size=MAX_TOKEN)
        dec.done()
        identity = encode_public_key(key)
        signature = sign_session_request(key, nonce, identity, tenant,
                                         rights)
        enc = XDREncoder()
        enc.pack_string(identity)
        enc.pack_string(tenant)
        enc.pack_string(rights)
        enc.pack_array(credentials, lambda e, c: e.pack_string(c))
        enc.pack_opaque(nonce)
        enc.pack_string(signature)
        dec = self._call(PROC_SESSION_OPEN, enc.getvalue())
        self._token = dec.unpack_opaque(max_size=MAX_TOKEN)
        self.session_rights = dec.unpack_string()
        dec.done()

    @classmethod
    def connect(cls, host: str, port: int, timeout: float = 10.0,
                batch: bool = True, workers: int = 1,
                key=None, credentials: list[str] | None = None,
                tenant: str = "", rights: str = "rw") -> "RemoteBlockStore":
        """Open a TCP client for the store at ``host:port``.

        ``workers=1`` (the default) is one classic blocking connection.
        ``workers=N`` builds a :class:`~repro.rpc.client.ConnectionPool`
        of pipelined connections, so the windowed ``read_many``/
        ``write_many`` batches (and any concurrent callers) keep up to
        ``N`` requests in flight on independent connections.

        ``key``/``credentials`` authenticate the mount against a
        credential-gated server (``tenant`` selects the namespace,
        ``rights`` what the session asks for).
        """
        auth = dict(key=key, credentials=credentials, tenant=tenant,
                    rights=rights)
        if workers > 1:
            pool = ConnectionPool(
                lambda: PipelinedTCPTransport(host, port, timeout=timeout),
                size=workers, timeout=timeout,
            )
            try:
                return cls(pool, batch=batch, workers=workers,
                           timeout=timeout, endpoint=(host, port), **auth)
            except Exception:
                # Handshake failed: don't leak dialed connections (retry
                # loops waiting for a node would pile up descriptors).
                pool.close()
                raise
        try:
            transport = TCPTransport(host, port, timeout=timeout)
        except OSError as exc:
            raise StoreUnavailable(
                f"cannot reach block store at {host}:{port}: {exc}"
            ) from exc
        try:
            return cls(transport, batch=batch, timeout=timeout,
                       endpoint=(host, port), **auth)
        except Exception:
            # GEOM handshake failed: don't leak the connected socket
            # (retry loops waiting for a node would pile up descriptors).
            transport.close()
            raise

    def _frame(self, args: bytes) -> bytes:
        """Prefix the v2 session token onto a request's arguments."""
        return XDREncoder().pack_opaque(self._token).getvalue() + args

    @property
    def _node_label(self) -> str:
        return (f"{self.endpoint[0]}:{self.endpoint[1]}" if self.endpoint
                else "in-process")

    def _trace_start(self, proc: int):
        """Derive a child span context for one RPC when a trace is
        active; returns ``(cred_bytes, span_ctx, wall, start)`` — all
        empty/None/0 when untraced, so the hot path pays one
        contextvar read."""
        parent = current_context()
        if parent is None:
            return b"", None, 0.0, 0.0
        ctx = parent.child()
        return encode_context(ctx), ctx, time.time(), time.perf_counter()

    def _trace_finish(self, proc: int, span_ctx, wall: float, start: float,
                      status: str) -> None:
        """Record the client-side RPC span begun by :meth:`_trace_start`."""
        if span_ctx is None:
            return
        get_recorder().record(Span(
            name=PROC_NAMES.get(proc, str(proc)), kind="client",
            trace_id=span_ctx.trace_id, span_id=span_ctx.span_id,
            parent_id=span_ctx.parent_id, node=self._node_label,
            start=wall,
            duration_ms=(time.perf_counter() - start) * 1000.0,
            status=status,
        ))

    @staticmethod
    def _check_status(dec: XDRDecoder) -> XDRDecoder:
        """Decode the v2 reply status; re-raise server-side auth/quota/
        rate denials as their typed errors (not StoreUnavailable — a
        denied tenant is not a down node)."""
        status = dec.unpack_uint()
        if status != ERR_OK:
            message = dec.unpack_string()
            dec.done()
            raise _STATUS_ERRORS.get(status, StoreUnavailable)(message)
        return dec

    def _call(self, proc: int, args: bytes = b"") -> XDRDecoder:
        cred, span_ctx, wall, start = self._trace_start(proc)
        status = "ok"
        try:
            try:
                dec = self._client.call(proc, self._frame(args), cred=cred)
            except (TransportError, RPCError, OSError) as exc:
                raise StoreUnavailable(
                    f"remote block store failed: {exc}"
                ) from exc
            return self._check_status(dec)
        except Exception:
            status = "error"
            raise
        finally:
            self._trace_finish(proc, span_ctx, wall, start, status)

    # -- async windowed batches --------------------------------------------

    def _submit(self, proc: int, args: bytes) -> Future:
        """Start one RPC; transport errors surface as StoreUnavailable.

        When a trace is active the span context rides on the future and
        the client span is closed by :meth:`_await` (it covers the full
        in-flight window, queueing included — that is the latency the
        caller experienced)."""
        cred, span_ctx, wall, start = self._trace_start(proc)
        try:
            fut = self._client.call_async(proc, self._frame(args), cred=cred)
        except (TransportError, RPCError, OSError) as exc:
            self._trace_finish(proc, span_ctx, wall, start, "error")
            raise StoreUnavailable(f"remote block store failed: {exc}") from exc
        if span_ctx is not None:
            fut.trace_info = (proc, span_ctx, wall, start)  # type: ignore[attr-defined]
        return fut

    def _await(self, fut: Future) -> XDRDecoder:
        trace_info = getattr(fut, "trace_info", None)
        status = "ok"
        try:
            try:
                dec = fut.result(timeout=self.timeout)
            except FutureTimeoutError:
                # Tear the wedged connection down (failing its other
                # in-flight windows) so a never-answering server cannot
                # accumulate pending calls against the pool.
                abandon_call(fut, f"no reply within {self.timeout}s")
                raise StoreUnavailable(
                    f"remote call timed out after {self.timeout}s"
                ) from None
            except (TransportError, RPCError, OSError) as exc:
                raise StoreUnavailable(
                    f"remote block store failed: {exc}"
                ) from exc
            return self._check_status(dec)
        except Exception:
            status = "error"
            raise
        finally:
            if trace_info is not None:
                self._trace_finish(*trace_info, status)

    @property
    def _inflight_cap(self) -> int:
        """Outstanding windows kept in flight by read_many/write_many."""
        return max(2, 2 * self.workers)

    # -- BlockStore interface ----------------------------------------------

    def _get(self, block_no: int) -> bytes | None:
        args = XDREncoder().pack_uint(block_no).getvalue()
        dec = self._call(PROC_READ, args)
        data = dec.unpack_opaque(max_size=self.block_size)
        dec.done()
        return data

    def _put(self, block_no: int, data: bytes) -> None:
        args = XDREncoder().pack_uint(block_no).pack_opaque(data).getvalue()
        self._call(PROC_WRITE, args).done()

    @property
    def _batch_window(self) -> int:
        return max(1, min(MAX_BATCH_BLOCKS, MAX_BATCH_BYTES // self.block_size))

    def _decode_read_window(self, dec: XDRDecoder, want: int) -> list:
        blocks = dec.unpack_array(
            lambda d: d.unpack_opaque(max_size=self.block_size),
            max_items=MAX_BATCH_BLOCKS,
        )
        dec.done()
        if len(blocks) != want:
            raise StoreUnavailable(
                f"remote returned {len(blocks)} blocks for {want} requested"
            )
        return blocks

    def _get_many(self, block_nos: list[int]) -> list[bytes | None]:
        if not self.batch:
            return [self._get(block_no) for block_no in block_nos]
        window_size = self._batch_window
        windows = [
            block_nos[start : start + window_size]
            for start in range(0, len(block_nos), window_size)
        ]
        if self.workers == 1 or len(windows) == 1:
            out: list[bytes | None] = []
            for window in windows:
                enc = XDREncoder()
                enc.pack_array(window, lambda e, b: e.pack_uint(b))
                dec = self._call(PROC_READ_MANY, enc.getvalue())
                out.extend(self._decode_read_window(dec, len(window)))
            return out
        # Windowed in-flight pipeline: keep up to _inflight_cap windows
        # outstanding across the connection pool; results are collected
        # in submission order so the output aligns with block_nos.
        out = []
        inflight: deque[tuple[list[int], Future]] = deque()

        def drain_one() -> None:
            window, fut = inflight.popleft()
            dec = self._await(fut)
            out.extend(self._decode_read_window(dec, len(window)))

        try:
            for window in windows:
                enc = XDREncoder()
                enc.pack_array(window, lambda e, b: e.pack_uint(b))
                inflight.append(
                    (window, self._submit(PROC_READ_MANY, enc.getvalue()))
                )
                if len(inflight) >= self._inflight_cap:
                    drain_one()
            while inflight:
                drain_one()
        except Exception:
            for _window, fut in inflight:
                fut.cancel()
            raise
        return out

    def _put_many(self, items: list[tuple[int, bytes]]) -> None:
        if not self.batch:
            for block_no, data in items:
                self._put(block_no, data)
            return

        def pack_window(window: list[tuple[int, bytes]]) -> bytes:
            enc = XDREncoder()

            def pack_item(e: XDREncoder, item: tuple[int, bytes]) -> None:
                e.pack_uint(item[0])
                e.pack_opaque(item[1])

            enc.pack_array(window, pack_item)
            return enc.getvalue()

        window_size = self._batch_window
        windows = [
            items[start : start + window_size]
            for start in range(0, len(items), window_size)
        ]
        if self.workers == 1 or len(windows) == 1:
            for window in windows:
                self._call(PROC_WRITE_MANY, pack_window(window)).done()
            return
        # Concurrent windows may land out of order, so a block that
        # appears twice in one batch could end up holding its *older*
        # payload.  Collapse duplicates to the last write first — the
        # exact result sequential application would produce — and then
        # order between windows no longer matters.
        deduped = dict(items)
        if len(deduped) != len(items):
            items = list(deduped.items())
            windows = [
                items[start : start + window_size]
                for start in range(0, len(items), window_size)
            ]
        inflight: deque[Future] = deque()
        try:
            for window in windows:
                inflight.append(
                    self._submit(PROC_WRITE_MANY, pack_window(window))
                )
                if len(inflight) >= self._inflight_cap:
                    self._await(inflight.popleft()).done()
            while inflight:
                self._await(inflight.popleft()).done()
        except Exception:
            for fut in inflight:
                fut.cancel()
            raise

    def _contains(self, block_no: int) -> bool:
        args = XDREncoder().pack_uint(block_no).getvalue()
        dec = self._call(PROC_CONTAINS, args)
        result = dec.unpack_bool()
        dec.done()
        return result

    def flush(self) -> None:
        self._call(PROC_FLUSH).done()

    def close(self) -> None:
        self._client.close()

    def used_blocks(self) -> int:
        dec = self._call(PROC_USED)
        used = dec.unpack_uhyper()
        dec.done()
        return used

    def used_block_numbers(self) -> list[int]:
        """Page the served store's enumeration over LIST round trips."""
        numbers: list[int] = []
        start = 0
        while True:
            args = (XDREncoder().pack_uint(start).pack_uint(LIST_PAGE)
                    .getvalue())
            dec = self._call(PROC_LIST, args)
            page = dec.unpack_array(
                lambda d: d.unpack_uint(), max_items=LIST_PAGE
            )
            dec.done()
            if not page:
                return numbers
            numbers.extend(page)
            start = page[-1] + 1

    def remote_stats(self) -> StoreStats:
        """The *served* store's snapshot (its own counters, not this
        client's), fetched over STATS — what ``store-inspect`` shows
        under a ``remote://`` node."""
        dec = self._call(PROC_STATS)
        payload = json.loads(dec.unpack_string())
        dec.done()
        caps = payload.pop("capabilities", {})
        snap = StoreStats(**payload)
        snap.extra = dict(snap.extra)
        snap.extra["served_thread_safe"] = 1.0 if caps.get(
            "thread_safe") else 0.0
        snap.extra["served_durable"] = 1.0 if caps.get("durable") else 0.0
        return snap

    def describe(self) -> str:
        where = f"{self.endpoint[0]}:{self.endpoint[1]}" if self.endpoint \
            else ""
        workers = f" workers={self.workers}" if self.workers > 1 else ""
        return (
            f"remote://{where}  {self.num_blocks}x{self.block_size}B"
            f"{workers} [{self.remote_description}]"
        )

    def ping(self) -> None:
        """NULL-procedure health check (RPC-level: no v2 envelope)."""
        try:
            self._client.call(0, b"").done()
        except (TransportError, RPCError, OSError) as exc:
            raise StoreUnavailable(f"remote block store failed: {exc}") from exc
