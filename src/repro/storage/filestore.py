"""Host-file block store (``file://<path>``).

Blocks are laid out at ``block_no * block_size`` in a single host file
(sparse where the OS allows), so a store reopened on the same path sees
the blocks a previous process wrote — the persistence story behind
``discfs serve --backend file:///var/lib/discfs.img``.

Geometry lives in a ``<path>.meta`` sidecar: reopening with a different
block size is rejected (it would silently shift every block), and a
reopened store never shrinks below the capacity it was created with —
the same guarantees :class:`~repro.storage.sqlitestore.SQLiteBlockStore`
gets from its meta table.
"""

from __future__ import annotations

import json
import os

from repro.errors import InvalidArgument
from repro.fs.blockdev import DEFAULT_BLOCK_SIZE
from repro.storage.base import BlockStore


class FileBlockStore(BlockStore):
    """Blocks stored in one host file; never-written regions read as zeros."""

    scheme = "file"

    def __init__(
        self, path: str, num_blocks: int = 16384, block_size: int = DEFAULT_BLOCK_SIZE
    ):
        self.path = path
        self._meta_path = path + ".meta"
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if os.path.exists(self._meta_path):
            with open(self._meta_path, "r", encoding="utf-8") as f:
                meta = json.load(f)
            if meta["block_size"] != block_size:
                raise InvalidArgument(
                    f"{path} was created with block size {meta['block_size']}, "
                    f"not {block_size}"
                )
            num_blocks = max(num_blocks, meta["num_blocks"])
        super().__init__(num_blocks, block_size)
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o600)
        # Rewrite the sidecar atomically, and only once the data file is
        # open: a crash mid-write or an open() failure must never leave a
        # truncated/orphaned meta file that poisons every later open.
        tmp_path = self._meta_path + ".tmp"
        try:
            with open(tmp_path, "w", encoding="utf-8") as f:
                json.dump(
                    {"block_size": block_size, "num_blocks": num_blocks}, f
                )
            os.replace(tmp_path, self._meta_path)
        except OSError:
            os.close(self._fd)
            self._fd = -1
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def _get(self, block_no: int) -> bytes | None:
        data = os.pread(self._fd, self.block_size, block_no * self.block_size)
        if not data:
            return None
        if len(data) < self.block_size:
            data = data + b"\x00" * (self.block_size - len(data))
        return data

    def _put(self, block_no: int, data: bytes) -> None:
        os.pwrite(self._fd, data, block_no * self.block_size)

    def flush(self) -> None:
        if self._fd >= 0:
            os.fsync(self._fd)

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def used_blocks(self) -> int:
        """Blocks covered by the file's current extent (upper bound)."""
        if self._fd < 0:
            return 0
        return (os.fstat(self._fd).st_size + self.block_size - 1) // self.block_size

    def describe(self) -> str:
        return f"file://{self.path}  {self.num_blocks}x{self.block_size}B"
