"""Host-file block store (``file://<path>``).

Blocks are laid out at ``block_no * block_size`` in a single host file
(sparse where the OS allows), so a store reopened on the same path sees
the blocks a previous process wrote — the persistence story behind
``discfs serve --backend file:///var/lib/discfs.img``.

Geometry lives in a ``<path>.meta`` sidecar: reopening with a different
block size is rejected (it would silently shift every block), and a
reopened store never shrinks below the capacity it was created with —
the same guarantees :class:`~repro.storage.sqlitestore.SQLiteBlockStore`
gets from its meta table.

Hole detection is explicit: a block is "written" only if this process
wrote it or the block overlaps an allocated data extent of the reopened
file (``SEEK_DATA``/``SEEK_HOLE``), so a hole *below* the file's high
-water mark still reads back as never-written (``None``) rather than as
a zero block that counts as content — the distinction ``replica://``
divergence checks, ``cached://`` introspection and the logical-vs-
physical ablation rely on.  On filesystems without hole information the
scan degrades to the old whole-extent upper bound.
"""

from __future__ import annotations

import errno
import json
import os

from repro.errors import InvalidArgument
from repro.fs.blockdev import DEFAULT_BLOCK_SIZE
from repro.storage.base import BlockStore


class FileBlockStore(BlockStore):
    """Blocks stored in one host file; never-written regions read as zeros."""

    scheme = "file"
    durable = True

    def __init__(
        self, path: str, num_blocks: int = 16384, block_size: int = DEFAULT_BLOCK_SIZE
    ):
        self.path = path
        self._meta_path = path + ".meta"
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if os.path.exists(self._meta_path):
            with open(self._meta_path, "r", encoding="utf-8") as f:
                meta = json.load(f)
            if meta["block_size"] != block_size:
                raise InvalidArgument(
                    f"{path} was created with block size {meta['block_size']}, "
                    f"not {block_size}"
                )
            num_blocks = max(num_blocks, meta["num_blocks"])
        super().__init__(num_blocks, block_size)
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o600)
        self._written = self._scan_written_extents()
        # Rewrite the sidecar atomically, and only once the data file is
        # open: a crash mid-write or an open() failure must never leave a
        # truncated/orphaned meta file that poisons every later open.
        tmp_path = self._meta_path + ".tmp"
        try:
            with open(tmp_path, "w", encoding="utf-8") as f:
                json.dump(
                    {"block_size": block_size, "num_blocks": num_blocks}, f
                )
            os.replace(tmp_path, self._meta_path)
        except OSError:
            os.close(self._fd)
            self._fd = -1
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def _scan_written_extents(self) -> set[int]:
        """Blocks overlapping the file's allocated data extents.

        ``SEEK_DATA``/``SEEK_HOLE`` skips the holes, so a sparse file
        reopened from a previous run reports only regions that were
        actually written (at filesystem-extent granularity).  Where the
        kernel or filesystem offers no hole information the whole
        ``[0, size)`` range counts as data — the pre-scan behaviour.
        """
        size = os.fstat(self._fd).st_size
        if not hasattr(os, "SEEK_DATA"):  # platform without the API
            return set(range((size + self.block_size - 1) // self.block_size))
        written: set[int] = set()
        pos = 0
        while pos < size:
            try:
                start = os.lseek(self._fd, pos, os.SEEK_DATA)
            except OSError as exc:
                if exc.errno == errno.ENXIO:  # no data at or beyond pos
                    return written
                # SEEK_DATA unsupported here: whole extent counts.
                return set(range((size + self.block_size - 1)
                                 // self.block_size))
            end = os.lseek(self._fd, start, os.SEEK_HOLE)
            if end <= start:  # defensive: never loop forever
                return set(range((size + self.block_size - 1)
                                 // self.block_size))
            written.update(range(start // self.block_size,
                                 (end - 1) // self.block_size + 1))
            pos = end
        return written

    def _get(self, block_no: int) -> bytes | None:
        if block_no not in self._written:
            return None  # a hole, even below the file's high-water mark
        data = os.pread(self._fd, self.block_size, block_no * self.block_size)
        if not data:
            return None
        if len(data) < self.block_size:
            data = data + b"\x00" * (self.block_size - len(data))
        return data

    def _put(self, block_no: int, data: bytes) -> None:
        os.pwrite(self._fd, data, block_no * self.block_size)
        self._written.add(block_no)

    def _contains(self, block_no: int) -> bool:
        return block_no in self._written

    def flush(self) -> None:
        if self._fd >= 0:
            os.fsync(self._fd)
            self.stats.record_fsync()

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def used_blocks(self) -> int:
        """Distinct written blocks (extent-granular for reopened files)."""
        if self._fd < 0:
            return 0
        return len(self._written)

    def used_block_numbers(self) -> list[int]:
        if self._fd < 0:
            return []
        return sorted(self._written)

    def describe(self) -> str:
        return f"file://{self.path}  {self.num_blocks}x{self.block_size}B"
