"""Typed storage configuration: ``StoreSpec`` dataclasses and the URI codec.

Four PRs of organic growth configured the storage stack through ad-hoc
string parsing scattered across the registry — fragment peeling here,
per-scheme query handling there, silently ignored options everywhere.
This module is the single typed description of a store topology:

* one :class:`StoreSpec` dataclass per URI scheme (composites hold child
  specs), comparable with ``==`` and safe to diff — which is what the
  control plane's :func:`repro.storage.control.reshard` does with two
  ring layouts;
* :func:`parse_spec` turns any backend URI into a spec, and
  :meth:`StoreSpec.to_uri` renders it back — ``parse_spec(s.to_uri())
  == s`` holds for every spec this module can parse (the property test
  in ``tests/property/test_prop_storage_spec.py`` proves it);
* a programmatic builder API so topologies can be composed without
  string plumbing::

      from repro.storage.spec import shard, remote

      spec = shard(remote("h1:9001"), remote("h2:9001"), fanout=4)
      store = open_store(spec)          # registry builds from specs too

* validation that *names the offending scheme and option*: unknown
  schemes and unknown ``?``/``#`` options raise :class:`SpecError` with
  a difflib suggestion, and the suggestion pool covers every scheme's
  option names, so ``cached://mem://#capasity=8`` points at
  ``#capacity=`` even though the typo lands on the ``mem://`` child.

This module is pure data — it never imports store classes.  Building a
live :class:`~repro.storage.base.BlockStore` from a spec is
:func:`repro.storage.registry.build`'s job.
"""

from __future__ import annotations

import difflib
import os
import re
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Iterator, Union

from repro.errors import InvalidArgument


class SpecError(InvalidArgument):
    """A backend URI or spec that names an unknown scheme or option,
    or fails a scheme's validation rules."""


# ---------------------------------------------------------------------------
# Option plumbing
# ---------------------------------------------------------------------------

#: scheme -> option names that scheme accepts (query or fragment).
#: Populated by ``_register``; the cross-scheme suggestion pool.
OPTIONS_BY_SCHEME: dict[str, frozenset[str]] = {}

#: scheme -> spec class, for parse dispatch.
SPEC_TYPES: dict[str, type["StoreSpec"]] = {}


def _suggest_option(name: str, scheme: str) -> str:
    """A ``did you mean`` hint for a misspelled option, searched first in
    ``scheme``'s own options and then across every scheme's."""
    own = OPTIONS_BY_SCHEME.get(scheme, frozenset())
    close = difflib.get_close_matches(name, sorted(own), n=1)
    if close:
        return f"; did you mean '{close[0]}'?"
    pool = {
        option: owner
        for owner, options in OPTIONS_BY_SCHEME.items()
        for option in options
    }
    close = difflib.get_close_matches(name, sorted(pool), n=1)
    if close:
        return f"; did you mean '{close[0]}' (a {pool[close[0]]}:// option)?"
    return ""


def _parse_pairs(text: str, scheme: str, where: str) -> dict[str, str]:
    """Parse ``key=value&key=value`` strictly (no silent drops)."""
    options: dict[str, str] = {}
    for chunk in text.split("&"):
        if not chunk:
            continue
        key, sep, value = chunk.partition("=")
        if not sep or not key:
            raise SpecError(
                f"{scheme}:// {where} option {chunk!r} is not 'key=value'"
            )
        options[key] = value
    return options


def _check_known(
    options: dict[str, str], known: frozenset[str], scheme: str, where: str
) -> None:
    for name in options:
        if name not in known:
            raise SpecError(
                f"unknown {scheme}:// {where} option {name!r}"
                f"{_suggest_option(name, scheme)} "
                f"(known: {', '.join(sorted(known)) or 'none'})"
            )


def _int_option(options: dict[str, str], name: str, scheme: str) -> int | None:
    if name not in options:
        return None
    try:
        return int(options[name])
    except ValueError:
        raise SpecError(
            f"{scheme}:// option {name}={options[name]!r} is not an integer"
        ) from None


def _float_option(
    options: dict[str, str], name: str, scheme: str
) -> float | None:
    if name not in options:
        return None
    try:
        return float(options[name])
    except ValueError:
        raise SpecError(
            f"{scheme}:// option {name}={options[name]!r} is not a number"
        ) from None


def _bool_option(
    options: dict[str, str], name: str, scheme: str
) -> bool | None:
    if name not in options:
        return None
    value = options[name].lower()
    if value in ("on", "1", "true", "yes"):
        return True
    if value in ("off", "0", "false", "no"):
        return False
    raise SpecError(
        f"{scheme}:// option {name}={options[name]!r} is not on/off"
    )


def _split_query(rest: str, scheme: str, known: frozenset[str]) -> tuple[str, dict[str, str]]:
    """``body?query`` with strict option validation."""
    body, sep, query = rest.partition("?")
    if not sep:
        return body, {}
    options = _parse_pairs(query, scheme, "query")
    _check_known(options, known, scheme, "query")
    return body, options


def _peel_fragment(
    rest: str, scheme: str, known: frozenset[str]
) -> tuple[str, dict[str, str]]:
    """Peel a trailing ``#key=value&...`` fragment off a composite URI.

    A fragment made exclusively of ``known`` keys belongs to this layer
    and is consumed; a fragment sharing *no* keys with this layer passes
    through intact (it belongs to the child URI, whose own parser will
    validate it); a mix is ambiguous and raises, naming the stray keys.
    """
    body, sep, fragment = rest.rpartition("#")
    if not sep or not fragment:
        return rest, {}
    options = _parse_pairs(fragment, scheme, "fragment")
    if not options:
        return rest, {}
    names = set(options)
    if names <= known:
        _check_known(options, known, scheme, "fragment")
        return body, options
    if names & known:
        stray = sorted(names - known)
        hints = "".join(
            # A query option of this same scheme isn't a typo — it's in
            # the wrong half of the URI; don't suggest it to itself.
            f"; {name!r} belongs in the ?query, not the #fragment"
            if name in OPTIONS_BY_SCHEME.get(scheme, frozenset())
            else _suggest_option(name, scheme)
            for name in stray
        )
        raise SpecError(
            f"{scheme}:// fragment mixes its own options with unknown "
            f"{', '.join(repr(s) for s in stray)}{hints} "
            f"(known: {', '.join(sorted(known))})"
        )
    return rest, {}  # belongs to the child URI


def _leaf_fragment_check(rest: str, scheme: str) -> str:
    """Leaf schemes take no fragment: reject one with a suggestion, so a
    typo'd overlay option that slid down to the child is still caught
    (``cached://mem://#capasity=8`` names ``#capacity=``)."""
    body, sep, fragment = rest.rpartition("#")
    if not sep:
        return rest
    options = _parse_pairs(fragment, scheme, "fragment")
    if not options:
        return body
    name = sorted(options)[0]
    raise SpecError(
        f"{scheme}:// takes no #fragment options (got {name!r})"
        f"{_suggest_option(name, scheme)}"
    )


def _encode_options(pairs: list[tuple[str, object]]) -> str:
    """Render the set (non-``None``) options as ``key=value&...``."""
    chunks = []
    for key, value in pairs:
        if value is None:
            continue
        if isinstance(value, bool):
            value = "on" if value else "off"
        chunks.append(f"{key}={value}")
    return "&".join(chunks)


# ---------------------------------------------------------------------------
# The spec classes
# ---------------------------------------------------------------------------


@dataclass
class StoreSpec:
    """Base class: a typed, comparable description of one store layer."""

    #: URI scheme this spec (de)serializes as.
    scheme: ClassVar[str] = ""
    #: Option names this scheme accepts in its query/fragment.
    options: ClassVar[frozenset[str]] = frozenset()

    def children(self) -> list["StoreSpec"]:
        """Child specs, outermost first (empty for leaves)."""
        return []

    def walk(self) -> Iterator["StoreSpec"]:
        """This spec and every descendant, depth-first."""
        yield self
        for child in self.children():
            yield from child.walk()

    def validate(self) -> None:
        """Raise :class:`SpecError` on out-of-range values; recursive."""
        for child in self.children():
            child.validate()

    def to_uri(self) -> str:
        """Render the canonical URI; inverse of :func:`parse_spec`."""
        raise NotImplementedError

    @classmethod
    def parse(cls, rest: str) -> "StoreSpec":
        """Parse everything after ``scheme://`` into a spec."""
        raise NotImplementedError

    # -- shared rendering helpers ------------------------------------------

    def _child_list_uri(self, child_specs: list["StoreSpec"]) -> str:
        """Semicolon-joined child URIs, rejecting shapes the flat list
        grammar cannot express (a nested multi-child composite would be
        re-split at the parent's semicolons)."""
        rendered = [child.to_uri() for child in child_specs]
        for uri in rendered:
            if ";" in uri:
                raise SpecError(
                    f"{self.scheme}:// cannot express child {uri!r} in a "
                    "semicolon list (nested multi-child composites have "
                    "no URI form; pass the spec object instead)"
                )
        return ";".join(rendered)

    def _with_fragment(self, body: str, pairs: list[tuple[str, object]]) -> str:
        """Append ``#key=value`` options; reject ambiguous shapes where
        an option-less composite would re-parse the child's trailing
        fragment as its own."""
        encoded = _encode_options(pairs)
        if encoded:
            return f"{self.scheme}://{body}#{encoded}"
        head, sep, fragment = body.rpartition("#")
        if sep and fragment:
            trailing = _parse_pairs(fragment, self.scheme, "fragment")
            if trailing and set(trailing) & self.options:
                raise SpecError(
                    f"{self.scheme}:// with no options of its own cannot "
                    f"be rendered over a child ending in #{fragment!r} "
                    "(the fragment would re-parse as this layer's; pass "
                    "the spec object instead)"
                )
        return f"{self.scheme}://{body}"


@dataclass
class MemSpec(StoreSpec):
    """``mem://`` — in-memory store.  Options: ``?blocks=N&bs=N``."""

    scheme: ClassVar[str] = "mem"
    options: ClassVar[frozenset[str]] = frozenset({"blocks", "bs"})

    blocks: int | None = None
    bs: int | None = None

    def validate(self) -> None:
        _validate_geometry(self)

    def to_uri(self) -> str:
        query = _encode_options([("blocks", self.blocks), ("bs", self.bs)])
        return f"mem://?{query}" if query else "mem://"

    @classmethod
    def parse(cls, rest: str) -> "MemSpec":
        rest = _leaf_fragment_check(rest, cls.scheme)
        body, options = _split_query(rest, cls.scheme, cls.options)
        if body:
            raise SpecError(f"mem:// takes no path (got {body!r})")
        spec = cls(
            blocks=_int_option(options, "blocks", cls.scheme),
            bs=_int_option(options, "bs", cls.scheme),
        )
        spec.validate()
        return spec


def _validate_geometry(spec: "MemSpec | FileSpec | SqliteSpec") -> None:
    if spec.blocks is not None and spec.blocks <= 0:
        raise SpecError(
            f"{spec.scheme}:// option blocks={spec.blocks} must be positive"
        )
    if spec.bs is not None and (spec.bs <= 0 or spec.bs % 512):
        raise SpecError(
            f"{spec.scheme}:// option bs={spec.bs} must be a positive "
            "multiple of 512"
        )


@dataclass
class FileSpec(StoreSpec):
    """``file://<path>`` — one host file.  Options: ``?blocks=N&bs=N``."""

    scheme: ClassVar[str] = "file"
    options: ClassVar[frozenset[str]] = frozenset({"blocks", "bs"})

    path: str = ""
    blocks: int | None = None
    bs: int | None = None

    def validate(self) -> None:
        if not self.path:
            raise SpecError(
                "file:// needs a path, e.g. file:///tmp/fs.img"
            )
        _validate_geometry(self)

    def to_uri(self) -> str:
        query = _encode_options([("blocks", self.blocks), ("bs", self.bs)])
        return f"file://{self.path}?{query}" if query else f"file://{self.path}"

    @classmethod
    def parse(cls, rest: str) -> "FileSpec":
        rest = _leaf_fragment_check(rest, cls.scheme)
        body, options = _split_query(rest, cls.scheme, cls.options)
        spec = cls(
            path=body,
            blocks=_int_option(options, "blocks", cls.scheme),
            bs=_int_option(options, "bs", cls.scheme),
        )
        spec.validate()
        return spec


@dataclass
class SqliteSpec(StoreSpec):
    """``sqlite://<path>`` — SQLite database file (``:memory:`` works)."""

    scheme: ClassVar[str] = "sqlite"
    options: ClassVar[frozenset[str]] = frozenset({"blocks", "bs"})

    path: str = ""
    blocks: int | None = None
    bs: int | None = None

    def validate(self) -> None:
        if not self.path:
            raise SpecError(
                "sqlite:// needs a path, e.g. sqlite:///tmp/fs.db"
            )
        _validate_geometry(self)

    def to_uri(self) -> str:
        query = _encode_options([("blocks", self.blocks), ("bs", self.bs)])
        return (f"sqlite://{self.path}?{query}" if query
                else f"sqlite://{self.path}")

    @classmethod
    def parse(cls, rest: str) -> "SqliteSpec":
        rest = _leaf_fragment_check(rest, cls.scheme)
        body, options = _split_query(rest, cls.scheme, cls.options)
        spec = cls(
            path=body,
            blocks=_int_option(options, "blocks", cls.scheme),
            bs=_int_option(options, "bs", cls.scheme),
        )
        spec.validate()
        return spec


#: Rights a ``remote://``/session mount may request.
_SESSION_RIGHTS = ("r", "rw", "admin")


@dataclass
class RemoteSpec(StoreSpec):
    """``remote://<host>:<port>`` — client for a served block store.

    Query options: ``?timeout=SECONDS&batch=on|off&workers=N``.
    Fragment options authenticate the mount against a credential-gated
    server: ``#cred=FILE&key=FILE&tenant=NAME&rights=r|rw|admin``
    (``cred`` holds KeyNote credentials, ``key`` the private key that
    signs the session challenge).
    """

    scheme: ClassVar[str] = "remote"
    query_options: ClassVar[frozenset[str]] = frozenset(
        {"timeout", "batch", "workers"}
    )
    fragment_options: ClassVar[frozenset[str]] = frozenset(
        {"cred", "key", "tenant", "rights"}
    )
    options: ClassVar[frozenset[str]] = query_options | fragment_options

    host: str = ""
    port: int = 0
    timeout: float | None = None
    batch: bool | None = None
    workers: int | None = None
    cred: str | None = None
    key: str | None = None
    tenant: str | None = None
    rights: str | None = None

    def validate(self) -> None:
        if not self.host or not 0 < self.port < 65536:
            raise SpecError(
                f"remote:// needs host:port (got {self.host!r}:{self.port}), "
                "e.g. remote://127.0.0.1:9001"
            )
        if self.workers is not None and self.workers < 1:
            raise SpecError(
                f"remote:// option workers={self.workers} must be at least 1"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise SpecError(
                f"remote:// option timeout={self.timeout} must be positive"
            )
        if self.cred is not None and self.key is None:
            raise SpecError(
                "remote:// option cred= needs key= (the private key that "
                "signs the session challenge)"
            )
        if self.key is None and (self.tenant is not None
                                 or self.rights is not None):
            raise SpecError(
                "remote:// options tenant=/rights= need key= "
                "(an authenticated session to apply to)"
            )
        if self.rights is not None and self.rights not in _SESSION_RIGHTS:
            raise SpecError(
                f"remote:// option rights={self.rights!r} must be one of "
                f"{', '.join(_SESSION_RIGHTS)}"
            )

    def to_uri(self) -> str:
        query = _encode_options([
            ("timeout", self.timeout), ("batch", self.batch),
            ("workers", self.workers),
        ])
        fragment = _encode_options([
            ("cred", self.cred), ("key", self.key),
            ("tenant", self.tenant), ("rights", self.rights),
        ])
        uri = f"remote://{self.host}:{self.port}"
        if query:
            uri += f"?{query}"
        if fragment:
            uri += f"#{fragment}"
        return uri

    @classmethod
    def parse(cls, rest: str) -> "RemoteSpec":
        rest, fragment = _peel_fragment(rest, cls.scheme,
                                        cls.fragment_options)
        head, sep, stray = rest.rpartition("#")
        if sep:
            stray_options = _parse_pairs(stray, cls.scheme, "fragment")
            if stray_options:
                name = sorted(stray_options)[0]
                if name in cls.query_options:
                    raise SpecError(
                        f"remote:// option {name!r} belongs in the ?query, "
                        f"not the #fragment (write "
                        f"remote://host:port?{name}=...; the #fragment "
                        "carries session options: "
                        f"{', '.join(sorted(cls.fragment_options))})"
                    )
                raise SpecError(
                    f"unknown remote:// fragment option {name!r}"
                    f"{_suggest_option(name, cls.scheme)} (fragment options: "
                    f"{', '.join(sorted(cls.fragment_options))})"
                )
            rest = head
        body, options = _split_query(rest, cls.scheme, cls.query_options)
        host, sep, port = body.rpartition(":")
        if not sep or not host or not port.isdigit():
            raise SpecError(
                f"remote:// needs host:port (got {body!r}), "
                "e.g. remote://127.0.0.1:9001"
            )
        spec = cls(
            host=host,
            port=int(port),
            timeout=_float_option(options, "timeout", cls.scheme),
            batch=_bool_option(options, "batch", cls.scheme),
            workers=_int_option(options, "workers", cls.scheme),
            cred=fragment.get("cred"),
            key=fragment.get("key"),
            tenant=fragment.get("tenant"),
            rights=fragment.get("rights"),
        )
        spec.validate()
        return spec


#: base=... values the shard/replica count forms expand children from.
_COUNT_BASES = ("mem", "file", "sqlite")


def _expand_count_children(
    scheme: str, prefix: str, n: int, options: dict[str, str]
) -> list[StoreSpec]:
    """Children for ``shard://<n>`` / ``replica://<n>``: ``?base=`` picks
    the child scheme, ``?dir=`` the directory for path-addressed ones,
    and ``?blocks=&bs=`` ride down onto each child."""
    if n <= 0:
        raise SpecError(f"{scheme}:// count must be positive (got {n})")
    base = options.get("base", "mem")
    directory = options.get("dir", "")
    blocks = _int_option(options, "blocks", scheme)
    bs = _int_option(options, "bs", scheme)
    if base not in _COUNT_BASES:
        close = difflib.get_close_matches(base, _COUNT_BASES, n=1)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        raise SpecError(
            f"unknown {scheme}:// base {base!r}{hint} "
            f"(known: {', '.join(_COUNT_BASES)})"
        )
    children: list[StoreSpec] = []
    for i in range(n):
        if base == "mem":
            children.append(MemSpec(blocks=blocks, bs=bs))
            continue
        if not directory:
            raise SpecError(
                f"{scheme}://{n}?base={base} needs &dir=PATH for child files"
            )
        ext = "blk" if base == "file" else "db"
        path = os.path.join(directory, f"{prefix}-{i}.{ext}")
        spec_cls = FileSpec if base == "file" else SqliteSpec
        children.append(spec_cls(path=path, blocks=blocks, bs=bs))
    return children


def _parse_child_list(body: str, scheme: str) -> list[StoreSpec]:
    children = [parse_spec(u) for u in body.split(";") if u]
    if not children:
        raise SpecError(f"{scheme}:// needs at least one child URI")
    return children


@dataclass
class ShardSpec(StoreSpec):
    """``shard://`` — consistent-hash ring over child stores.

    URI forms: ``shard://<n>[?base=&dir=&fanout=&blocks=&bs=]`` (count
    form, expanded to explicit children at parse time) and
    ``shard://<uri>;<uri>;...[#fanout=N]``.
    """

    scheme: ClassVar[str] = "shard"
    options: ClassVar[frozenset[str]] = frozenset(
        {"base", "dir", "fanout", "blocks", "bs"}
    )
    #: the subset valid on the explicit-children fragment
    fragment_options: ClassVar[frozenset[str]] = frozenset({"fanout"})

    shards: list[StoreSpec] = field(default_factory=list)
    fanout: int | None = None

    def children(self) -> list[StoreSpec]:
        return list(self.shards)

    def validate(self) -> None:
        if not self.shards:
            raise SpecError("shard:// needs at least one child store")
        if self.fanout is not None and self.fanout < 1:
            raise SpecError(
                f"shard:// option fanout={self.fanout} must be at least 1"
            )
        super().validate()

    def to_uri(self) -> str:
        return self._with_fragment(
            self._child_list_uri(self.shards), [("fanout", self.fanout)]
        )

    @classmethod
    def parse(cls, rest: str) -> "ShardSpec":
        if "://" in rest:
            body, options = _peel_fragment(rest, cls.scheme,
                                           cls.fragment_options)
            spec = cls(
                shards=_parse_child_list(body, cls.scheme),
                fanout=_int_option(options, "fanout", cls.scheme),
            )
            spec.validate()
            return spec
        body, options = _split_query(rest, cls.scheme, cls.options)
        try:
            n = int(body)
        except ValueError:
            raise SpecError(
                f"shard:// needs a shard count or child URIs (got {rest!r})"
            ) from None
        spec = cls(
            shards=_expand_count_children(cls.scheme, "shard", n, options),
            fanout=_int_option(options, "fanout", cls.scheme),
        )
        spec.validate()
        return spec


@dataclass
class ReplicaSpec(StoreSpec):
    """``replica://`` — quorum replication over child stores.

    URI forms: ``replica://<n>[?w=&r=&fanout=&hedge_ms=&stamps=&base=&
    dir=&blocks=&bs=]`` (count form), ``replica://<n>/<child-template>``
    (``{i}`` = replica index) and ``replica://<uri>;<uri>;...`` — the
    template and explicit forms carry options in the fragment
    (``#w=2&r=2&fanout=N&hedge_ms=5&stamps=/path``).
    """

    scheme: ClassVar[str] = "replica"
    options: ClassVar[frozenset[str]] = frozenset(
        {"w", "r", "fanout", "hedge_ms", "stamps", "base", "dir",
         "blocks", "bs"}
    )
    fragment_options: ClassVar[frozenset[str]] = frozenset(
        {"w", "r", "fanout", "hedge_ms", "stamps"}
    )

    replicas: list[StoreSpec] = field(default_factory=list)
    w: int | None = None
    r: int | None = None
    fanout: int | None = None
    hedge_ms: float | None = None
    stamps: str | None = None

    def children(self) -> list[StoreSpec]:
        return list(self.replicas)

    def validate(self) -> None:
        n = len(self.replicas)
        if n == 0:
            raise SpecError("replica:// needs at least one child store")
        if self.w is not None and not 1 <= self.w <= n:
            raise SpecError(
                f"replica:// write quorum w={self.w} outside 1..{n}"
            )
        if self.r is not None and not 1 <= self.r <= n:
            raise SpecError(
                f"replica:// read quorum r={self.r} outside 1..{n}"
            )
        if self.fanout is not None and self.fanout < 1:
            raise SpecError(
                f"replica:// option fanout={self.fanout} must be at least 1"
            )
        if self.hedge_ms is not None and self.hedge_ms < 0:
            raise SpecError(
                f"replica:// option hedge_ms={self.hedge_ms} must be >= 0"
            )
        super().validate()

    def _option_pairs(self) -> list[tuple[str, object]]:
        return [
            ("w", self.w), ("r", self.r), ("fanout", self.fanout),
            ("hedge_ms", self.hedge_ms), ("stamps", self.stamps),
        ]

    def to_uri(self) -> str:
        return self._with_fragment(
            self._child_list_uri(self.replicas), self._option_pairs()
        )

    @classmethod
    def _from_options(
        cls, children: list[StoreSpec], options: dict[str, str]
    ) -> "ReplicaSpec":
        spec = cls(
            replicas=children,
            w=_int_option(options, "w", cls.scheme),
            r=_int_option(options, "r", cls.scheme),
            fanout=_int_option(options, "fanout", cls.scheme),
            hedge_ms=_float_option(options, "hedge_ms", cls.scheme),
            stamps=options.get("stamps"),
        )
        spec.validate()
        return spec

    @classmethod
    def parse(cls, rest: str) -> "ReplicaSpec":
        body, options = _peel_fragment(rest, cls.scheme,
                                       cls.fragment_options)
        template_match = re.match(r"^(\d+)/(.+)$", body)
        if template_match and "://" in template_match.group(2):
            n = int(template_match.group(1))
            if n <= 0:
                raise SpecError(
                    f"replica:// count must be positive (got {n})"
                )
            template = template_match.group(2)
            children: list[StoreSpec] = [
                parse_spec(template.replace("{i}", str(i))) for i in range(n)
            ]
            return cls._from_options(children, options)
        if "://" in body:
            return cls._from_options(
                _parse_child_list(body, cls.scheme), options
            )
        # count form: options live in the query (fragment also accepted)
        count, qoptions = _split_query(body, cls.scheme, cls.options)
        options = {**qoptions, **options}
        try:
            n = int(count)
        except ValueError:
            raise SpecError(
                f"replica:// needs a count or child URIs (got {rest!r})"
            ) from None
        return cls._from_options(
            _expand_count_children(cls.scheme, "replica", n, options), options
        )


@dataclass
class _WrapperSpec(StoreSpec):
    """Shared machinery for single-child overlay schemes."""

    child: StoreSpec = field(default_factory=MemSpec)

    def children(self) -> list[StoreSpec]:
        return [self.child]

    def _option_pairs(self) -> list[tuple[str, object]]:
        return []

    def to_uri(self) -> str:
        return self._with_fragment(self.child.to_uri(), self._option_pairs())

    @classmethod
    def _parse_child(cls, rest: str) -> tuple[StoreSpec, dict[str, str]]:
        body, options = _peel_fragment(rest, cls.scheme, cls.options)
        if not body:
            raise SpecError(
                f"{cls.scheme}:// needs a child URI, "
                f"e.g. {cls.scheme}://mem://"
            )
        return parse_spec(body), options


@dataclass
class CachedSpec(_WrapperSpec):
    """``cached://<child>[#capacity=N]`` — write-back LRU overlay."""

    scheme: ClassVar[str] = "cached"
    options: ClassVar[frozenset[str]] = frozenset({"capacity"})

    capacity: int | None = None

    def validate(self) -> None:
        if self.capacity is not None and self.capacity <= 0:
            raise SpecError(
                f"cached:// option capacity={self.capacity} must be positive"
            )
        super().validate()

    def _option_pairs(self) -> list[tuple[str, object]]:
        return [("capacity", self.capacity)]

    @classmethod
    def parse(cls, rest: str) -> "CachedSpec":
        child, options = cls._parse_child(rest)
        spec = cls(child=child,
                   capacity=_int_option(options, "capacity", cls.scheme))
        spec.validate()
        return spec


@dataclass
class MeteredSpec(_WrapperSpec):
    """``metered://<child>[#slow_ms=F&ring=N]`` — latency instrumentation.

    ``slow_ms`` sets the slow-op threshold (flagged on spans, counted in
    ``slow_ops``); ``ring`` resizes the process-wide trace ring buffer.
    """

    scheme: ClassVar[str] = "metered"
    options: ClassVar[frozenset[str]] = frozenset({"slow_ms", "ring"})

    slow_ms: float | None = None
    ring: int | None = None

    def validate(self) -> None:
        if self.slow_ms is not None and self.slow_ms < 0:
            raise SpecError(
                f"metered:// option slow_ms={self.slow_ms:g} must be >= 0"
            )
        if self.ring is not None and self.ring <= 0:
            raise SpecError(
                f"metered:// option ring={self.ring} must be positive"
            )
        super().validate()

    def _option_pairs(self) -> list[tuple[str, object]]:
        return [("slow_ms", self.slow_ms), ("ring", self.ring)]

    @classmethod
    def parse(cls, rest: str) -> "MeteredSpec":
        child, options = cls._parse_child(rest)
        spec = cls(child=child,
                   slow_ms=_float_option(options, "slow_ms", cls.scheme),
                   ring=_int_option(options, "ring", cls.scheme))
        spec.validate()
        return spec


@dataclass
class FailingSpec(_WrapperSpec):
    """``failing://<child>[#fail=1]`` — injectable outage wrapper."""

    scheme: ClassVar[str] = "failing"
    options: ClassVar[frozenset[str]] = frozenset({"fail"})

    fail: bool | None = None

    def _option_pairs(self) -> list[tuple[str, object]]:
        # fail is rendered 1/0 (not on/off) to match the documented form.
        return [("fail", {True: "1", False: "0", None: None}[self.fail])]

    @classmethod
    def parse(cls, rest: str) -> "FailingSpec":
        child, options = cls._parse_child(rest)
        fail: bool | None = None
        if "fail" in options:
            fail = _bool_option(options, "fail", cls.scheme)
        spec = cls(child=child, fail=fail)
        spec.validate()
        return spec


@dataclass
class JournalSpec(_WrapperSpec):
    """``journal://<child>[#cap=N&path=P]`` — write-ahead intent log."""

    scheme: ClassVar[str] = "journal"
    options: ClassVar[frozenset[str]] = frozenset({"cap", "path"})

    cap: int | None = None
    path: str | None = None

    def validate(self) -> None:
        if self.cap is not None and self.cap <= 0:
            raise SpecError(
                f"journal:// option cap={self.cap} must be positive"
            )
        super().validate()

    def _option_pairs(self) -> list[tuple[str, object]]:
        return [("cap", self.cap), ("path", self.path)]

    @classmethod
    def parse(cls, rest: str) -> "JournalSpec":
        child, options = cls._parse_child(rest)
        spec = cls(
            child=child,
            cap=_int_option(options, "cap", cls.scheme),
            path=options.get("path"),
        )
        spec.validate()
        return spec


@dataclass
class LazySpec(_WrapperSpec):
    """``lazy://<child>[#retry=S]`` — defer/retry opening the child."""

    scheme: ClassVar[str] = "lazy"
    options: ClassVar[frozenset[str]] = frozenset({"retry"})

    retry: float | None = None

    def validate(self) -> None:
        if self.retry is not None and self.retry < 0:
            raise SpecError(
                f"lazy:// option retry={self.retry} must be >= 0"
            )
        super().validate()

    def _option_pairs(self) -> list[tuple[str, object]]:
        return [("retry", self.retry)]

    @classmethod
    def parse(cls, rest: str) -> "LazySpec":
        child, options = cls._parse_child(rest)
        spec = cls(child=child,
                   retry=_float_option(options, "retry", cls.scheme))
        spec.validate()
        return spec


@dataclass
class SlowSpec(_WrapperSpec):
    """``slow://<child>[#ms=N]`` — injectable per-operation delay."""

    scheme: ClassVar[str] = "slow"
    options: ClassVar[frozenset[str]] = frozenset({"ms"})

    ms: float | None = None

    def validate(self) -> None:
        if self.ms is not None and self.ms < 0:
            raise SpecError(f"slow:// option ms={self.ms} must be >= 0")
        super().validate()

    def _option_pairs(self) -> list[tuple[str, object]]:
        return [("ms", self.ms)]

    @classmethod
    def parse(cls, rest: str) -> "SlowSpec":
        child, options = cls._parse_child(rest)
        spec = cls(child=child, ms=_float_option(options, "ms", cls.scheme))
        spec.validate()
        return spec


@dataclass
class TenantSpec(_WrapperSpec):
    """``tenant://<child>#name=N[&offset=&blocks=&quota=&bytes=&rate=&burst=]``
    — a named, quota/rate-limited window onto a region of the child.

    ``offset``/``blocks`` carve the region (defaults: 0 / the rest of
    the child); ``quota`` caps distinct blocks written, ``bytes`` the
    cumulative write budget, ``rate`` ops/second with burst ``burst``.
    """

    scheme: ClassVar[str] = "tenant"
    options: ClassVar[frozenset[str]] = frozenset(
        {"name", "offset", "blocks", "quota", "bytes", "rate", "burst"}
    )

    name: str | None = None
    offset: int | None = None
    blocks: int | None = None
    quota: int | None = None
    bytes: int | None = None
    rate: float | None = None
    burst: float | None = None

    def validate(self) -> None:
        if not self.name:
            raise SpecError(
                "tenant:// needs #name=..., e.g. tenant://mem://#name=alice"
            )
        if self.offset is not None and self.offset < 0:
            raise SpecError(
                f"tenant:// option offset={self.offset} must be >= 0"
            )
        for label, value in (("blocks", self.blocks), ("quota", self.quota),
                             ("bytes", self.bytes)):
            if value is not None and value <= 0:
                raise SpecError(
                    f"tenant:// option {label}={value} must be positive"
                )
        for label, fvalue in (("rate", self.rate), ("burst", self.burst)):
            if fvalue is not None and fvalue <= 0:
                raise SpecError(
                    f"tenant:// option {label}={fvalue} must be positive"
                )
        if self.burst is not None and self.rate is None:
            raise SpecError("tenant:// option burst= needs rate=")
        super().validate()

    def _option_pairs(self) -> list[tuple[str, object]]:
        return [("name", self.name), ("offset", self.offset),
                ("blocks", self.blocks), ("quota", self.quota),
                ("bytes", self.bytes), ("rate", self.rate),
                ("burst", self.burst)]

    @classmethod
    def parse(cls, rest: str) -> "TenantSpec":
        child, options = cls._parse_child(rest)
        spec = cls(
            child=child,
            name=options.get("name"),
            offset=_int_option(options, "offset", cls.scheme),
            blocks=_int_option(options, "blocks", cls.scheme),
            quota=_int_option(options, "quota", cls.scheme),
            bytes=_int_option(options, "bytes", cls.scheme),
            rate=_float_option(options, "rate", cls.scheme),
            burst=_float_option(options, "burst", cls.scheme),
        )
        spec.validate()
        return spec


@dataclass
class OpaqueSpec(StoreSpec):
    """A scheme registered through the legacy ``register_scheme(scheme,
    factory)`` hook: the registry knows how to build it, but its option
    grammar is the factory's own, so the spec layer carries the raw
    ``rest`` string opaquely (round-tripping verbatim)."""

    scheme_name: str = ""
    rest: str = ""

    def to_uri(self) -> str:
        return f"{self.scheme_name}://{self.rest}"


# ---------------------------------------------------------------------------
# Parse dispatch
# ---------------------------------------------------------------------------


def _register(cls: type[StoreSpec]) -> None:
    SPEC_TYPES[cls.scheme] = cls
    OPTIONS_BY_SCHEME[cls.scheme] = cls.options


for _cls in (MemSpec, FileSpec, SqliteSpec, ShardSpec, CachedSpec,
             RemoteSpec, ReplicaSpec, FailingSpec, JournalSpec, LazySpec,
             SlowSpec, TenantSpec, MeteredSpec):
    _register(_cls)


def split_uri(uri: str) -> tuple[str, str]:
    """Split ``scheme://rest`` (SpecError if malformed)."""
    scheme, sep, rest = uri.partition("://")
    if not sep or not scheme:
        raise SpecError(
            f"backend URI {uri!r} must look like '<scheme>://...'"
        )
    return scheme, rest


#: Callback the registry installs so parse_spec can recognize legacy
#: factory-registered schemes without importing the registry (which
#: imports store classes).
_legacy_schemes: Callable[[], tuple[str, ...]] = lambda: ()


def _install_legacy_schemes(hook: Callable[[], tuple[str, ...]]) -> None:
    global _legacy_schemes
    _legacy_schemes = hook


def known_schemes() -> tuple[str, ...]:
    """Every scheme :func:`parse_spec` resolves to a typed spec."""
    return tuple(sorted(SPEC_TYPES))


SpecLike = Union[StoreSpec, str]


def parse_spec(uri: SpecLike) -> StoreSpec:
    """Parse a backend URI into its typed :class:`StoreSpec`.

    A spec passed in is validated and returned as-is, so every API that
    takes a URI string transparently takes specs too.
    """
    if isinstance(uri, StoreSpec):
        uri.validate()
        return uri
    scheme, rest = split_uri(uri)
    # A factory registered through the legacy hook wins even over a
    # built-in scheme: register_scheme has always meant "register OR
    # REPLACE", and replacement would be silently ignored if the typed
    # spec were consulted first.
    if scheme in _legacy_schemes():
        return OpaqueSpec(scheme_name=scheme, rest=rest)
    spec_cls = SPEC_TYPES.get(scheme)
    if spec_cls is None:
        pool = sorted(set(known_schemes()) | set(_legacy_schemes()))
        close = difflib.get_close_matches(scheme, pool, n=1)
        hint = f"did you mean {close[0]!r}? " if close else ""
        raise SpecError(
            f"unknown storage scheme {scheme!r}; {hint}"
            f"registered: {', '.join(pool)}"
        )
    return spec_cls.parse(rest)


# ---------------------------------------------------------------------------
# Builder API
# ---------------------------------------------------------------------------


def _coerce(child: SpecLike) -> StoreSpec:
    return parse_spec(child)


def mem(blocks: int | None = None, bs: int | None = None) -> MemSpec:
    """In-memory store spec."""
    return MemSpec(blocks=blocks, bs=bs)


def file(path: str, blocks: int | None = None,
         bs: int | None = None) -> FileSpec:
    """Host-file store spec."""
    return FileSpec(path=path, blocks=blocks, bs=bs)


def sqlite(path: str, blocks: int | None = None,
           bs: int | None = None) -> SqliteSpec:
    """SQLite store spec."""
    return SqliteSpec(path=path, blocks=blocks, bs=bs)


def remote(endpoint: str, *, timeout: float | None = None,
           batch: bool | None = None,
           workers: int | None = None,
           cred: str | None = None,
           key: str | None = None,
           tenant_name: str | None = None,
           rights: str | None = None) -> RemoteSpec:
    """Remote node spec from an ``"host:port"`` endpoint.

    ``cred``/``key``/``tenant_name``/``rights`` authenticate the mount
    against a credential-gated server (the ``#cred=&key=`` fragment).
    """
    host, sep, port = endpoint.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise SpecError(
            f"remote() needs 'host:port' (got {endpoint!r})"
        )
    spec = RemoteSpec(host=host, port=int(port), timeout=timeout,
                      batch=batch, workers=workers, cred=cred, key=key,
                      tenant=tenant_name, rights=rights)
    spec.validate()
    return spec


def tenant(child: SpecLike, name: str, *, offset: int | None = None,
           blocks: int | None = None, quota: int | None = None,
           byte_budget: int | None = None, rate: float | None = None,
           burst: float | None = None) -> TenantSpec:
    """Per-tenant windowed/limited view spec over ``child``."""
    spec = TenantSpec(child=_coerce(child), name=name, offset=offset,
                      blocks=blocks, quota=quota, bytes=byte_budget,
                      rate=rate, burst=burst)
    spec.validate()
    return spec


def shard(*children: SpecLike, fanout: int | None = None) -> ShardSpec:
    """Consistent-hash ring spec over ``children`` (specs or URIs)."""
    spec = ShardSpec(shards=[_coerce(c) for c in children], fanout=fanout)
    spec.validate()
    return spec


def replica(*children: SpecLike, w: int | None = None, r: int | None = None,
            fanout: int | None = None, hedge_ms: float | None = None,
            stamps: str | None = None) -> ReplicaSpec:
    """Quorum-replication spec over ``children`` (specs or URIs)."""
    spec = ReplicaSpec(replicas=[_coerce(c) for c in children], w=w, r=r,
                       fanout=fanout, hedge_ms=hedge_ms, stamps=stamps)
    spec.validate()
    return spec


def cached(child: SpecLike, capacity: int | None = None) -> CachedSpec:
    """Write-back LRU overlay spec."""
    spec = CachedSpec(child=_coerce(child), capacity=capacity)
    spec.validate()
    return spec


def metered(child: SpecLike, slow_ms: float | None = None,
            ring: int | None = None) -> MeteredSpec:
    """Latency-instrumentation overlay spec."""
    spec = MeteredSpec(child=_coerce(child), slow_ms=slow_ms, ring=ring)
    spec.validate()
    return spec


def journal(child: SpecLike, cap: int | None = None,
            path: str | None = None) -> JournalSpec:
    """Write-ahead journal overlay spec."""
    spec = JournalSpec(child=_coerce(child), cap=cap, path=path)
    spec.validate()
    return spec


def lazy(child: SpecLike, retry: float | None = None) -> LazySpec:
    """Lazy/retrying-connect overlay spec."""
    spec = LazySpec(child=_coerce(child), retry=retry)
    spec.validate()
    return spec


def slow(child: SpecLike, ms: float | None = None) -> SlowSpec:
    """Injectable-delay overlay spec."""
    spec = SlowSpec(child=_coerce(child), ms=ms)
    spec.validate()
    return spec


def failing(child: SpecLike, fail: bool | None = None) -> FailingSpec:
    """Injectable-outage overlay spec."""
    spec = FailingSpec(child=_coerce(child), fail=fail)
    spec.validate()
    return spec
