"""Process-wide metrics: counters, gauges, log-bucketed histograms.

Everything here is lock-guarded and safe to update from any thread —
these are the "atomic counters" the storage layers route concurrent
increments through (plain ``x += 1`` on a shared int is a lost-update
bug under the worker pools).  A single process-wide
:class:`MetricsRegistry` (via :func:`get_registry`) is shared by the
``metered://`` store wrapper, the RPC server's per-proc timers and the
journal's fsync timer; ``store-serve --metrics-port`` exposes it over
HTTP (see :mod:`repro.obs.exposition`).

Histograms are log-bucketed: bounds grow geometrically by ``2**0.25``
(~19% per bucket) from 1µs to ~3 minutes, so quantile readback
(:meth:`Histogram.quantile`) is exact to bucket resolution across six
decades of latency at a fixed 112-slot footprint.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]

#: Geometric bucket bounds in seconds: 1µs · 2**(i/4), i = 0..111
#: (last bound ≈ 228s).  One extra implicit +Inf bucket catches the rest.
BUCKET_BOUNDS: tuple[float, ...] = tuple(1e-6 * 2 ** (i / 4) for i in range(112))


class Counter:
    """Monotonic counter; :meth:`inc` is atomic under its lock."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depths, connection counts)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Log-bucketed latency distribution with quantile readback.

    ``record()`` takes seconds; quantiles come back in seconds too.
    Counts land in the geometric buckets of :data:`BUCKET_BOUNDS`
    (exact min/max/sum are kept on the side), so ``quantile(0.99)`` is
    correct to one bucket width (~19%) regardless of sample count.
    """

    __slots__ = ("name", "_lock", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0:
            seconds = 0.0
        idx = bisect_left(BUCKET_BOUNDS, seconds)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += seconds
            if seconds < self._min:
                self._min = seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile in seconds (0 when nothing was recorded).

        Walks cumulative bucket counts to the target rank and returns
        that bucket's upper bound, clamped to the exact observed
        min/max so single-sample and tail readings stay truthful.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self._count:
                return 0.0
            rank = max(1, round(q * self._count))
            seen = 0
            for idx, n in enumerate(self._counts):
                seen += n
                if seen >= rank:
                    if idx >= len(BUCKET_BOUNDS):
                        return self._max
                    bound = BUCKET_BOUNDS[idx]
                    return min(max(bound, self._min), self._max)
            return self._max

    def percentiles(self) -> dict[str, float]:
        """The standard p50/p95/p99 readback, in seconds."""
        return {"p50": self.quantile(0.50), "p95": self.quantile(0.95), "p99": self.quantile(0.99)}

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style.

        The final pair uses ``inf`` as the bound and equals ``count``.
        """
        with self._lock:
            out: list[tuple[float, int]] = []
            seen = 0
            for bound, n in zip(BUCKET_BOUNDS, self._counts):
                seen += n
                out.append((bound, seen))
            out.append((float("inf"), self._count))
            return out


Instrument = Counter | Gauge | Histogram


def _prom_name(name: str) -> str:
    """Sanitize to the Prometheus metric-name alphabet ([a-zA-Z0-9_:])."""
    cleaned = "".join(c if c.isalnum() or c in "_:" else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


class MetricsRegistry:
    """Named instruments, created on first use and shared thereafter.

    ``registry.histogram("rpc:server:WRITE:service")`` returns the same
    object from every thread, so call sites never coordinate creation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Instrument] = {}

    def _get_or_create(self, name: str, cls: type) -> Instrument:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = cls(name)
            elif not isinstance(inst, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {type(inst).__name__}, "
                    f"not {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        inst = self._get_or_create(name, Counter)
        assert isinstance(inst, Counter)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._get_or_create(name, Gauge)
        assert isinstance(inst, Gauge)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._get_or_create(name, Histogram)
        assert isinstance(inst, Histogram)
        return inst

    def instruments(self) -> dict[str, Instrument]:
        with self._lock:
            return dict(self._instruments)

    def reset(self) -> None:
        """Drop every instrument (tests and bench phases only)."""
        with self._lock:
            self._instruments.clear()

    def to_dict(self) -> dict[str, dict[str, float | int | str]]:
        """JSON-friendly snapshot served at ``/metrics.json``."""
        out: dict[str, dict[str, float | int | str]] = {}
        for name, inst in sorted(self.instruments().items()):
            if isinstance(inst, Counter):
                out[name] = {"type": "counter", "value": inst.value}
            elif isinstance(inst, Gauge):
                out[name] = {"type": "gauge", "value": inst.value}
            else:
                pct = inst.percentiles()
                out[name] = {
                    "type": "histogram",
                    "count": inst.count,
                    "sum": inst.sum,
                    "mean": inst.mean,
                    "p50": pct["p50"],
                    "p95": pct["p95"],
                    "p99": pct["p99"],
                }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format, served at ``/metrics``."""
        lines: list[str] = []
        for name, inst in sorted(self.instruments().items()):
            pname = _prom_name(name)
            if isinstance(inst, Counter):
                lines.append(f"# TYPE {pname} counter")
                lines.append(f"{pname} {inst.value:g}")
            elif isinstance(inst, Gauge):
                lines.append(f"# TYPE {pname} gauge")
                lines.append(f"{pname} {inst.value:g}")
            else:
                lines.append(f"# TYPE {pname} histogram")
                for bound, cumulative in inst.bucket_counts():
                    le = "+Inf" if bound == float("inf") else f"{bound:.9g}"
                    lines.append(f'{pname}_bucket{{le="{le}"}} {cumulative}')
                lines.append(f"{pname}_sum {inst.sum:.9g}")
                lines.append(f"{pname}_count {inst.count}")
        return "\n".join(lines) + "\n"


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every layer records into by default."""
    return _REGISTRY
