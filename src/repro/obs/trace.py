"""Distributed tracing: span contexts, a span ring buffer, JSON-lines.

A :class:`SpanContext` (trace id, span id, parent span id) is minted at
the client call site — the ``metered://`` wrapper starts a root span
per operation, ``remote://`` derives a child context per RPC and ships
it in the ONC RPC credential field (an XDR opaque old peers decode and
ignore, so the trace field is NULL-compatible in both directions).  The
server records one span per proc with the queue-wait vs. service-time
split; :func:`mark_request_received` is how the transport layer hands
the receive timestamp across the worker-pool boundary.

Spans land in a process-wide :class:`TraceRecorder`: a bounded ring
buffer plus an optional JSON-lines log (``store-serve --trace-log``).
``discfs store-trace`` joins the client's and servers' logs on trace id
to reconstruct cross-node trees.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import IO

__all__ = [
    "Span",
    "SpanContext",
    "TraceRecorder",
    "TRACE_WIRE_MAGIC",
    "configure_tracing",
    "current_context",
    "decode_context",
    "encode_context",
    "get_recorder",
    "mark_request_received",
    "new_root_context",
    "take_request_received",
    "use_context",
]

#: Default ring-buffer capacity; override per mount with ``#ring=``.
DEFAULT_RING = 2048

_NO_PARENT = "0" * 16


def _hex_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class SpanContext:
    """Identity of one span: where in which trace, under which parent."""

    trace_id: str  # 16 random bytes, hex
    span_id: str  # 8 random bytes, hex
    parent_id: str = ""  # parent span id, empty for roots

    def child(self) -> "SpanContext":
        """A fresh span in the same trace, parented to this one."""
        return SpanContext(self.trace_id, _hex_id(8), self.span_id)


def new_root_context() -> SpanContext:
    """Mint a brand-new trace with a root span."""
    return SpanContext(_hex_id(16), _hex_id(8), "")


# -- active-span propagation ------------------------------------------------

_active: contextvars.ContextVar[SpanContext | None] = contextvars.ContextVar(
    "discfs_active_span", default=None
)


def current_context() -> SpanContext | None:
    """The span context active in this thread/context, if any."""
    return _active.get()


class use_context:
    """Context manager installing ``ctx`` as the active span context.

    The fan-out layers (``replica://`` lanes, ``shard://`` pools) copy
    the ambient :mod:`contextvars` context into their worker threads,
    so a context activated here is visible to every child dispatch.
    """

    def __init__(self, ctx: SpanContext | None) -> None:
        self._ctx = ctx
        self._token: contextvars.Token | None = None

    def __enter__(self) -> SpanContext | None:
        self._token = _active.set(self._ctx)
        return self._ctx

    def __exit__(self, *exc: object) -> None:
        if self._token is not None:
            _active.reset(self._token)
            self._token = None


# -- wire format ------------------------------------------------------------

#: Version/magic prefix of the on-wire context blob (rides inside the
#: XDR opaque credential body of a call message).
TRACE_WIRE_MAGIC = b"DTR1"
_WIRE_LEN = len(TRACE_WIRE_MAGIC) + 32 + 16 + 16  # magic + trace + span + parent


def encode_context(ctx: SpanContext) -> bytes:
    """Fixed-width wire form: magic + trace(32) + span(16) + parent(16)."""
    parent = ctx.parent_id or _NO_PARENT
    return TRACE_WIRE_MAGIC + ctx.trace_id.encode() + ctx.span_id.encode() + parent.encode()


def decode_context(body: bytes) -> SpanContext | None:
    """Parse a wire blob; None for absent/foreign/garbled bodies.

    Lenient by design: an empty credential (old client) or an
    unrecognized one (some future flavor) simply means "no trace".
    """
    if len(body) != _WIRE_LEN or not body.startswith(TRACE_WIRE_MAGIC):
        return None
    try:
        text = body[len(TRACE_WIRE_MAGIC):].decode("ascii")
    except UnicodeDecodeError:
        return None
    trace_id, span_id, parent = text[:32], text[32:48], text[48:64]
    if not all(c in "0123456789abcdef" for c in text):
        return None
    return SpanContext(trace_id, span_id, "" if parent == _NO_PARENT else parent)


# -- spans and the recorder --------------------------------------------------


@dataclass
class Span:
    """One timed operation, as recorded (and serialized to JSON-lines)."""

    name: str  # e.g. "write", "WRITE_MANY"
    kind: str  # "client" | "server" | "store"
    trace_id: str
    span_id: str
    parent_id: str = ""
    node: str = ""  # e.g. "client", "127.0.0.1:9001"
    start: float = 0.0  # wall-clock epoch seconds (cross-process alignment)
    duration_ms: float = 0.0
    queue_ms: float = 0.0  # server-side: recv -> handler-start wait
    status: str = "ok"
    attrs: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "node": self.node,
            "start": self.start,
            "duration_ms": self.duration_ms,
            "queue_ms": self.queue_ms,
            "status": self.status,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_dict(cls, d: dict[str, object]) -> "Span":
        return cls(
            name=str(d.get("name", "")),
            kind=str(d.get("kind", "")),
            trace_id=str(d.get("trace_id", "")),
            span_id=str(d.get("span_id", "")),
            parent_id=str(d.get("parent_id", "")),
            node=str(d.get("node", "")),
            start=float(d.get("start", 0.0)),  # type: ignore[arg-type]
            duration_ms=float(d.get("duration_ms", 0.0)),  # type: ignore[arg-type]
            queue_ms=float(d.get("queue_ms", 0.0)),  # type: ignore[arg-type]
            status=str(d.get("status", "ok")),
            attrs=dict(d.get("attrs", {})),  # type: ignore[call-overload]
        )


class TraceRecorder:
    """Bounded in-memory span ring plus an optional JSON-lines sink."""

    def __init__(self, ring: int = DEFAULT_RING, log_path: str | None = None) -> None:
        if ring < 1:
            raise ValueError("trace ring must hold at least one span")
        self._lock = threading.Lock()
        self._ring = ring
        self._spans: list[Span] = []
        self._log: IO[str] | None = None
        self._log_path: str | None = None
        self._enabled = False
        if log_path:
            self.set_log(log_path)

    @property
    def enabled(self) -> bool:
        """Whether span *origination* is on (span recording itself is
        always accepted — a server records spans whenever a client ships
        a context, regardless of this flag).  Enabled explicitly or as a
        side effect of attaching a JSON-lines log."""
        return self._enabled or self._log is not None

    def enable(self, on: bool = True) -> None:
        self._enabled = on

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if len(self._spans) > self._ring:
                del self._spans[: len(self._spans) - self._ring]
            if self._log is not None:
                self._log.write(json.dumps(span.to_dict(), separators=(",", ":")) + "\n")
                self._log.flush()

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    @property
    def ring(self) -> int:
        return self._ring

    def set_ring(self, ring: int) -> None:
        if ring < 1:
            raise ValueError("trace ring must hold at least one span")
        with self._lock:
            self._ring = ring
            if len(self._spans) > ring:
                del self._spans[: len(self._spans) - ring]

    @property
    def log_path(self) -> str | None:
        return self._log_path

    def set_log(self, path: str | None) -> None:
        with self._lock:
            if self._log is not None:
                self._log.close()
                self._log = None
            self._log_path = path
            if path:
                self._log = open(path, "a", encoding="utf-8")

    def close(self) -> None:
        self.set_log(None)


_RECORDER = TraceRecorder()


def get_recorder() -> TraceRecorder:
    """The process-wide recorder client and server layers share."""
    return _RECORDER


def configure_tracing(
    log_path: str | None = None,
    ring: int | None = None,
    enabled: bool | None = None,
) -> TraceRecorder:
    """(Re)configure the process-wide recorder; returns it."""
    if ring is not None:
        _RECORDER.set_ring(ring)
    if log_path is not None:
        _RECORDER.set_log(log_path)
    if enabled is not None:
        _RECORDER.enable(enabled)
    return _RECORDER


# -- queue-wait handoff ------------------------------------------------------

_rx = threading.local()


def mark_request_received(t: float | None = None) -> None:
    """Stamp "a request was just received" for the current thread.

    Called by the transport right where a request starts waiting for a
    handler (socket receive, worker-pool handoff).  The program layer
    pairs it with :func:`take_request_received` at handler start to
    split queue wait from service time on the same monotonic clock.
    """
    _rx.t = time.perf_counter() if t is None else t


def take_request_received() -> float | None:
    """Consume the receive timestamp stamped for this thread, if any."""
    t = getattr(_rx, "t", None)
    _rx.t = None
    return t
