"""HTTP exposition of the metrics registry (stdlib-only).

``store-serve --metrics-port N`` mounts this next to the RPC listener:

* ``GET /metrics`` — Prometheus text exposition format
* ``GET /metrics.json`` — the same registry as JSON
* ``GET /trace.json`` — the most recent spans from the trace ring

The server runs ``ThreadingHTTPServer`` on a daemon thread, so it never
blocks shutdown and costs nothing when idle.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import TraceRecorder, get_recorder

__all__ = ["MetricsServer", "serve_metrics"]


class MetricsServer:
    """A running metrics endpoint; close() stops it."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        recorder: TraceRecorder | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry if registry is not None else get_registry()
        self.recorder = recorder if recorder is not None else get_recorder()
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = outer.registry.render_prometheus().encode()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/metrics.json":
                    body = json.dumps(outer.registry.to_dict(), indent=2).encode()
                    ctype = "application/json"
                elif path == "/trace.json":
                    spans = [s.to_dict() for s in outer.recorder.spans()]
                    body = json.dumps(spans, indent=2).encode()
                    ctype = "application/json"
                else:
                    self.send_error(404, "try /metrics, /metrics.json or /trace.json")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args: object) -> None:
                pass  # scrapes are high-frequency; keep stderr quiet

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="metrics-http", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` requests)."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def serve_metrics(
    host: str = "127.0.0.1",
    port: int = 0,
    registry: MetricsRegistry | None = None,
    recorder: TraceRecorder | None = None,
) -> MetricsServer:
    """Start a metrics endpoint on a daemon thread and return it."""
    return MetricsServer(registry=registry, recorder=recorder, host=host, port=port)
