"""Zero-dependency observability plane: metrics, tracing, exposition.

Three stdlib-only building blocks shared by every layer of the stack:

* :mod:`repro.obs.metrics` — process-wide :class:`MetricsRegistry` of
  counters, gauges and log-bucketed latency histograms with p50/p95/p99
  readback.  ``metered://`` stores, the RPC server and the journal all
  record into the same registry.
* :mod:`repro.obs.trace` — span contexts (trace id / span id / parent)
  generated at the client call site, carried over the wire in the ONC
  RPC credential field, recorded into a bounded ring buffer and an
  optional JSON-lines log.  ``discfs store-trace`` reconstructs
  cross-node trees from those logs.
* :mod:`repro.obs.exposition` — a stdlib HTTP thread serving the
  registry as Prometheus text (``/metrics``) and JSON
  (``/metrics.json``), mounted by ``store-serve --metrics-port``.
* :mod:`repro.obs.trajectory` — schema-versioned ``BENCH_<topic>.json``
  appenders seeding the cross-PR perf trajectory (ROADMAP item 3).

The package imports nothing outside the standard library, so any layer
(fs, rpc, storage, bench) may depend on it without cycles.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import (
    Span,
    SpanContext,
    TraceRecorder,
    configure_tracing,
    current_context,
    get_recorder,
    new_root_context,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "Span",
    "SpanContext",
    "TraceRecorder",
    "configure_tracing",
    "current_context",
    "get_recorder",
    "new_root_context",
]
