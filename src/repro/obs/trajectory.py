"""Schema-versioned perf-trajectory records (``BENCH_<topic>.json``).

ROADMAP item 3's measurement prerequisite: every nightly bench run
appends one record per ablation topic — ops/s, latency quantiles,
fsyncs, write amplification, git sha, date — to a ``BENCH_<topic>.json``
array in the repo root (or any directory).  Because records accumulate
across runs under a stable schema, any later optimization PR can be
judged against the trajectory instead of a single before/after pair.

``python -m repro.bench.report --emit-trajectory DIR`` writes these;
``nightly.yml`` uploads them as artifacts.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path

__all__ = ["SCHEMA", "append_record", "read_records", "git_sha"]

#: Bump only on breaking field changes; additive fields keep /v1.
SCHEMA = "discfs-bench-trajectory/v1"


def git_sha(cwd: str | None = None) -> str:
    """Best-effort commit id: CI env var first, then ``git rev-parse``."""
    sha = os.environ.get("GITHUB_SHA", "")
    if sha:
        return sha[:12]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def append_record(
    topic: str, fields: dict[str, object], directory: str | Path = "."
) -> Path:
    """Append one record to ``<directory>/BENCH_<topic>.json``.

    The file holds a JSON array of records (human-diffable, trivially
    loadable); the write is atomic (tmp + rename) so a crashed bench
    run never leaves a torn file behind.  Returns the file path.
    """
    if not topic or not all(c.isalnum() or c in "-_" for c in topic):
        raise ValueError(f"trajectory topic must be alphanumeric/-/_, got {topic!r}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{topic}.json"
    records = read_records(path)
    record: dict[str, object] = {
        "schema": SCHEMA,
        "topic": topic,
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": git_sha(cwd=str(directory) if directory.is_dir() else None),
    }
    record.update(fields)
    records.append(record)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def read_records(path: str | Path) -> list[dict[str, object]]:
    """Load a trajectory file; missing or torn files read as empty."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return []
    return data if isinstance(data, list) else []
