"""The CFS baseline (Blaze's Cryptographic File System).

The paper's prototype *is* a modified CFS daemon — the authors "replaced
the encryption functionality of CFS with the access control mechanism" —
and its evaluation baseline, **CFS-NE**, is "basically CFS with encryption
turned off and modified to run remotely" (section 6).

This package reproduces that lineage:

* :mod:`repro.cfs.cipher_layer` — an encrypting VFS wrapper: file data is
  enciphered with a position-keyed stream cipher, names with a
  deterministic block cipher (so lookups still work),
* :mod:`repro.cfs.server` — assembles a CFS daemon (NFS server over a
  plain or encrypting VFS),
* :mod:`repro.cfs.client` — the ``cattach``-style client helper.

``encrypt=False`` gives CFS-NE: byte-identical NFS plumbing to DisCFS but
with no KeyNote layer — exactly the baseline the figures compare against.
"""

from repro.cfs.cipher_layer import EncryptingVFS
from repro.cfs.client import cfs_attach
from repro.cfs.server import CFSServer

__all__ = ["CFSServer", "EncryptingVFS", "cfs_attach"]
