"""CFS daemon assembly: NFS server over a plain or encrypting VFS."""

from __future__ import annotations

from repro.cfs.cipher_layer import EncryptingVFS
from repro.fs.blockdev import BlockDevice
from repro.fs.ffs import FFS
from repro.fs.vfs import VFS
from repro.nfs.mount import MountProgram
from repro.nfs.server import NFSProgram
from repro.rpc.server import RPCServer
from repro.rpc.transport import InProcessTransport


class CFSServer:
    """A user-level CFS daemon.

    ``encrypt=True`` is CFS proper; ``encrypt=False`` is **CFS-NE**, the
    paper's baseline: identical NFS plumbing, no cryptography, no KeyNote.

    The server owns its filesystem unless one is supplied (the benchmark
    harness passes a shared FFS so all systems store to the same substrate).
    """

    def __init__(
        self,
        fs: FFS | None = None,
        device: BlockDevice | None = None,
        encrypt: bool = False,
        master_key: bytes = b"cfs-default-master-key",
        backend: str | None = None,
    ):
        # ``backend`` is a storage URI (mem://, sqlite://, shard://, ...)
        # resolved through the repro.storage registry; ``device``/``fs``
        # take precedence for callers that construct their own.
        self.fs = fs if fs is not None else FFS(
            device if device is not None else backend
        )
        self.encrypt = encrypt
        if encrypt:
            self.vfs: VFS = EncryptingVFS(self.fs, master_key)
        else:
            self.vfs = VFS(self.fs)
        self.rpc = RPCServer()
        self.nfs_program = NFSProgram(self.vfs)
        self.mount_program = MountProgram(self.vfs)
        self.rpc.register(self.nfs_program)
        self.rpc.register(self.mount_program)

    def handler(self, identity: str | None = None):
        """``bytes -> bytes`` entry point for any transport."""
        return self.rpc.handler_for(identity)

    def in_process_transport(self, identity: str | None = None) -> InProcessTransport:
        """Convenience: a directly-wired client transport."""
        return InProcessTransport(self.handler(identity))
