"""The ``cattach``-style CFS client helper.

CFS users ran ``cattach`` to make an encrypted directory appear under the
CFS mount point.  Our equivalent mounts the export over a transport and
returns a ready :class:`~repro.nfs.client.NFSClient`.
"""

from __future__ import annotations

from repro.nfs.client import NFSClient
from repro.nfs.mount import MountClient
from repro.rpc.transport import Transport


def cfs_attach(transport: Transport, path: str = "/") -> NFSClient:
    """Mount ``path`` from a CFS daemon; returns an NFS client rooted there."""
    root = MountClient(transport).mount(path)
    return NFSClient(transport, root)
