"""The CFS encryption layer: a VFS wrapper enciphering data and names.

Structure follows CFS: a per-attach master key; file contents encrypted
with a position-dependent cipher so random block access needs no
chaining state; file names encrypted deterministically so directory
lookups map 1:1 onto underlying lookups.

Implementation choices (vs. 1993 CFS): DES/OFB+ECB is replaced by the
library's ChaCha-style stream cipher keyed per (file, position) and a
Feistel block cipher for names — same structural properties, modern
primitives, no external dependencies.
"""

from __future__ import annotations

from repro.crypto.cipher import BlockCipher, StreamCipher, derive_key
from repro.errors import InvalidArgument
from repro.fs.inode import Inode
from repro.fs.vfs import FileId, VFS

_NAME_BLOCK = BlockCipher.BLOCK


class EncryptingVFS(VFS):
    """A VFS that encrypts file data and names under a master key.

    Wraps the same FFS type the plain VFS does; everything below the
    wrapper (inodes, blocks, NFS handles) is unchanged — encryption is
    purely a data transform, mirroring CFS's design.
    """

    def __init__(self, fs, master_key: bytes):
        super().__init__(fs)
        if len(master_key) < 16:
            raise InvalidArgument("CFS master key must be at least 16 bytes")
        self._master_key = derive_key(master_key, label=b"cfs-master")
        self._name_cipher = BlockCipher(derive_key(master_key, label=b"cfs-names"))

    # -- data transform ----------------------------------------------------

    def _data_cipher(self, fid: FileId) -> StreamCipher:
        key = derive_key(
            self._master_key,
            fid.ino.to_bytes(8, "big"),
            fid.generation.to_bytes(8, "big"),
            label=b"cfs-data",
        )
        return StreamCipher(key, nonce=b"\x00" * 12)

    def read(self, fid: FileId, offset: int, count: int) -> bytes:
        ciphertext = super().read(fid, offset, count)
        return self._data_cipher(fid).process(ciphertext, offset=offset)

    def write(self, fid: FileId, offset: int, data: bytes) -> int:
        ciphertext = self._data_cipher(fid).process(data, offset=offset)
        return super().write(fid, offset, ciphertext)

    # -- name transform ----------------------------------------------------

    def _encrypt_name(self, name: str) -> str:
        raw = name.encode("utf-8")
        # Pad with length byte scheme: data || 0x80 || zeros to block multiple.
        padded = raw + b"\x80"
        if len(padded) % _NAME_BLOCK:
            padded += b"\x00" * (_NAME_BLOCK - len(padded) % _NAME_BLOCK)
        out = bytearray()
        prev = bytes(_NAME_BLOCK)  # zero IV: deterministic, lookup-friendly
        for i in range(0, len(padded), _NAME_BLOCK):
            block = bytes(a ^ b for a, b in zip(padded[i : i + _NAME_BLOCK], prev))
            enc = self._name_cipher.encrypt_block(block)
            out += enc
            prev = enc
        return out.hex()

    def _decrypt_name(self, stored: str) -> str:
        try:
            data = bytes.fromhex(stored)
        except ValueError:
            return stored  # not one of ours (e.g. "." / "..")
        if not data or len(data) % _NAME_BLOCK:
            return stored
        out = bytearray()
        prev = bytes(_NAME_BLOCK)
        for i in range(0, len(data), _NAME_BLOCK):
            enc = data[i : i + _NAME_BLOCK]
            dec = self._name_cipher.decrypt_block(enc)
            out += bytes(a ^ b for a, b in zip(dec, prev))
            prev = enc
        unpadded = bytes(out).rstrip(b"\x00")
        if not unpadded.endswith(b"\x80"):
            return stored
        try:
            return unpadded[:-1].decode("utf-8")
        except UnicodeDecodeError:
            return stored

    @staticmethod
    def _is_special(name: str) -> bool:
        return name in (".", "..")

    def _xname(self, name: str) -> str:
        return name if self._is_special(name) else self._encrypt_name(name)

    # -- namespace overrides -----------------------------------------------

    def lookup(self, dfid: FileId, name: str) -> Inode:
        return super().lookup(dfid, self._xname(name))

    def readdir(self, dfid: FileId) -> list[tuple[str, int]]:
        entries = super().readdir(dfid)
        return [
            (name if self._is_special(name) else self._decrypt_name(name), ino)
            for name, ino in entries
        ]

    def create(self, dfid: FileId, name: str, mode: int = 0o644,
               uid: int = 0, gid: int = 0) -> Inode:
        return super().create(dfid, self._xname(name), mode, uid, gid)

    def mkdir(self, dfid: FileId, name: str, mode: int = 0o755,
              uid: int = 0, gid: int = 0) -> Inode:
        return super().mkdir(dfid, self._xname(name), mode, uid, gid)

    def symlink(self, dfid: FileId, name: str, target: str) -> Inode:
        # Symlink targets are encrypted like names (CFS protects them too).
        return super().symlink(dfid, self._xname(name), self._encrypt_name(target))

    def readlink(self, fid: FileId) -> str:
        return self._decrypt_name(super().readlink(fid))

    def link(self, dfid: FileId, name: str, target: FileId) -> Inode:
        return super().link(dfid, self._xname(name), target)

    def remove(self, dfid: FileId, name: str) -> None:
        super().remove(dfid, self._xname(name))

    def rmdir(self, dfid: FileId, name: str) -> None:
        super().rmdir(dfid, self._xname(name))

    def rename(self, sdfid: FileId, sname: str, ddfid: FileId, dname: str) -> None:
        super().rename(sdfid, self._xname(sname), ddfid, self._xname(dname))
