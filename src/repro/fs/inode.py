"""Inodes and the inode table.

Generation numbers: the paper (section 5) notes that bare inode numbers
are unsuitable as handles because inodes are recycled; 4.4BSD NFS solved
this with a per-inode *generation* number bumped on reuse.  We implement
that, and DisCFS handles carry (inode, generation) — see
``repro.core.handles`` and the ablation tests that demonstrate the stale
handle problem with bare-inode handles.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

from repro.errors import FileNotFound, StaleHandle


class FileType(enum.Enum):
    """File types supported by the substrate (matches NFSv2 ftype values)."""

    REGULAR = "REG"
    DIRECTORY = "DIR"
    SYMLINK = "LNK"


@dataclass
class Inode:
    """On-"disk" inode: attributes plus the block map.

    ``blocks`` maps logical block index -> device block number; missing
    entries are holes (sparse files read as zeros).
    """

    ino: int
    ftype: FileType
    mode: int
    uid: int = 0
    gid: int = 0
    size: int = 0
    nlink: int = 1
    generation: int = 1
    atime: float = field(default_factory=time.time)
    mtime: float = field(default_factory=time.time)
    ctime: float = field(default_factory=time.time)
    blocks: dict[int, int] = field(default_factory=dict)
    #: Symlink target (SYMLINK inodes only).
    link_target: str = ""
    #: Primary containing directory (the root points at itself).  Used by
    #: DisCFS to expose the ANCESTORS action attribute; for hard-linked
    #: files this records the directory of the first link.
    parent_ino: int = 0

    @property
    def is_dir(self) -> bool:
        return self.ftype is FileType.DIRECTORY

    @property
    def is_regular(self) -> bool:
        return self.ftype is FileType.REGULAR

    @property
    def is_symlink(self) -> bool:
        return self.ftype is FileType.SYMLINK

    def touch_mtime(self) -> None:
        self.mtime = self.ctime = time.time()

    def touch_atime(self) -> None:
        self.atime = time.time()


class InodeTable:
    """Allocation of inode numbers with generation tracking.

    Inode numbers are reused (lowest free first, like real FFS); each
    reuse increments the slot's generation so stale handles are
    detectable.  Number 0 is reserved; the root directory is inode 2 by
    convention (as in FFS).
    """

    ROOT_INO = 2

    def __init__(self, max_inodes: int = 1 << 20) -> None:
        self._max = max_inodes
        self._table: dict[int, Inode] = {}
        self._generations: dict[int, int] = {}
        self._free: list[int] = []
        self._next = 1

    def allocate(self, ftype: FileType, mode: int, uid: int = 0, gid: int = 0) -> Inode:
        if self._free:
            ino = self._free.pop()
        else:
            ino = self._next
            self._next += 1
            if ino >= self._max:
                raise FileNotFound("inode table exhausted")
        generation = self._generations.get(ino, 0) + 1
        self._generations[ino] = generation
        inode = Inode(ino=ino, ftype=ftype, mode=mode, uid=uid, gid=gid,
                      generation=generation)
        self._table[ino] = inode
        return inode

    def get(self, ino: int) -> Inode:
        try:
            return self._table[ino]
        except KeyError:
            raise StaleHandle(f"inode {ino} does not exist") from None

    def get_checked(self, ino: int, generation: int) -> Inode:
        """Fetch an inode, verifying the handle's generation number."""
        inode = self.get(ino)
        if inode.generation != generation:
            raise StaleHandle(
                f"inode {ino} generation mismatch "
                f"(handle {generation}, current {inode.generation})"
            )
        return inode

    def free(self, ino: int) -> Inode:
        inode = self.get(ino)
        del self._table[ino]
        self._free.append(ino)
        return inode

    def __contains__(self, ino: int) -> bool:
        return ino in self._table

    def __len__(self) -> int:
        return len(self._table)

    def all_inodes(self) -> list[Inode]:
        return list(self._table.values())
