"""Local filesystem substrate ("FFS").

The paper's evaluation compares DisCFS and CFS-NE against the local
OpenBSD fast filesystem (FFS) on a real disk.  This package provides the
equivalent substrate for the reproduction:

* :mod:`repro.fs.blockdev` — block devices (memory- and file-backed) with
  I/O accounting, so benchmarks can attribute costs,
* :mod:`repro.fs.inode` — inodes with attributes and generation numbers,
* :mod:`repro.fs.ffs` — an inode+block filesystem: directories, regular
  files, hard/symbolic links, rename, sparse files,
* :mod:`repro.fs.vfs` — the vnode-style interface the NFS server exports.

The same FFS instance backs all three measured systems: "FFS" benchmarks
talk to it directly, while CFS-NE and DisCFS reach it through their
NFS-over-RPC stacks — mirroring the paper's setup where all servers
ultimately stored files on the local disk.
"""

from repro.fs.blockdev import BlockDeviceStats, FileBlockDevice, MemoryBlockDevice
from repro.fs.ffs import FFS
from repro.fs.inode import FileType
from repro.fs.vfs import VFS

__all__ = [
    "FFS",
    "FileType",
    "VFS",
    "MemoryBlockDevice",
    "FileBlockDevice",
    "BlockDeviceStats",
]
