"""Block devices backing the FFS substrate.

Two legacy implementations share one interface:

* :class:`MemoryBlockDevice` — blocks live in a dict; fast, the default
  for tests and benchmarks,
* :class:`FileBlockDevice` — blocks live in a host file; used to
  demonstrate persistence across server restarts.

Both count operations in a :class:`BlockDeviceStats`, which the benchmark
harness uses to attribute simulated disk time (seek + transfer) when
reporting paper-scale numbers.

New code should prefer the URI-driven registry in :mod:`repro.storage`
(``mem://``, ``file://``, ``sqlite://``, ``shard://``, ``cached://``);
:func:`device_from_uri` below is the bridge.  Anything satisfying this
module's :class:`BlockDevice` contract — including
:class:`repro.storage.StoreBlockDevice` — plugs into FFS unchanged.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

from repro.errors import InvalidArgument, NoSpace

DEFAULT_BLOCK_SIZE = 8192


@dataclass
class BlockDeviceStats:
    """Operation counters, reset-able between benchmark phases.

    Increments are atomic (guarded by a per-instance lock, like the
    :mod:`repro.obs.metrics` instruments): the counters are shared by
    concurrent paths — replica straggler lanes, shard fan-out pools,
    ``store-serve --workers`` threads — where a bare ``x += 1``
    read-modify-write silently loses updates.
    """

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    # Tracks the previous block number to let cost models distinguish
    # sequential from random access.
    last_block: int = field(default=-1, repr=False)
    seeks: int = 0
    # Real durability barriers issued (os.fsync and equivalents): the
    # cost axis the journal ablation reports, since a write-ahead log
    # trades throughput for exactly these.
    fsyncs: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_read(self, block_no: int, nbytes: int) -> None:
        with self._lock:
            self.reads += 1
            self.bytes_read += nbytes
            if block_no != self.last_block + 1:
                self.seeks += 1
            self.last_block = block_no

    def record_write(self, block_no: int, nbytes: int) -> None:
        with self._lock:
            self.writes += 1
            self.bytes_written += nbytes
            if block_no != self.last_block + 1:
                self.seeks += 1
            self.last_block = block_no

    def record_fsync(self) -> None:
        with self._lock:
            self.fsyncs += 1

    def reset(self) -> None:
        with self._lock:
            self.reads = self.writes = 0
            self.bytes_read = self.bytes_written = 0
            self.seeks = 0
            self.fsyncs = 0
            self.last_block = -1


class BlockDevice:
    """Abstract fixed-size-block device."""

    def __init__(self, num_blocks: int,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if num_blocks <= 0:
            raise InvalidArgument("device must have at least one block")
        if block_size <= 0 or block_size % 512:
            raise InvalidArgument("block size must be a positive multiple of 512")
        self.num_blocks = num_blocks
        self.block_size = block_size
        self.stats = BlockDeviceStats()

    # -- subclass interface ------------------------------------------------

    def _read(self, block_no: int) -> bytes:
        raise NotImplementedError

    def _write(self, block_no: int, data: bytes) -> None:
        raise NotImplementedError

    # -- public API ----------------------------------------------------

    def read_block(self, block_no: int) -> bytes:
        self._check_range(block_no)
        self.stats.record_read(block_no, self.block_size)
        return self._read(block_no)

    def write_block(self, block_no: int, data: bytes) -> None:
        self._check_range(block_no)
        if len(data) > self.block_size:
            raise InvalidArgument(
                f"data ({len(data)} bytes) exceeds block size ({self.block_size})"
            )
        if len(data) < self.block_size:
            data = data + b"\x00" * (self.block_size - len(data))
        self.stats.record_write(block_no, self.block_size)
        self._write(block_no, data)

    def read_blocks(self, block_nos: list[int]) -> list[bytes]:
        """Vectored read; equivalent to looping :meth:`read_block`.

        The default loops; :class:`repro.storage.StoreBlockDevice`
        forwards the whole batch to the store stack so composite and
        remote backends can coalesce it (per shard, per RPC round trip).
        """
        return [self.read_block(block_no) for block_no in block_nos]

    def write_blocks(self, items: list[tuple[int, bytes]]) -> None:
        """Vectored write; equivalent to looping :meth:`write_block`."""
        for block_no, data in items:
            self.write_block(block_no, data)

    def _check_range(self, block_no: int) -> None:
        if not 0 <= block_no < self.num_blocks:
            raise NoSpace(f"block {block_no} out of range (device has {self.num_blocks})")

    @property
    def capacity_bytes(self) -> int:
        return self.num_blocks * self.block_size

    # -- lifecycle (no-ops for devices without buffered/owned state) ------

    def flush(self) -> None:
        """Push buffered writes toward durable storage."""

    def close(self) -> None:
        """Release any resources the device owns."""


def device_from_uri(uri: str, num_blocks: int | None = None,
                    block_size: int = DEFAULT_BLOCK_SIZE) -> BlockDevice:
    """Construct a device through the :mod:`repro.storage` registry.

    Thin convenience so fs-layer callers need not import ``repro.storage``
    themselves; imported lazily because the storage package builds on the
    stats and error types defined here.
    """
    from repro.storage import DEFAULT_NUM_BLOCKS, open_device

    return open_device(
        uri,
        num_blocks=num_blocks if num_blocks is not None else DEFAULT_NUM_BLOCKS,
        block_size=block_size,
    )


class MemoryBlockDevice(BlockDevice):
    """Blocks stored in a dict; unwritten blocks read as zeros."""

    def __init__(self, num_blocks: int = 16384,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        super().__init__(num_blocks, block_size)
        self._blocks: dict[int, bytes] = {}
        self._zero = bytes(block_size)

    def _read(self, block_no: int) -> bytes:
        return self._blocks.get(block_no, self._zero)

    def _write(self, block_no: int, data: bytes) -> None:
        self._blocks[block_no] = data

    def used_blocks(self) -> int:
        """Number of blocks ever written (storage actually consumed)."""
        return len(self._blocks)


class FileBlockDevice(BlockDevice):
    """Blocks stored in a host file (sparse where the OS allows).

    The device does not take ownership of the path; call :meth:`close`
    (or use as a context manager) when done.
    """

    def __init__(
        self, path: str, num_blocks: int = 16384,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        super().__init__(num_blocks, block_size)
        self._path = path
        flags = os.O_RDWR | os.O_CREAT
        self._fd = os.open(path, flags, 0o600)
        self._zero = bytes(block_size)

    def _read(self, block_no: int) -> bytes:
        data = os.pread(self._fd, self.block_size, block_no * self.block_size)
        if len(data) < self.block_size:
            data = data + b"\x00" * (self.block_size - len(data))
        return data

    def _write(self, block_no: int, data: bytes) -> None:
        os.pwrite(self._fd, data, block_no * self.block_size)

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def __enter__(self) -> "FileBlockDevice":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
