"""A vnode-style interface over the FFS substrate.

The user-level NFS server (and the CFS/DisCFS daemons built on it) speak
to storage through this layer rather than through :class:`repro.fs.ffs.FFS`
directly.  Files are referred to by ``(ino, generation)`` pairs — the same
information NFS file handles and DisCFS credential handles carry — and the
CFS baseline plugs its encryption in by wrapping this class
(:class:`repro.cfs.cipher_layer.EncryptingVFS`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.ffs import FFS
from repro.fs.inode import FileType, Inode


@dataclass(frozen=True)
class FileId:
    """A stable file identity: inode number + generation."""

    ino: int
    generation: int

    @classmethod
    def of(cls, inode: Inode) -> "FileId":
        return cls(ino=inode.ino, generation=inode.generation)


class VFS:
    """Vnode operations over an FFS instance.

    Every method that takes a :class:`FileId` validates the generation,
    so stale references surface as :class:`~repro.errors.StaleHandle`
    instead of silently touching a recycled inode.
    """

    def __init__(self, fs: FFS | str) -> None:
        # A string is a storage-backend URI: build a fresh FFS on that
        # backend (VFS("sqlite:///fs.db") mirrors FFS("sqlite:///fs.db")).
        self.fs = FFS(fs) if isinstance(fs, str) else fs

    # -- identity ----------------------------------------------------------

    @property
    def root(self) -> FileId:
        return FileId.of(self.fs.iget(self.fs.root_ino))

    def _inode(self, fid: FileId) -> Inode:
        return self.fs.iget_checked(fid.ino, fid.generation)

    # -- attributes ------------------------------------------------------

    def getattr(self, fid: FileId) -> Inode:
        return self._inode(fid)

    def setattr(self, fid: FileId, mode: int | None = None,
                uid: int | None = None, gid: int | None = None,
                size: int | None = None, atime: float | None = None,
                mtime: float | None = None) -> Inode:
        self._inode(fid)
        return self.fs.setattr(fid.ino, mode=mode, uid=uid, gid=gid,
                               size=size, atime=atime, mtime=mtime)

    # -- namespace -------------------------------------------------------

    def lookup(self, dfid: FileId, name: str) -> Inode:
        self._inode(dfid)
        return self.fs.lookup(dfid.ino, name)

    def readdir(self, dfid: FileId) -> list[tuple[str, int]]:
        self._inode(dfid)
        return self.fs.readdir(dfid.ino)

    def create(self, dfid: FileId, name: str, mode: int = 0o644,
               uid: int = 0, gid: int = 0) -> Inode:
        self._inode(dfid)
        return self.fs.create(dfid.ino, name, mode, uid, gid)

    def mkdir(self, dfid: FileId, name: str, mode: int = 0o755,
              uid: int = 0, gid: int = 0) -> Inode:
        self._inode(dfid)
        return self.fs.mkdir(dfid.ino, name, mode, uid, gid)

    def symlink(self, dfid: FileId, name: str, target: str) -> Inode:
        self._inode(dfid)
        return self.fs.symlink(dfid.ino, name, target)

    def readlink(self, fid: FileId) -> str:
        self._inode(fid)
        return self.fs.readlink(fid.ino)

    def link(self, dfid: FileId, name: str, target: FileId) -> Inode:
        self._inode(dfid)
        self._inode(target)
        return self.fs.link(dfid.ino, name, target.ino)

    def remove(self, dfid: FileId, name: str) -> None:
        self._inode(dfid)
        self.fs.remove(dfid.ino, name)

    def rmdir(self, dfid: FileId, name: str) -> None:
        self._inode(dfid)
        self.fs.rmdir(dfid.ino, name)

    def rename(self, sdfid: FileId, sname: str, ddfid: FileId, dname: str) -> None:
        self._inode(sdfid)
        self._inode(ddfid)
        self.fs.rename(sdfid.ino, sname, ddfid.ino, dname)

    # -- data ----------------------------------------------------------------

    def read(self, fid: FileId, offset: int, count: int) -> bytes:
        self._inode(fid)
        return self.fs.read(fid.ino, offset, count)

    def write(self, fid: FileId, offset: int, data: bytes) -> int:
        self._inode(fid)
        return self.fs.write(fid.ino, offset, data)

    def truncate(self, fid: FileId, size: int) -> None:
        self._inode(fid)
        self.fs.truncate(fid.ino, size)

    # -- fs-wide -----------------------------------------------------------

    def statfs(self) -> dict[str, int]:
        fs = self.fs
        return {
            "block_size": fs.block_size,
            "total_blocks": fs.device.num_blocks,
            "free_blocks": fs.free_block_count(),
            "inodes": len(fs._inodes),
        }


__all__ = ["VFS", "FileId", "FileType"]
