"""Filesystem metadata persistence.

``FFS`` keeps inode and allocation metadata in memory; file *data* and
directory blocks already live on the block device.  This module adds a
checkpoint mechanism so a filesystem on a :class:`FileBlockDevice`
survives process restarts:

* :func:`sync` serializes the inode table, allocator state and directory
  caches into blocks taken from the normal allocator, and records their
  list in the superblock (block 0) with a magic number and a checksum;
* :func:`load` rebuilds an :class:`~repro.fs.ffs.FFS` from a device that
  holds such a checkpoint.

The format is explicitly versioned.  Metadata persistence is
checkpoint-based: an unsynced crash loses *metadata* changes since the
last ``sync``.  ``sync`` itself is crash-safe — the new checkpoint is
fully written and flushed before the superblock points at it, and the
old checkpoint's blocks are not reused until then — so a crash at any
instant leaves one valid checkpoint on the device.  Block-level crash
recovery (no acknowledged write ever lost) is the storage layer's job:
mount the device on a ``journal://`` URI (:mod:`repro.storage.journal`).
"""

from __future__ import annotations

import hashlib
import struct

from repro.errors import FSError, InvalidArgument
from repro.fs.blockdev import BlockDevice
from repro.fs.ffs import FFS
from repro.fs.inode import FileType, Inode

MAGIC = b"DisCFSv1"
_SUPER = struct.Struct(">8sII32s")  # magic, metadata length, block count, sha256
_U32 = struct.Struct(">I")
_INODE_FIXED = struct.Struct(">QBIIIQIQQddd")
# ino, type, mode, uid, gid, size, nlink, generation, parent, atime, mtime, ctime

_TYPE_CODE = {FileType.REGULAR: 0, FileType.DIRECTORY: 1, FileType.SYMLINK: 2}
_CODE_TYPE = {v: k for k, v in _TYPE_CODE.items()}


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return _U32.pack(len(raw)) + raw


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise FSError("truncated filesystem metadata")
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    def u32(self) -> int:
        return int(_U32.unpack(self.take(4))[0])

    def string(self) -> str:
        return self.take(self.u32()).decode("utf-8")


def _serialize(fs: FFS) -> bytes:
    out = bytearray()
    inodes = fs._inodes.all_inodes()
    out += _U32.pack(len(inodes))
    for inode in inodes:
        out += _INODE_FIXED.pack(
            inode.ino, _TYPE_CODE[inode.ftype], inode.mode, inode.uid,
            inode.gid, inode.size, inode.nlink, inode.generation,
            inode.parent_ino, inode.atime, inode.mtime, inode.ctime,
        )
        out += _pack_str(inode.link_target)
        out += _U32.pack(len(inode.blocks))
        for logical, physical in sorted(inode.blocks.items()):
            out += _U32.pack(logical) + _U32.pack(physical)
    # Allocator and table state.
    out += _U32.pack(fs.root_ino)
    out += _U32.pack(fs._next_block)
    out += _U32.pack(len(fs._free_blocks))
    for block in fs._free_blocks:
        out += _U32.pack(block)
    generations = fs._inodes._generations
    out += _U32.pack(len(generations))
    for ino, generation in sorted(generations.items()):
        out += _U32.pack(ino) + _U32.pack(generation)
    out += _U32.pack(fs._inodes._next)
    out += _U32.pack(len(fs._inodes._free))
    for ino in fs._inodes._free:
        out += _U32.pack(ino)
    return bytes(out)


def _deserialize(fs: FFS, data: bytes) -> None:
    reader = _Reader(data)
    table = fs._inodes
    table._table.clear()
    for _ in range(reader.u32()):
        (ino, code, mode, uid, gid, size, nlink, generation, parent,
         atime, mtime, ctime) = _INODE_FIXED.unpack(reader.take(_INODE_FIXED.size))
        inode = Inode(
            ino=ino, ftype=_CODE_TYPE[code], mode=mode, uid=uid, gid=gid,
            size=size, nlink=nlink, generation=generation, parent_ino=parent,
            atime=atime, mtime=mtime, ctime=ctime,
        )
        inode.link_target = reader.string()
        for _ in range(reader.u32()):
            logical = reader.u32()
            inode.blocks[logical] = reader.u32()
        table._table[ino] = inode
    fs.root_ino = reader.u32()
    fs._next_block = reader.u32()
    fs._free_blocks = [reader.u32() for _ in range(reader.u32())]
    generations: dict[int, int] = {}
    for _ in range(reader.u32()):
        ino = reader.u32()
        generations[ino] = reader.u32()
    table._generations = generations
    table._next = reader.u32()
    table._free = [reader.u32() for _ in range(reader.u32())]
    fs._dir_cache.clear()  # rebuilt lazily from directory blocks


def sync(fs: FFS) -> int:
    """Checkpoint ``fs`` metadata to its device; returns bytes written.

    The previous checkpoint's blocks are reclaimed *logically* first, so
    the serialized free list includes them (repeated syncs do not leak
    space), but they are kept out of this round's allocation: the old
    checkpoint must stay intact on disk until the new one is durable,
    or a crash mid-sync would corrupt the only checkpoint the device
    had.  The write order is two-phase — payload blocks, flush, then
    the superblock that points at them, flush — so at every instant the
    superblock references a fully-written checkpoint.
    """
    old_blocks = _release_old_checkpoint(fs)
    payload = _serialize(fs)
    block_size = fs.block_size
    blocks_needed = (len(payload) + block_size - 1) // block_size
    reserved = set(old_blocks)
    block_list: list[int] = []
    deferred: list[int] = []
    try:
        while len(block_list) < blocks_needed:
            block = fs._alloc_block()
            if block in reserved:
                deferred.append(block)  # old checkpoint: reuse next sync
            else:
                block_list.append(block)
    finally:
        # No allocation happens between here and the superblock write,
        # so returning the deferred blocks now keeps the free list whole
        # even if allocation ran out of space mid-loop.
        fs._free_blocks.extend(deferred)

    for i, block_no in enumerate(block_list):
        fs.device.write_block(block_no, payload[i * block_size : (i + 1) * block_size])
    # The payload must be durable before the superblock points at it —
    # this also pushes write-back layers (cached://) and buffered
    # backends (sqlite://): a checkpoint that only reaches a cache is
    # not a checkpoint.
    fs.device.flush()

    # Superblock: header + the checkpoint block list (must fit in block 0).
    listing = b"".join(_U32.pack(b) for b in block_list)
    header = _SUPER.pack(MAGIC, len(payload), len(block_list),
                         hashlib.sha256(payload).digest())
    if len(header) + len(listing) > block_size:
        raise FSError("metadata block list does not fit in the superblock")
    fs.device.write_block(0, header + listing)
    fs.device.flush()
    return len(payload)


def _release_old_checkpoint(fs: FFS) -> list[int]:
    """Return the old checkpoint's blocks to the allocator (skipping any
    already free — a failed sync may have released them once) and report
    them so :func:`sync` can defer their reuse past the commit point."""
    try:
        block_list = _read_checkpoint_blocks(fs.device)
    except FSError:
        return []
    already_free = set(fs._free_blocks)
    for block in block_list:
        if block not in already_free:
            fs._free_block(block)
    return block_list


def _read_checkpoint_blocks(device: BlockDevice) -> list[int]:
    super_block = device.read_block(0)
    magic, length, count, _digest = _SUPER.unpack_from(super_block)
    if magic != MAGIC:
        raise FSError("device holds no DisCFS checkpoint")
    offset = _SUPER.size
    return [
        _U32.unpack_from(super_block, offset + 4 * i)[0] for i in range(count)
    ]


def load(device: BlockDevice | str) -> FFS:
    """Rebuild a filesystem from a checkpointed device.

    ``device`` may be a backend URI (``file:///path``, ``sqlite:///path``,
    ``shard://...``); it is resolved through the storage registry.
    """
    if isinstance(device, str):
        from repro.fs.blockdev import device_from_uri

        device = device_from_uri(device)
    super_block = device.read_block(0)
    magic, length, count, digest = _SUPER.unpack_from(super_block)
    if magic != MAGIC:
        raise InvalidArgument("device holds no DisCFS checkpoint")
    offset = _SUPER.size
    block_list = [
        _U32.unpack_from(super_block, offset + 4 * i)[0] for i in range(count)
    ]
    payload = b"".join(device.read_block(b) for b in block_list)[:length]
    if hashlib.sha256(payload).digest() != digest:
        raise FSError("filesystem metadata checksum mismatch")

    fs = FFS.__new__(FFS)  # bypass mkfs: we restore state instead
    fs.device = device
    fs.block_size = device.block_size
    from repro.fs.inode import InodeTable

    fs._inodes = InodeTable()
    fs._next_block = 1
    fs._free_blocks = []
    fs._dir_cache = {}
    _deserialize(fs, payload)
    # Quarantine the checkpoint's own blocks: the allocator state was
    # serialized *before* they were allocated, so without this a
    # restored filesystem could hand them out for data and overwrite
    # its only checkpoint — a crash before the next sync would then be
    # unrecoverable.  The next sync releases them as the old checkpoint.
    own = set(block_list)
    fs._free_blocks = [b for b in fs._free_blocks if b not in own]
    if block_list:
        fs._next_block = max(fs._next_block, max(block_list) + 1)
    return fs
