"""An inode+block filesystem in the style of the BSD fast filesystem.

This is the storage substrate under all three measured systems.  File data
and directory contents move through the block device (so benchmarks can
account I/O); inode and allocation metadata are kept in memory, a
documented simplification — none of the paper's experiments exercise crash
recovery, and the access-control mechanisms under study sit entirely above
this layer.

Deliberately, FFS does **not** enforce access control: the paper's central
design point is the separation of policy (KeyNote, in the DisCFS server)
from mechanism (file storage).  Mode bits are stored and reported but never
checked here.
"""

from __future__ import annotations

import struct

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NameTooLong,
    NoSpace,
    NotADirectory,
)
from repro.fs.blockdev import BlockDevice, MemoryBlockDevice, device_from_uri
from repro.fs.inode import FileType, Inode, InodeTable

MAX_NAME_LEN = 255

_DIRENT_HEADER = struct.Struct(">IH")  # ino, name length


class FFS:
    """The filesystem: a block allocator, an inode table, and operations.

    All name-taking operations work on (directory inode, name); the
    ``*_path`` convenience wrappers resolve ``/``-separated paths from the
    root.  Times are maintained with unix semantics (mtime/ctime on data or
    metadata change, atime on read).
    """

    def __init__(self, device: BlockDevice | str | None = None) -> None:
        # A string is a storage-backend URI ("mem://", "sqlite:///fs.db",
        # "cached://shard://4", ...) resolved through repro.storage.
        if isinstance(device, str):
            device = device_from_uri(device)
        self.device = device if device is not None else MemoryBlockDevice()
        self.block_size = self.device.block_size
        self._inodes = InodeTable()
        # Block 0 reserved as a pseudo-superblock; data blocks from 1.
        self._next_block = 1
        self._free_blocks: list[int] = []
        self._dir_cache: dict[int, dict[str, int]] = {}

        root = self._inodes.allocate(FileType.DIRECTORY, mode=0o755)
        assert root.ino == InodeTable.ROOT_INO or True  # first alloc may differ
        self.root_ino = root.ino
        root.nlink = 2
        root.parent_ino = root.ino
        self._dir_cache[root.ino] = {".": root.ino, "..": root.ino}
        self._write_dir(root)

    # ------------------------------------------------------------------
    # Block allocation
    # ------------------------------------------------------------------

    def _alloc_block(self) -> int:
        if self._free_blocks:
            return self._free_blocks.pop()
        if self._next_block >= self.device.num_blocks:
            raise NoSpace("filesystem full")
        block = self._next_block
        self._next_block += 1
        return block

    def _free_block(self, block_no: int) -> None:
        self._free_blocks.append(block_no)

    def free_block_count(self) -> int:
        return self.device.num_blocks - self._next_block + len(self._free_blocks)

    # ------------------------------------------------------------------
    # Inode access
    # ------------------------------------------------------------------

    def iget(self, ino: int) -> Inode:
        """Fetch an inode by number (StaleHandle if it does not exist)."""
        return self._inodes.get(ino)

    def iget_checked(self, ino: int, generation: int) -> Inode:
        """Fetch an inode, validating the handle generation."""
        return self._inodes.get_checked(ino, generation)

    # ------------------------------------------------------------------
    # Directory operations
    # ------------------------------------------------------------------

    def lookup(self, dino: int, name: str) -> Inode:
        """Resolve ``name`` in directory ``dino``."""
        entries = self._dir_entries(self.iget(dino))
        if name not in entries:
            raise FileNotFound(f"no entry {name!r} in directory {dino}")
        return self.iget(entries[name])

    def readdir(self, dino: int) -> list[tuple[str, int]]:
        """List a directory, including ``.`` and ``..`` (stable order)."""
        inode = self.iget(dino)
        entries = self._dir_entries(inode)
        inode.touch_atime()
        special = [(n, entries[n]) for n in (".", "..")]
        rest = sorted((n, i) for n, i in entries.items() if n not in (".", ".."))
        return special + rest

    def create(self, dino: int, name: str, mode: int = 0o644,
               uid: int = 0, gid: int = 0) -> Inode:
        """Create a regular file; FileExists if the name is taken."""
        parent, entries = self._prepare_new_entry(dino, name)
        inode = self._inodes.allocate(FileType.REGULAR, mode, uid, gid)
        inode.parent_ino = parent.ino
        entries[name] = inode.ino
        self._write_dir(parent)
        parent.touch_mtime()
        return inode

    def mkdir(self, dino: int, name: str, mode: int = 0o755,
              uid: int = 0, gid: int = 0) -> Inode:
        parent, entries = self._prepare_new_entry(dino, name)
        inode = self._inodes.allocate(FileType.DIRECTORY, mode, uid, gid)
        inode.parent_ino = parent.ino
        inode.nlink = 2
        self._dir_cache[inode.ino] = {".": inode.ino, "..": parent.ino}
        self._write_dir(inode)
        entries[name] = inode.ino
        parent.nlink += 1
        self._write_dir(parent)
        parent.touch_mtime()
        return inode

    def symlink(self, dino: int, name: str, target: str, uid: int = 0,
                gid: int = 0) -> Inode:
        parent, entries = self._prepare_new_entry(dino, name)
        inode = self._inodes.allocate(FileType.SYMLINK, 0o777, uid, gid)
        inode.parent_ino = parent.ino
        inode.link_target = target
        inode.size = len(target.encode("utf-8"))
        entries[name] = inode.ino
        self._write_dir(parent)
        parent.touch_mtime()
        return inode

    def readlink(self, ino: int) -> str:
        inode = self.iget(ino)
        if not inode.is_symlink:
            raise InvalidArgument(f"inode {ino} is not a symlink")
        return inode.link_target

    def link(self, dino: int, name: str, target_ino: int) -> Inode:
        """Create a hard link to an existing non-directory inode."""
        target = self.iget(target_ino)
        if target.is_dir:
            raise IsADirectory("hard links to directories are not allowed")
        parent, entries = self._prepare_new_entry(dino, name)
        entries[name] = target.ino
        target.nlink += 1
        target.ctime = target.mtime
        self._write_dir(parent)
        parent.touch_mtime()
        return target

    def remove(self, dino: int, name: str) -> None:
        """Unlink a file or symlink (rmdir for directories)."""
        parent = self.iget(dino)
        entries = self._dir_entries(parent)
        if name in (".", ".."):
            raise InvalidArgument(f"cannot remove {name!r}")
        if name not in entries:
            raise FileNotFound(f"no entry {name!r} in directory {dino}")
        inode = self.iget(entries[name])
        if inode.is_dir:
            raise IsADirectory(f"{name!r} is a directory; use rmdir")
        del entries[name]
        self._write_dir(parent)
        parent.touch_mtime()
        inode.nlink -= 1
        if inode.nlink <= 0:
            self._release_inode(inode)

    def rmdir(self, dino: int, name: str) -> None:
        parent = self.iget(dino)
        entries = self._dir_entries(parent)
        if name in (".", ".."):
            raise InvalidArgument(f"cannot remove {name!r}")
        if name not in entries:
            raise FileNotFound(f"no entry {name!r} in directory {dino}")
        inode = self.iget(entries[name])
        if not inode.is_dir:
            raise NotADirectory(f"{name!r} is not a directory")
        victim_entries = self._dir_entries(inode)
        if set(victim_entries) - {".", ".."}:
            raise DirectoryNotEmpty(f"directory {name!r} is not empty")
        del entries[name]
        parent.nlink -= 1
        self._write_dir(parent)
        parent.touch_mtime()
        self._dir_cache.pop(inode.ino, None)
        self._release_inode(inode)

    def rename(self, sdino: int, sname: str, ddino: int, dname: str) -> None:
        """Rename with POSIX semantics (target replaced if compatible)."""
        if sname in (".", "..") or dname in (".", ".."):
            raise InvalidArgument("cannot rename '.' or '..'")
        self._check_name(dname)
        src_parent = self.iget(sdino)
        src_entries = self._dir_entries(src_parent)
        if sname not in src_entries:
            raise FileNotFound(f"no entry {sname!r} in directory {sdino}")
        moving = self.iget(src_entries[sname])
        dst_parent = self.iget(ddino)
        if not dst_parent.is_dir:
            raise NotADirectory(f"inode {ddino} is not a directory")
        if moving.is_dir and self._is_ancestor(moving.ino, dst_parent.ino):
            raise InvalidArgument("cannot move a directory into itself")
        dst_entries = self._dir_entries(dst_parent)

        if dname in dst_entries:
            existing = self.iget(dst_entries[dname])
            if existing.ino == moving.ino:
                return  # rename to self is a no-op
            if existing.is_dir:
                if not moving.is_dir:
                    raise IsADirectory(f"{dname!r} is a directory")
                if set(self._dir_entries(existing)) - {".", ".."}:
                    raise DirectoryNotEmpty(f"{dname!r} is not empty")
                dst_parent.nlink -= 1
                self._dir_cache.pop(existing.ino, None)
                self._release_inode(existing)
            else:
                if moving.is_dir:
                    raise NotADirectory(f"{dname!r} is not a directory")
                existing.nlink -= 1
                if existing.nlink <= 0:
                    self._release_inode(existing)

        del src_entries[sname]
        dst_entries[dname] = moving.ino
        moving.parent_ino = dst_parent.ino
        if moving.is_dir and sdino != ddino:
            src_parent.nlink -= 1
            dst_parent.nlink += 1
            self._dir_entries(moving)[".."] = dst_parent.ino
            self._write_dir(moving)
        self._write_dir(src_parent)
        if sdino != ddino:
            self._write_dir(dst_parent)
        src_parent.touch_mtime()
        dst_parent.touch_mtime()

    # ------------------------------------------------------------------
    # File data
    # ------------------------------------------------------------------

    def read(self, ino: int, offset: int, count: int) -> bytes:
        """Read up to ``count`` bytes at ``offset`` (short read at EOF)."""
        inode = self.iget(ino)
        if inode.is_dir:
            raise IsADirectory(f"inode {ino} is a directory")
        if offset < 0 or count < 0:
            raise InvalidArgument("negative offset or count")
        inode.touch_atime()
        if offset >= inode.size:
            return b""
        count = min(count, inode.size - offset)
        return self._read_data(inode, offset, count)

    def write(self, ino: int, offset: int, data: bytes) -> int:
        """Write ``data`` at ``offset`` (extending and hole-filling)."""
        inode = self.iget(ino)
        if inode.is_dir:
            raise IsADirectory(f"inode {ino} is a directory")
        if offset < 0:
            raise InvalidArgument("negative offset")
        if not data:
            return 0
        self._write_data(inode, offset, data)
        inode.size = max(inode.size, offset + len(data))
        inode.touch_mtime()
        return len(data)

    def truncate(self, ino: int, size: int) -> None:
        inode = self.iget(ino)
        if inode.is_dir:
            raise IsADirectory(f"inode {ino} is a directory")
        if size < 0:
            raise InvalidArgument("negative size")
        if size < inode.size:
            first_dead = (size + self.block_size - 1) // self.block_size
            for logical in [b for b in inode.blocks if b >= first_dead]:
                self._free_block(inode.blocks.pop(logical))
            # Zero the tail of the new last block so growth re-reads zeros.
            if size % self.block_size:
                logical = size // self.block_size
                if logical in inode.blocks:
                    keep = size % self.block_size
                    block = self.device.read_block(inode.blocks[logical])
                    self.device.write_block(
                        inode.blocks[logical], block[:keep]
                    )
        inode.size = size
        inode.touch_mtime()

    def setattr(self, ino: int, mode: int | None = None, uid: int | None = None,
                gid: int | None = None, size: int | None = None,
                atime: float | None = None, mtime: float | None = None) -> Inode:
        """Update inode attributes (the NFS SETATTR procedure maps here)."""
        inode = self.iget(ino)
        if size is not None and size != inode.size:
            self.truncate(ino, size)
        if mode is not None:
            inode.mode = mode & 0o7777
        if uid is not None:
            inode.uid = uid
        if gid is not None:
            inode.gid = gid
        if atime is not None:
            inode.atime = atime
        if mtime is not None:
            inode.mtime = mtime
        inode.ctime = max(inode.ctime, inode.mtime)
        return inode

    # ------------------------------------------------------------------
    # Path convenience API
    # ------------------------------------------------------------------

    #: Maximum symlink traversals during one path resolution (ELOOP bound,
    #: like the kernel's SYMLOOP_MAX).
    MAX_SYMLINK_DEPTH = 8

    def namei(self, path: str, follow_symlinks: bool = True,
              _depth: int = 0) -> Inode:
        """Resolve an absolute ``/``-separated path to an inode.

        Symlink chains longer than :data:`MAX_SYMLINK_DEPTH` (including
        cycles) raise :class:`~repro.errors.InvalidArgument`, mirroring
        ELOOP.
        """
        inode = self.iget(self.root_ino)
        parts = [p for p in path.split("/") if p]
        for i, part in enumerate(parts):
            if not inode.is_dir:
                raise NotADirectory(f"{'/'.join(parts[:i])!r} is not a directory")
            inode = self.lookup(inode.ino, part)
            if inode.is_symlink and (follow_symlinks or i < len(parts) - 1):
                if _depth >= self.MAX_SYMLINK_DEPTH:
                    raise InvalidArgument(
                        f"too many levels of symbolic links resolving {path!r}"
                    )
                inode = self.namei(inode.link_target, _depth=_depth + 1)
        return inode

    def create_path(self, path: str, mode: int = 0o644) -> Inode:
        dino, name = self._split_path(path)
        return self.create(dino, name, mode)

    def mkdir_path(self, path: str, mode: int = 0o755) -> Inode:
        dino, name = self._split_path(path)
        return self.mkdir(dino, name, mode)

    def makedirs(self, path: str, mode: int = 0o755) -> Inode:
        """Create every missing component of ``path`` (like os.makedirs)."""
        inode = self.iget(self.root_ino)
        for part in (p for p in path.split("/") if p):
            try:
                inode = self.lookup(inode.ino, part)
            except FileNotFound:
                inode = self.mkdir(inode.ino, part, mode)
        return inode

    def write_file(self, path: str, data: bytes, mode: int = 0o644) -> Inode:
        """Create-or-truncate ``path`` and write ``data`` (test helper)."""
        try:
            inode = self.namei(path)
            self.truncate(inode.ino, 0)
        except FileNotFound:
            inode = self.create_path(path, mode)
        self.write(inode.ino, 0, data)
        return inode

    def read_file(self, path: str) -> bytes:
        inode = self.namei(path)
        return self.read(inode.ino, 0, inode.size)

    def _split_path(self, path: str) -> tuple[int, str]:
        parts = [p for p in path.split("/") if p]
        if not parts:
            raise InvalidArgument("empty path")
        parent = self.iget(self.root_ino)
        for part in parts[:-1]:
            parent = self.lookup(parent.ino, part)
        return parent.ino, parts[-1]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _prepare_new_entry(self, dino: int, name: str) -> tuple[Inode, dict[str, int]]:
        self._check_name(name)
        parent = self.iget(dino)
        if not parent.is_dir:
            raise NotADirectory(f"inode {dino} is not a directory")
        entries = self._dir_entries(parent)
        if name in entries:
            raise FileExists(f"entry {name!r} already exists in directory {dino}")
        return parent, entries

    @staticmethod
    def _check_name(name: str) -> None:
        if not name or name in (".", ".."):
            raise InvalidArgument(f"invalid name: {name!r}")
        if "/" in name or "\x00" in name:
            raise InvalidArgument(f"name contains invalid characters: {name!r}")
        if len(name.encode("utf-8")) > MAX_NAME_LEN:
            raise NameTooLong(f"name exceeds {MAX_NAME_LEN} bytes")

    def _release_inode(self, inode: Inode) -> None:
        for block in inode.blocks.values():
            self._free_block(block)
        inode.blocks.clear()
        self._inodes.free(inode.ino)

    def _is_ancestor(self, maybe_ancestor: int, ino: int) -> bool:
        """True if ``maybe_ancestor`` is ``ino`` or an ancestor of it."""
        current = ino
        while True:
            if current == maybe_ancestor:
                return True
            parent = self._dir_entries(self.iget(current))[".."]
            if parent == current:
                return False
            current = parent

    # -- directory (de)serialization ------------------------------------

    def _dir_entries(self, inode: Inode) -> dict[str, int]:
        if not inode.is_dir:
            raise NotADirectory(f"inode {inode.ino} is not a directory")
        cached = self._dir_cache.get(inode.ino)
        if cached is None:
            cached = self._parse_dir(self._read_data(inode, 0, inode.size))
            self._dir_cache[inode.ino] = cached
        return cached

    def _write_dir(self, inode: Inode) -> None:
        entries = self._dir_cache[inode.ino]
        payload = bytearray()
        for name, ino in entries.items():
            encoded = name.encode("utf-8")
            payload += _DIRENT_HEADER.pack(ino, len(encoded))
            payload += encoded
        data = bytes(payload)
        if len(data) < inode.size:
            self._shrink_data(inode, len(data))
        if data:
            self._write_data(inode, 0, data)
        inode.size = len(data)
        inode.touch_mtime()

    @staticmethod
    def _parse_dir(data: bytes) -> dict[str, int]:
        entries: dict[str, int] = {}
        pos = 0
        while pos < len(data):
            ino, name_len = _DIRENT_HEADER.unpack_from(data, pos)
            pos += _DIRENT_HEADER.size
            name = data[pos : pos + name_len].decode("utf-8")
            pos += name_len
            entries[name] = ino
        return entries

    def _shrink_data(self, inode: Inode, size: int) -> None:
        first_dead = (size + self.block_size - 1) // self.block_size
        for logical in [b for b in inode.blocks if b >= first_dead]:
            self._free_block(inode.blocks.pop(logical))

    # -- data block I/O ---------------------------------------------------

    def _read_data(self, inode: Inode, offset: int, count: int) -> bytes:
        # Plan the whole extent first, then fetch every needed physical
        # block in ONE vectored read — over remote:// backends that is one
        # RPC round trip per call instead of one per block (the cold-path
        # cost the paper's distributed setting makes first-order).
        spans: list[tuple[int | None, int, int]] = []
        remaining = count
        pos = offset
        while remaining > 0:
            logical = pos // self.block_size
            within = pos % self.block_size
            chunk = min(remaining, self.block_size - within)
            spans.append((inode.blocks.get(logical), within, chunk))
            pos += chunk
            remaining -= chunk
        needed = [block_no for block_no, _, _ in spans if block_no is not None]
        fetched = dict(zip(needed, self.device.read_blocks(needed))) \
            if needed else {}
        out = bytearray()
        for block_no, within, chunk in spans:
            if block_no is None:
                out += b"\x00" * chunk  # hole
            else:
                out += fetched[block_no][within : within + chunk]
        return bytes(out)

    def _write_data(self, inode: Inode, offset: int, data: bytes) -> None:
        # Same discipline as _read_data: one batched read for the partial
        # blocks that need read-modify-write, then one batched write for
        # the whole extent.
        plan: list[tuple[int, int, int, int, bool]] = []
        pos = offset
        data_pos = 0
        remaining = len(data)
        while remaining > 0:
            logical = pos // self.block_size
            within = pos % self.block_size
            chunk = min(remaining, self.block_size - within)
            existing_no = inode.blocks.get(logical)
            if existing_no is None:
                block_no = self._alloc_block()
                inode.blocks[logical] = block_no
                needs_read = False
            else:
                block_no = existing_no
                needs_read = chunk < self.block_size
            plan.append((block_no, within, chunk, data_pos, needs_read))
            pos += chunk
            data_pos += chunk
            remaining -= chunk
        to_read = [block_no for block_no, _, _, _, needs in plan if needs]
        existing = dict(zip(to_read, self.device.read_blocks(to_read))) \
            if to_read else {}
        writes: list[tuple[int, bytes]] = []
        for block_no, within, chunk, data_pos, needs_read in plan:
            if chunk == self.block_size:
                new_block = data[data_pos : data_pos + chunk]
            else:
                base = existing[block_no] if needs_read \
                    else b"\x00" * self.block_size
                new_block = (
                    base[:within]
                    + data[data_pos : data_pos + chunk]
                    + base[within + chunk :]
                )
            writes.append((block_no, new_block))
        self.device.write_blocks(writes)
