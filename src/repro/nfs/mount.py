"""The mount program: export paths -> root file handles (RFC 1094 App. A)."""

from __future__ import annotations

from repro.errors import FSError, NFSError
from repro.fs.vfs import VFS
from repro.nfs.protocol import (
    MAX_PATH,
    MOUNT_PROGRAM,
    MOUNT_VERSION,
    FileHandle,
    NFSStat,
    pack_fhandle,
    stat_for_error,
    unpack_fhandle,
)
from repro.rpc.client import RPCClient
from repro.rpc.server import CallContext, RPCProgram
from repro.rpc.transport import Transport
from repro.rpc.xdr import XDRDecoder, XDREncoder


class MountProc:
    NULL = 0
    MNT = 1
    UMNT = 3


class MountProgram(RPCProgram):
    """Maps export paths to file handles over a VFS.

    With ``exports=None`` (the default) every existing path is mountable —
    the DisCFS configuration, where mounting grants nothing by itself
    (every subsequent operation is policy-checked, and a freshly attached
    directory shows permissions 000).  Pass an explicit list to restrict
    mounting like /etc/exports does.
    """

    def __init__(self, vfs: VFS, exports: list[str] | None = None):
        super().__init__(MOUNT_PROGRAM, MOUNT_VERSION, name="mount")
        self.vfs = vfs
        self._exports: set[str] | None = (
            None if exports is None else {self._normalize(p) for p in exports}
        )
        self.register(MountProc.MNT, self._proc_mnt)
        self.register(MountProc.UMNT, self._proc_umnt)

    def add_export(self, path: str) -> None:
        if self._exports is None:
            self._exports = set()
        self._exports.add(self._normalize(path))

    @staticmethod
    def _normalize(path: str) -> str:
        return "/" + "/".join(p for p in path.split("/") if p)

    def _proc_mnt(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        path = self._normalize(dec.unpack_string(MAX_PATH))
        enc = XDREncoder()
        if self._exports is not None and path not in self._exports:
            enc.pack_enum(NFSStat.NFSERR_ACCES)
            return enc.getvalue()
        try:
            inode = self.vfs.fs.namei(path)
        # NFS wire boundary: the error is preserved in-band as the reply's
        # NFSStat code, not swallowed.
        except FSError as exc:  # discfs-lint: disable=error-taxonomy
            enc.pack_enum(stat_for_error(exc))
            return enc.getvalue()
        enc.pack_enum(NFSStat.NFS_OK)
        pack_fhandle(enc, FileHandle.of(inode))
        return enc.getvalue()

    def _proc_umnt(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        dec.unpack_string(MAX_PATH)
        return b""


class MountClient:
    """Client stub for the mount program."""

    def __init__(self, transport: Transport):
        self._client = RPCClient(transport, MOUNT_PROGRAM, MOUNT_VERSION)

    def mount(self, path: str = "/") -> FileHandle:
        enc = XDREncoder()
        enc.pack_string(path)
        dec = self._client.call(MountProc.MNT, enc.getvalue())
        status = dec.unpack_enum()
        if status != NFSStat.NFS_OK:
            raise NFSError(status, f"mount of {path!r} failed")
        fh = unpack_fhandle(dec)
        dec.done()
        return fh

    def unmount(self, path: str = "/") -> None:
        enc = XDREncoder()
        enc.pack_string(path)
        self._client.call(MountProc.UMNT, enc.getvalue()).done()
