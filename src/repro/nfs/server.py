"""The user-level NFS server.

:class:`NFSProgram` exports a :class:`repro.fs.vfs.VFS` as an RPC program.
Access control is delegated to a pluggable :class:`AccessController`; the
base controller allows everything (this is the CFS-NE configuration), and
``repro.core.server`` installs the KeyNote-backed controller that makes
the server a DisCFS server.  This mirrors the paper's architecture: the
NFS mechanism is identical across systems, only the policy layer differs.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import FSError, XDRError
from repro.fs.inode import Inode
from repro.fs.vfs import VFS
from repro.nfs.protocol import (
    MAX_DATA,
    MAX_NAME,
    MAX_PATH,
    NFS_PROGRAM,
    NFS_VERSION,
    FileHandle,
    NFSStat,
    Proc,
    pack_fattr,
    pack_fhandle,
    stat_for_error,
    unpack_fhandle,
    unpack_sattr,
)
from repro.rpc.server import CallContext, RPCProgram
from repro.rpc.xdr import XDRDecoder, XDREncoder


class AccessDeniedSignal(Exception):
    """Raised by controllers to deny an operation (mapped to NFSERR_ACCES)."""


class AccessController(Protocol):
    """Hook points the server consults around each operation."""

    def check(self, ctx: CallContext, op: str, fh: FileHandle,
              inode: Inode | None) -> None:
        """Raise :class:`AccessDeniedSignal` to reject the operation."""

    def check_lookup(self, ctx: CallContext, dir_fh: FileHandle,
                     dir_inode: Inode, child: Inode) -> None:
        """Authorize resolving ``child`` inside ``dir_fh``.

        Split out from :meth:`check` because DisCFS permits looking up a
        file the requester holds a credential *for*, even without rights
        on the containing directory (the paper: a credentialed file
        "will appear under the DisCFS mount point").
        """

    def effective_mode(self, ctx: CallContext, inode: Inode) -> int:
        """Mode bits GETATTR should report to this requester."""

    def on_create(self, ctx: CallContext, inode: Inode) -> str | None:
        """Optional credential text to hand back after CREATE/MKDIR."""

    def submit_credential(self, ctx: CallContext, text: str) -> str:
        """Handle a SUBMITCRED payload; returns a status message."""

    def revoke(self, ctx: CallContext, payload: str) -> str:
        """Handle a REVOKE payload."""

    def list_credentials(self, ctx: CallContext) -> list[str]:
        """Return the credentials the server currently holds."""

    def list_audit(self, ctx: CallContext, limit: int) -> list[str]:
        """Return formatted audit records (most recent last)."""


class AllowAllController:
    """The pass-through controller: plain NFS semantics (CFS/CFS-NE)."""

    def check(self, ctx, op, fh, inode) -> None:  # noqa: D102
        return None

    def check_lookup(self, ctx, dir_fh, dir_inode, child) -> None:  # noqa: D102
        return None

    def effective_mode(self, ctx, inode) -> int:  # noqa: D102
        return inode.mode & 0o7777

    def on_create(self, ctx, inode):  # noqa: D102
        return None

    def submit_credential(self, ctx, text) -> str:  # noqa: D102
        raise AccessDeniedSignal("this server does not accept credentials")

    def revoke(self, ctx, payload) -> str:  # noqa: D102
        raise AccessDeniedSignal("this server does not support revocation")

    def list_credentials(self, ctx) -> list[str]:  # noqa: D102
        return []

    def list_audit(self, ctx, limit) -> list[str]:  # noqa: D102
        raise AccessDeniedSignal("this server keeps no audit log")


class NFSProgram(RPCProgram):
    """The NFS RPC program bound to one VFS + controller."""

    def __init__(self, vfs: VFS | str, controller: AccessController | None = None):
        super().__init__(NFS_PROGRAM, NFS_VERSION, name="nfs")
        # A string is a storage-backend URI: export a fresh filesystem on
        # that backend (the registry resolves mem://, file://, sqlite://,
        # shard://, cached:// — see repro.storage).
        self.vfs = VFS(vfs) if isinstance(vfs, str) else vfs
        self.controller = controller if controller is not None else AllowAllController()
        self._register_procedures()

    # -- helpers -----------------------------------------------------------

    def _inode_for(self, fh: FileHandle) -> Inode:
        return self.vfs.getattr(fh.file_id())

    def _attrstat(self, inode: Inode, ctx: CallContext) -> bytes:
        enc = XDREncoder()
        enc.pack_enum(NFSStat.NFS_OK)
        self._pack_fattr_for(enc, inode, ctx)
        return enc.getvalue()

    def _pack_fattr_for(self, enc: XDREncoder, inode: Inode, ctx: CallContext) -> None:
        reported = self.controller.effective_mode(ctx, inode)
        # Report the controller-determined permission bits without
        # mutating the stored inode.
        original = inode.mode
        try:
            inode.mode = reported
            pack_fattr(enc, inode, self.vfs.fs.block_size)
        finally:
            inode.mode = original

    def _diropres(self, inode: Inode, ctx: CallContext,
                  credential: str | None = None) -> bytes:
        enc = XDREncoder()
        enc.pack_enum(NFSStat.NFS_OK)
        pack_fhandle(enc, FileHandle.of(inode))
        self._pack_fattr_for(enc, inode, ctx)
        enc.pack_optional(credential, lambda e, c: e.pack_string(c))
        return enc.getvalue()

    @staticmethod
    def _error(status: NFSStat) -> bytes:
        enc = XDREncoder()
        enc.pack_enum(status)
        return enc.getvalue()

    def _guarded(self, handler):
        """Wrap a procedure body, mapping FS errors and denials to statuses."""

        def wrapped(dec: XDRDecoder, ctx: CallContext) -> bytes:
            try:
                return handler(dec, ctx)
            except AccessDeniedSignal:
                return self._error(NFSStat.NFSERR_ACCES)
            except FSError as exc:
                return self._error(stat_for_error(exc))

        return wrapped

    def _check(self, ctx: CallContext, op: str, fh: FileHandle,
               inode: Inode | None) -> None:
        self.controller.check(ctx, op, fh, inode)

    # -- procedure registration ------------------------------------------

    def _register_procedures(self) -> None:
        table = {
            Proc.GETATTR: self._proc_getattr,
            Proc.SETATTR: self._proc_setattr,
            Proc.LOOKUP: self._proc_lookup,
            Proc.READLINK: self._proc_readlink,
            Proc.READ: self._proc_read,
            Proc.WRITE: self._proc_write,
            Proc.CREATE: self._proc_create,
            Proc.REMOVE: self._proc_remove,
            Proc.RENAME: self._proc_rename,
            Proc.LINK: self._proc_link,
            Proc.SYMLINK: self._proc_symlink,
            Proc.MKDIR: self._proc_mkdir,
            Proc.RMDIR: self._proc_rmdir,
            Proc.READDIR: self._proc_readdir,
            Proc.STATFS: self._proc_statfs,
            Proc.SUBMITCRED: self._proc_submitcred,
            Proc.REVOKE: self._proc_revoke,
            Proc.LISTCREDS: self._proc_listcreds,
            Proc.AUDITLOG: self._proc_auditlog,
        }
        for proc, handler in table.items():
            self.register(proc, self._guarded(handler))

    # -- procedures -------------------------------------------------------

    def _proc_getattr(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        fh = unpack_fhandle(dec)
        inode = self._inode_for(fh)
        self._check(ctx, "getattr", fh, inode)
        return self._attrstat(inode, ctx)

    def _proc_setattr(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        fh = unpack_fhandle(dec)
        sattr = unpack_sattr(dec)
        inode = self._inode_for(fh)
        self._check(ctx, "setattr", fh, inode)
        inode = self.vfs.setattr(
            fh.file_id(), mode=sattr.mode, uid=sattr.uid, gid=sattr.gid,
            size=sattr.size, atime=sattr.atime, mtime=sattr.mtime,
        )
        return self._attrstat(inode, ctx)

    def _proc_lookup(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        fh = unpack_fhandle(dec)
        name = dec.unpack_string(MAX_NAME)
        dir_inode = self._inode_for(fh)
        # Resolve first, authorize second: DisCFS authorizes lookups by
        # directory rights OR rights on the child itself (controller's
        # choice).  Denial is indistinguishable either way (NFSERR_ACCES).
        inode = self.vfs.lookup(fh.file_id(), name)
        self.controller.check_lookup(ctx, fh, dir_inode, inode)
        return self._diropres(inode, ctx)

    def _proc_readlink(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        fh = unpack_fhandle(dec)
        inode = self._inode_for(fh)
        self._check(ctx, "readlink", fh, inode)
        target = self.vfs.readlink(fh.file_id())
        enc = XDREncoder()
        enc.pack_enum(NFSStat.NFS_OK)
        enc.pack_string(target)
        return enc.getvalue()

    def _proc_read(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        fh = unpack_fhandle(dec)
        offset = dec.unpack_uint()
        count = dec.unpack_uint()
        dec.unpack_uint()  # totalcount (unused, per RFC)
        if count > MAX_DATA:
            raise XDRError(f"read of {count} bytes exceeds NFS maximum {MAX_DATA}")
        inode = self._inode_for(fh)
        self._check(ctx, "read", fh, inode)
        data = self.vfs.read(fh.file_id(), offset, count)
        enc = XDREncoder()
        enc.pack_enum(NFSStat.NFS_OK)
        self._pack_fattr_for(enc, inode, ctx)
        enc.pack_opaque(data)
        return enc.getvalue()

    def _proc_write(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        fh = unpack_fhandle(dec)
        dec.unpack_uint()  # beginoffset (unused)
        offset = dec.unpack_uint()
        dec.unpack_uint()  # totalcount (unused)
        data = dec.unpack_opaque(MAX_DATA)
        inode = self._inode_for(fh)
        self._check(ctx, "write", fh, inode)
        self.vfs.write(fh.file_id(), offset, data)
        return self._attrstat(inode, ctx)

    def _proc_create(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        fh = unpack_fhandle(dec)
        name = dec.unpack_string(MAX_NAME)
        sattr = unpack_sattr(dec)
        dir_inode = self._inode_for(fh)
        self._check(ctx, "create", fh, dir_inode)
        inode = self.vfs.create(fh.file_id(), name,
                                mode=sattr.mode if sattr.mode is not None else 0o644)
        if sattr.size is not None:
            self.vfs.truncate(FileHandle.of(inode).file_id(), sattr.size)
        credential = self.controller.on_create(ctx, inode)
        return self._diropres(inode, ctx, credential)

    def _proc_remove(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        fh = unpack_fhandle(dec)
        name = dec.unpack_string(MAX_NAME)
        dir_inode = self._inode_for(fh)
        self._check(ctx, "remove", fh, dir_inode)
        self.vfs.remove(fh.file_id(), name)
        return self._error(NFSStat.NFS_OK)

    def _proc_rename(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        from_fh = unpack_fhandle(dec)
        from_name = dec.unpack_string(MAX_NAME)
        to_fh = unpack_fhandle(dec)
        to_name = dec.unpack_string(MAX_NAME)
        from_dir = self._inode_for(from_fh)
        to_dir = self._inode_for(to_fh)
        self._check(ctx, "rename", from_fh, from_dir)
        self._check(ctx, "rename", to_fh, to_dir)
        self.vfs.rename(from_fh.file_id(), from_name, to_fh.file_id(), to_name)
        return self._error(NFSStat.NFS_OK)

    def _proc_link(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        target_fh = unpack_fhandle(dec)
        dir_fh = unpack_fhandle(dec)
        name = dec.unpack_string(MAX_NAME)
        target = self._inode_for(target_fh)
        dir_inode = self._inode_for(dir_fh)
        self._check(ctx, "link_target", target_fh, target)
        self._check(ctx, "link", dir_fh, dir_inode)
        self.vfs.link(dir_fh.file_id(), name, target_fh.file_id())
        return self._error(NFSStat.NFS_OK)

    def _proc_symlink(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        fh = unpack_fhandle(dec)
        name = dec.unpack_string(MAX_NAME)
        target = dec.unpack_string(MAX_PATH)
        unpack_sattr(dec)  # attributes of symlinks are ignored (RFC 1094)
        dir_inode = self._inode_for(fh)
        self._check(ctx, "symlink", fh, dir_inode)
        self.vfs.symlink(fh.file_id(), name, target)
        return self._error(NFSStat.NFS_OK)

    def _proc_mkdir(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        fh = unpack_fhandle(dec)
        name = dec.unpack_string(MAX_NAME)
        sattr = unpack_sattr(dec)
        dir_inode = self._inode_for(fh)
        self._check(ctx, "mkdir", fh, dir_inode)
        inode = self.vfs.mkdir(fh.file_id(), name,
                               mode=sattr.mode if sattr.mode is not None else 0o755)
        credential = self.controller.on_create(ctx, inode)
        return self._diropres(inode, ctx, credential)

    def _proc_rmdir(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        fh = unpack_fhandle(dec)
        name = dec.unpack_string(MAX_NAME)
        dir_inode = self._inode_for(fh)
        self._check(ctx, "rmdir", fh, dir_inode)
        self.vfs.rmdir(fh.file_id(), name)
        return self._error(NFSStat.NFS_OK)

    def _proc_readdir(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        fh = unpack_fhandle(dec)
        cookie = dec.unpack_uint()
        count = dec.unpack_uint()
        dir_inode = self._inode_for(fh)
        self._check(ctx, "readdir", fh, dir_inode)
        entries = self.vfs.readdir(fh.file_id())

        enc = XDREncoder()
        enc.pack_enum(NFSStat.NFS_OK)
        budget = max(count, 512)
        emitted = 0
        index = cookie
        while index < len(entries):
            name, ino = entries[index]
            entry_size = 3 * 4 + 4 + len(name) + 8
            if emitted and entry_size > budget:
                break
            enc.pack_bool(True)  # another entry follows
            enc.pack_uint(ino)
            enc.pack_string(name)
            enc.pack_uint(index + 1)  # cookie of the *next* entry
            budget -= entry_size
            emitted += 1
            index += 1
        enc.pack_bool(False)  # no more entries in this reply
        enc.pack_bool(index >= len(entries))  # eof
        return enc.getvalue()

    def _proc_statfs(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        fh = unpack_fhandle(dec)
        self._check(ctx, "statfs", fh, None)
        info = self.vfs.statfs()
        enc = XDREncoder()
        enc.pack_enum(NFSStat.NFS_OK)
        enc.pack_uint(MAX_DATA)  # tsize: optimal transfer size
        enc.pack_uint(info["block_size"])
        enc.pack_uint(info["total_blocks"])
        enc.pack_uint(info["free_blocks"])
        enc.pack_uint(info["free_blocks"])  # bavail == bfree (no reservation)
        return enc.getvalue()

    # -- DisCFS extension procedures --------------------------------------

    def _proc_submitcred(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        text = dec.unpack_string(max_size=1 << 20)
        message = self.controller.submit_credential(ctx, text)
        enc = XDREncoder()
        enc.pack_enum(NFSStat.NFS_OK)
        enc.pack_string(message)
        return enc.getvalue()

    def _proc_revoke(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        payload = dec.unpack_string(max_size=1 << 20)
        message = self.controller.revoke(ctx, payload)
        enc = XDREncoder()
        enc.pack_enum(NFSStat.NFS_OK)
        enc.pack_string(message)
        return enc.getvalue()

    def _proc_listcreds(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        creds = self.controller.list_credentials(ctx)
        enc = XDREncoder()
        enc.pack_enum(NFSStat.NFS_OK)
        enc.pack_array(creds, lambda e, c: e.pack_string(c))
        return enc.getvalue()

    def _proc_auditlog(self, dec: XDRDecoder, ctx: CallContext) -> bytes:
        limit = dec.unpack_uint()
        lines = self.controller.list_audit(ctx, limit)
        enc = XDREncoder()
        enc.pack_enum(NFSStat.NFS_OK)
        enc.pack_array(lines, lambda e, line: e.pack_string(line))
        return enc.getvalue()
