"""Client-side NFS attribute caching.

Real NFS clients (including OpenBSD 2.8's, which served the paper's
testbed) cache file attributes for a few seconds to avoid a GETATTR round
trip per stat.  :class:`CachingNFSClient` layers the standard policy over
any :class:`~repro.nfs.client.NFSClient`:

* attributes are served from cache within a TTL (default 3 s for files,
  30 s for directories, like the classic acregmin/acdirmin),
* every reply that carries fresh attributes (lookup, read, write, create,
  setattr) repopulates the cache,
* namespace mutations invalidate the affected entries.

Consistency model: close-to-open-ish, like NFSv2 — staleness within the
TTL is possible by design; tests pin the exact semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.nfs.client import NFSClient
from repro.nfs.protocol import FAttr, FileHandle, SAttr


@dataclass
class AttrCacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachingNFSClient:
    """An NFSClient wrapper with attribute caching.

    Exposes the same surface as :class:`NFSClient` (delegating what it
    does not intercept), so it drops into the benchmark targets.
    """

    def __init__(self, inner: NFSClient, file_ttl: float = 3.0,
                 dir_ttl: float = 30.0,
                 clock=time.monotonic):
        self._inner = inner
        self._file_ttl = file_ttl
        self._dir_ttl = dir_ttl
        self._clock = clock
        self._attrs: dict[FileHandle, tuple[FAttr, float]] = {}
        self.stats = AttrCacheStats()

    # -- cache mechanics --------------------------------------------------

    def _remember(self, fh: FileHandle, attr: FAttr) -> None:
        self._attrs[fh] = (attr, self._clock())

    def _forget(self, fh: FileHandle) -> None:
        self._attrs.pop(fh, None)

    def invalidate(self) -> None:
        """Drop the whole cache (close-to-open: call on open boundaries)."""
        self._attrs.clear()

    # -- intercepted operations ----------------------------------------------

    def getattr(self, fh: FileHandle) -> FAttr:
        entry = self._attrs.get(fh)
        if entry is not None:
            attr, stored = entry
            ttl = self._dir_ttl if attr.is_dir else self._file_ttl
            if self._clock() - stored < ttl:
                self.stats.hits += 1
                return attr
        self.stats.misses += 1
        attr = self._inner.getattr(fh)
        self._remember(fh, attr)
        return attr

    def lookup(self, dir_fh: FileHandle, name: str):
        fh, attr = self._inner.lookup(dir_fh, name)
        self._remember(fh, attr)
        return fh, attr

    def write(self, fh: FileHandle, offset: int, data: bytes) -> FAttr:
        attr = self._inner.write(fh, offset, data)
        self._remember(fh, attr)
        return attr

    def setattr(self, fh: FileHandle, sattr: SAttr) -> FAttr:
        attr = self._inner.setattr(fh, sattr)
        self._remember(fh, attr)
        return attr

    def create(self, dir_fh: FileHandle, name: str, sattr: SAttr | None = None):
        fh, attr, credential = self._inner.create(dir_fh, name, sattr)
        self._remember(fh, attr)
        self._forget(dir_fh)  # directory mtime/size changed
        return fh, attr, credential

    def mkdir(self, dir_fh: FileHandle, name: str, sattr: SAttr | None = None):
        fh, attr, credential = self._inner.mkdir(dir_fh, name, sattr)
        self._remember(fh, attr)
        self._forget(dir_fh)
        return fh, attr, credential

    def remove(self, dir_fh: FileHandle, name: str) -> None:
        self._inner.remove(dir_fh, name)
        self._forget(dir_fh)

    def rmdir(self, dir_fh: FileHandle, name: str) -> None:
        self._inner.rmdir(dir_fh, name)
        self._forget(dir_fh)

    def rename(self, from_dir: FileHandle, from_name: str,
               to_dir: FileHandle, to_name: str) -> None:
        self._inner.rename(from_dir, from_name, to_dir, to_name)
        self._forget(from_dir)
        self._forget(to_dir)

    # -- passthrough -----------------------------------------------------

    def __getattr__(self, name):
        return getattr(self._inner, name)
