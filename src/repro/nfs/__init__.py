"""A user-level NFSv2-style network filesystem.

The DisCFS prototype was "a modified user-level NFS server" (paper
abstract); CFS likewise ran as a user-level NFS daemon.  This package
provides that substrate:

* :mod:`repro.nfs.protocol` — wire types (file handles, fattr, status
  codes) and procedure numbers, following RFC 1094,
* :mod:`repro.nfs.server` — the server, exporting any
  :class:`repro.fs.vfs.VFS` over RPC,
* :mod:`repro.nfs.client` — a client with both procedure-level calls and
  a convenience file API,
* :mod:`repro.nfs.mount` — the mount program (path -> root file handle).

File handles carry (inode, generation), fixing the bare-inode weakness the
paper flags in its prototype (section 5).
"""

from repro.nfs.client import NFSClient
from repro.nfs.mount import MountClient, MountProgram
from repro.nfs.protocol import NFS_PROGRAM, NFS_VERSION, FileHandle, NFSStat
from repro.nfs.server import NFSProgram

__all__ = [
    "NFSClient",
    "NFSProgram",
    "MountClient",
    "MountProgram",
    "FileHandle",
    "NFSStat",
    "NFS_PROGRAM",
    "NFS_VERSION",
]
