"""NFS client: procedure stubs plus a small file-oriented convenience API.

The convenience layer (:meth:`NFSClient.open`, returning
:class:`RemoteFile`) gives examples and benchmarks stdio-like buffered
I/O — relevant because Bonnie's per-character phases measure exactly that
path (putc/getc through a user-space buffer, flushed in block-size units).
"""

from __future__ import annotations

from repro.errors import NFSError
from repro.nfs.protocol import (
    MAX_DATA,
    NFS_PROGRAM,
    NFS_VERSION,
    FAttr,
    FileHandle,
    NFSStat,
    Proc,
    SAttr,
    pack_fhandle,
    pack_sattr,
    raise_for_status,
    unpack_fattr,
    unpack_fhandle,
)
from repro.rpc.client import RPCClient
from repro.rpc.transport import Transport
from repro.rpc.xdr import XDREncoder


class NFSClient:
    """Synchronous NFSv2 client over any transport."""

    def __init__(self, transport: Transport, root: FileHandle):
        self._rpc = RPCClient(transport, NFS_PROGRAM, NFS_VERSION)
        self.root = root

    # -- raw procedures ----------------------------------------------------

    def null(self) -> None:
        self._rpc.ping()

    def getattr(self, fh: FileHandle) -> FAttr:
        enc = XDREncoder()
        pack_fhandle(enc, fh)
        dec = self._rpc.call(Proc.GETATTR, enc.getvalue())
        raise_for_status(dec.unpack_enum())
        attr = unpack_fattr(dec)
        dec.done()
        return attr

    def setattr(self, fh: FileHandle, sattr: SAttr) -> FAttr:
        enc = XDREncoder()
        pack_fhandle(enc, fh)
        pack_sattr(enc, sattr)
        dec = self._rpc.call(Proc.SETATTR, enc.getvalue())
        raise_for_status(dec.unpack_enum())
        attr = unpack_fattr(dec)
        dec.done()
        return attr

    def lookup(self, dir_fh: FileHandle, name: str) -> tuple[FileHandle, FAttr]:
        enc = XDREncoder()
        pack_fhandle(enc, dir_fh)
        enc.pack_string(name)
        dec = self._rpc.call(Proc.LOOKUP, enc.getvalue())
        raise_for_status(dec.unpack_enum())
        fh = unpack_fhandle(dec)
        attr = unpack_fattr(dec)
        dec.unpack_optional(lambda d: d.unpack_string())
        dec.done()
        return fh, attr

    def readlink(self, fh: FileHandle) -> str:
        enc = XDREncoder()
        pack_fhandle(enc, fh)
        dec = self._rpc.call(Proc.READLINK, enc.getvalue())
        raise_for_status(dec.unpack_enum())
        target = dec.unpack_string()
        dec.done()
        return target

    def read(self, fh: FileHandle, offset: int, count: int) -> bytes:
        enc = XDREncoder()
        pack_fhandle(enc, fh)
        enc.pack_uint(offset)
        enc.pack_uint(count)
        enc.pack_uint(count)
        dec = self._rpc.call(Proc.READ, enc.getvalue())
        raise_for_status(dec.unpack_enum())
        unpack_fattr(dec)
        data = dec.unpack_opaque(MAX_DATA)
        dec.done()
        return data

    def write(self, fh: FileHandle, offset: int, data: bytes) -> FAttr:
        if len(data) > MAX_DATA:
            raise NFSError(NFSStat.NFSERR_INVAL,
                           f"write of {len(data)} bytes exceeds {MAX_DATA}")
        enc = XDREncoder()
        pack_fhandle(enc, fh)
        enc.pack_uint(0)
        enc.pack_uint(offset)
        enc.pack_uint(len(data))
        enc.pack_opaque(data)
        dec = self._rpc.call(Proc.WRITE, enc.getvalue())
        raise_for_status(dec.unpack_enum())
        attr = unpack_fattr(dec)
        dec.done()
        return attr

    def create(self, dir_fh: FileHandle, name: str,
               sattr: SAttr | None = None) -> tuple[FileHandle, FAttr, str | None]:
        """CREATE; the third result is the creator credential, if the
        server issued one (DisCFS extension)."""
        return self._create_like(Proc.CREATE, dir_fh, name, sattr)

    def mkdir(self, dir_fh: FileHandle, name: str,
              sattr: SAttr | None = None) -> tuple[FileHandle, FAttr, str | None]:
        return self._create_like(Proc.MKDIR, dir_fh, name, sattr)

    def _create_like(self, proc: int, dir_fh: FileHandle, name: str,
                     sattr: SAttr | None) -> tuple[FileHandle, FAttr, str | None]:
        enc = XDREncoder()
        pack_fhandle(enc, dir_fh)
        enc.pack_string(name)
        pack_sattr(enc, sattr if sattr is not None else SAttr())
        dec = self._rpc.call(proc, enc.getvalue())
        raise_for_status(dec.unpack_enum())
        fh = unpack_fhandle(dec)
        attr = unpack_fattr(dec)
        credential = dec.unpack_optional(lambda d: d.unpack_string())
        dec.done()
        return fh, attr, credential

    def remove(self, dir_fh: FileHandle, name: str) -> None:
        self._dirop_status(Proc.REMOVE, dir_fh, name)

    def rmdir(self, dir_fh: FileHandle, name: str) -> None:
        self._dirop_status(Proc.RMDIR, dir_fh, name)

    def _dirop_status(self, proc: int, dir_fh: FileHandle, name: str) -> None:
        enc = XDREncoder()
        pack_fhandle(enc, dir_fh)
        enc.pack_string(name)
        dec = self._rpc.call(proc, enc.getvalue())
        raise_for_status(dec.unpack_enum())
        dec.done()

    def rename(self, from_dir: FileHandle, from_name: str,
               to_dir: FileHandle, to_name: str) -> None:
        enc = XDREncoder()
        pack_fhandle(enc, from_dir)
        enc.pack_string(from_name)
        pack_fhandle(enc, to_dir)
        enc.pack_string(to_name)
        dec = self._rpc.call(Proc.RENAME, enc.getvalue())
        raise_for_status(dec.unpack_enum())
        dec.done()

    def link(self, target: FileHandle, dir_fh: FileHandle, name: str) -> None:
        enc = XDREncoder()
        pack_fhandle(enc, target)
        pack_fhandle(enc, dir_fh)
        enc.pack_string(name)
        dec = self._rpc.call(Proc.LINK, enc.getvalue())
        raise_for_status(dec.unpack_enum())
        dec.done()

    def symlink(self, dir_fh: FileHandle, name: str, target: str) -> None:
        enc = XDREncoder()
        pack_fhandle(enc, dir_fh)
        enc.pack_string(name)
        enc.pack_string(target)
        pack_sattr(enc, SAttr())
        dec = self._rpc.call(Proc.SYMLINK, enc.getvalue())
        raise_for_status(dec.unpack_enum())
        dec.done()

    def readdir(self, dir_fh: FileHandle, cookie: int = 0,
                count: int = MAX_DATA) -> tuple[list[tuple[int, str, int]], bool]:
        """One READDIR round trip: ([(fileid, name, cookie)...], eof)."""
        enc = XDREncoder()
        pack_fhandle(enc, dir_fh)
        enc.pack_uint(cookie)
        enc.pack_uint(count)
        dec = self._rpc.call(Proc.READDIR, enc.getvalue())
        raise_for_status(dec.unpack_enum())
        entries: list[tuple[int, str, int]] = []
        while dec.unpack_bool():
            fileid = dec.unpack_uint()
            name = dec.unpack_string()
            next_cookie = dec.unpack_uint()
            entries.append((fileid, name, next_cookie))
        eof = dec.unpack_bool()
        dec.done()
        return entries, eof

    def readdir_all(self, dir_fh: FileHandle) -> list[tuple[int, str]]:
        """Iterate READDIR to completion."""
        out: list[tuple[int, str]] = []
        cookie = 0
        while True:
            entries, eof = self.readdir(dir_fh, cookie)
            out.extend((fileid, name) for fileid, name, _c in entries)
            if eof or not entries:
                return out
            cookie = entries[-1][2]

    def statfs(self) -> dict[str, int]:
        enc = XDREncoder()
        pack_fhandle(enc, self.root)
        dec = self._rpc.call(Proc.STATFS, enc.getvalue())
        raise_for_status(dec.unpack_enum())
        result = {
            "tsize": dec.unpack_uint(),
            "bsize": dec.unpack_uint(),
            "blocks": dec.unpack_uint(),
            "bfree": dec.unpack_uint(),
            "bavail": dec.unpack_uint(),
        }
        dec.done()
        return result

    # -- DisCFS extensions -------------------------------------------------

    def submit_credential(self, text: str) -> str:
        enc = XDREncoder()
        enc.pack_string(text)
        dec = self._rpc.call(Proc.SUBMITCRED, enc.getvalue())
        raise_for_status(dec.unpack_enum())
        message = dec.unpack_string()
        dec.done()
        return message

    def revoke(self, payload: str) -> str:
        enc = XDREncoder()
        enc.pack_string(payload)
        dec = self._rpc.call(Proc.REVOKE, enc.getvalue())
        raise_for_status(dec.unpack_enum())
        message = dec.unpack_string()
        dec.done()
        return message

    def list_credentials(self) -> list[str]:
        dec = self._rpc.call(Proc.LISTCREDS)
        raise_for_status(dec.unpack_enum())
        creds = dec.unpack_array(lambda d: d.unpack_string())
        dec.done()
        return creds

    def audit_log(self, limit: int = 100) -> list[str]:
        """Fetch formatted audit records (DisCFS extension; admin only)."""
        enc = XDREncoder()
        enc.pack_uint(limit)
        dec = self._rpc.call(Proc.AUDITLOG, enc.getvalue())
        raise_for_status(dec.unpack_enum())
        lines = dec.unpack_array(lambda d: d.unpack_string())
        dec.done()
        return lines

    # -- path / file conveniences -----------------------------------------

    def walk(self, path: str, base: FileHandle | None = None) -> tuple[FileHandle, FAttr]:
        """Resolve a ``/``-separated path from ``base`` (default: root)."""
        fh = base if base is not None else self.root
        attr = self.getattr(fh)
        for part in (p for p in path.split("/") if p):
            fh, attr = self.lookup(fh, part)
        return fh, attr

    def open(self, fh: FileHandle, buffer_size: int = MAX_DATA) -> "RemoteFile":
        return RemoteFile(self, fh, buffer_size)

    def close(self) -> None:
        self._rpc.close()


class RemoteFile:
    """Buffered sequential I/O over one remote file (stdio analogue).

    Maintains independent read/write positions like a C ``FILE`` opened
    for update; Bonnie's putc/getc/rewrite loops run through this class.
    """

    def __init__(self, client: NFSClient, fh: FileHandle, buffer_size: int = MAX_DATA):
        if buffer_size <= 0 or buffer_size > MAX_DATA:
            buffer_size = MAX_DATA
        self._client = client
        self._fh = fh
        self._buffer_size = buffer_size
        self._wbuf = bytearray()
        self._wbuf_offset = 0
        self._pos = 0
        self._rbuf = b""
        self._rbuf_offset = 0

    # -- writing ----------------------------------------------------------

    def write(self, data: bytes) -> int:
        if not self._wbuf:
            self._wbuf_offset = self._pos
        elif self._wbuf_offset + len(self._wbuf) != self._pos:
            self.flush()
            self._wbuf_offset = self._pos
        self._wbuf += data
        self._pos += len(data)
        while len(self._wbuf) >= self._buffer_size:
            chunk = bytes(self._wbuf[: self._buffer_size])
            self._client.write(self._fh, self._wbuf_offset, chunk)
            del self._wbuf[: self._buffer_size]
            self._wbuf_offset += len(chunk)
        return len(data)

    def putc(self, byte: int) -> None:
        self.write(bytes((byte,)))

    def flush(self) -> None:
        if self._wbuf:
            self._client.write(self._fh, self._wbuf_offset, bytes(self._wbuf))
            self._wbuf.clear()

    # -- reading ----------------------------------------------------------

    def read(self, count: int) -> bytes:
        self.flush()
        out = bytearray()
        while count > 0:
            buffered = self._buffered_read(count)
            if not buffered:
                break
            out += buffered
            count -= len(buffered)
        return bytes(out)

    def getc(self) -> int | None:
        data = self.read(1)
        return data[0] if data else None

    def _buffered_read(self, count: int) -> bytes:
        start = self._pos - self._rbuf_offset
        if 0 <= start < len(self._rbuf):
            chunk = self._rbuf[start : start + count]
        else:
            self._rbuf = self._client.read(self._fh, self._pos, self._buffer_size)
            self._rbuf_offset = self._pos
            if not self._rbuf:
                return b""
            chunk = self._rbuf[:count]
        self._pos += len(chunk)
        return chunk

    # -- positioning --------------------------------------------------------

    def seek(self, offset: int) -> None:
        self.flush()
        self._pos = offset

    def tell(self) -> int:
        return self._pos

    def __enter__(self) -> "RemoteFile":
        return self

    def __exit__(self, *exc) -> None:
        self.flush()
