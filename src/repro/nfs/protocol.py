"""NFSv2 wire protocol definitions (RFC 1094 subset, with extensions).

Extensions over stock NFSv2, mirroring the paper's modified server:

* ``NFSPROC_CREATE``/``NFSPROC_MKDIR`` replies may carry an extra
  credential string (the paper adds procedures that "upon successful
  creation of a file/directory return a credential with full access to
  the creator"),
* a ``NFSPROC_SUBMITCRED`` procedure accepts KeyNote credentials over RPC
  (the paper's credential-submission utility),
* ``NFSPROC_REVOKE`` lets the administrator notify the server of bad keys
  or credentials (the paper's revocation mechanism).

Plain CFS/CFS-NE servers simply do not register the extension procedures.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import (
    FSError,
    NFSError,
    XDRError,
)
from repro.fs.inode import FileType, Inode
from repro.fs.vfs import FileId
from repro.rpc.xdr import XDRDecoder, XDREncoder

NFS_PROGRAM = 100003
NFS_VERSION = 2
MOUNT_PROGRAM = 100005
MOUNT_VERSION = 1

FHSIZE = 32
MAX_DATA = 8192  # NFSv2 maximum transfer size
MAX_NAME = 255
MAX_PATH = 1024


class Proc(enum.IntEnum):
    """NFS procedure numbers (RFC 1094) plus DisCFS extensions."""

    NULL = 0
    GETATTR = 1
    SETATTR = 2
    ROOT = 3  # obsolete
    LOOKUP = 4
    READLINK = 5
    READ = 6
    WRITECACHE = 7  # unused
    WRITE = 8
    CREATE = 9
    REMOVE = 10
    RENAME = 11
    LINK = 12
    SYMLINK = 13
    MKDIR = 14
    RMDIR = 15
    READDIR = 16
    STATFS = 17
    # --- DisCFS extensions (outside the RFC 1094 numbering) ---
    SUBMITCRED = 100
    REVOKE = 101
    LISTCREDS = 102
    AUDITLOG = 103


class NFSStat(enum.IntEnum):
    """nfsstat codes."""

    NFS_OK = 0
    NFSERR_PERM = 1
    NFSERR_NOENT = 2
    NFSERR_IO = 5
    NFSERR_NXIO = 6
    NFSERR_ACCES = 13
    NFSERR_EXIST = 17
    NFSERR_NODEV = 19
    NFSERR_NOTDIR = 20
    NFSERR_ISDIR = 21
    NFSERR_INVAL = 22
    NFSERR_FBIG = 27
    NFSERR_NOSPC = 28
    NFSERR_ROFS = 30
    NFSERR_NAMETOOLONG = 63
    NFSERR_NOTEMPTY = 66
    NFSERR_DQUOT = 69
    NFSERR_STALE = 70


_ERRNO_TO_STAT = {
    "ENOENT": NFSStat.NFSERR_NOENT,
    "EIO": NFSStat.NFSERR_IO,
    "EACCES": NFSStat.NFSERR_ACCES,
    "EEXIST": NFSStat.NFSERR_EXIST,
    "ENOTDIR": NFSStat.NFSERR_NOTDIR,
    "EISDIR": NFSStat.NFSERR_ISDIR,
    "EINVAL": NFSStat.NFSERR_INVAL,
    "ENOSPC": NFSStat.NFSERR_NOSPC,
    "EROFS": NFSStat.NFSERR_ROFS,
    "ENAMETOOLONG": NFSStat.NFSERR_NAMETOOLONG,
    "ENOTEMPTY": NFSStat.NFSERR_NOTEMPTY,
    "ESTALE": NFSStat.NFSERR_STALE,
}


def stat_for_error(exc: FSError) -> NFSStat:
    """Map a filesystem exception onto the closest nfsstat code."""
    return _ERRNO_TO_STAT.get(exc.errno_name, NFSStat.NFSERR_IO)


class FType(enum.IntEnum):
    """NFSv2 ftype."""

    NFNON = 0
    NFREG = 1
    NFDIR = 2
    NFBLK = 3
    NFCHR = 4
    NFLNK = 5


_FILETYPE_TO_FTYPE = {
    FileType.REGULAR: FType.NFREG,
    FileType.DIRECTORY: FType.NFDIR,
    FileType.SYMLINK: FType.NFLNK,
}

_TYPE_MODE_BITS = {
    FType.NFREG: 0o100000,
    FType.NFDIR: 0o040000,
    FType.NFLNK: 0o120000,
}


# ---------------------------------------------------------------------------
# File handles
# ---------------------------------------------------------------------------

_FH_STRUCT = struct.Struct(">QQ16s")


@dataclass(frozen=True)
class FileHandle:
    """An opaque 32-byte NFS file handle: (ino, generation, zero padding)."""

    ino: int
    generation: int

    def encode(self) -> bytes:
        return _FH_STRUCT.pack(self.ino, self.generation, b"")

    @classmethod
    def decode(cls, raw: bytes) -> "FileHandle":
        if len(raw) != FHSIZE:
            raise XDRError(f"file handle must be {FHSIZE} bytes, got {len(raw)}")
        ino, generation, _pad = _FH_STRUCT.unpack(raw)
        return cls(ino=ino, generation=generation)

    @classmethod
    def of(cls, inode: Inode) -> "FileHandle":
        return cls(ino=inode.ino, generation=inode.generation)

    def file_id(self) -> FileId:
        return FileId(ino=self.ino, generation=self.generation)


def pack_fhandle(enc: XDREncoder, fh: FileHandle) -> None:
    enc.pack_fixed_opaque(fh.encode(), FHSIZE)


def unpack_fhandle(dec: XDRDecoder) -> FileHandle:
    return FileHandle.decode(dec.unpack_fixed_opaque(FHSIZE))


# ---------------------------------------------------------------------------
# fattr / sattr
# ---------------------------------------------------------------------------


def pack_fattr(enc: XDREncoder, inode: Inode, block_size: int) -> None:
    ftype = _FILETYPE_TO_FTYPE[inode.ftype]
    mode = (inode.mode & 0o7777) | _TYPE_MODE_BITS[ftype]
    enc.pack_enum(ftype)
    enc.pack_uint(mode)
    enc.pack_uint(inode.nlink)
    enc.pack_uint(inode.uid)
    enc.pack_uint(inode.gid)
    enc.pack_uint(min(inode.size, 0xFFFFFFFF))
    enc.pack_uint(block_size)
    enc.pack_uint(0)  # rdev
    enc.pack_uint((inode.size + block_size - 1) // block_size)
    enc.pack_uint(0)  # fsid
    enc.pack_uint(inode.ino)
    for t in (inode.atime, inode.mtime, inode.ctime):
        enc.pack_uint(int(t) & 0xFFFFFFFF)
        enc.pack_uint(int((t % 1) * 1_000_000))


@dataclass
class FAttr:
    """Decoded fattr (client side)."""

    ftype: FType
    mode: int
    nlink: int
    uid: int
    gid: int
    size: int
    blocksize: int
    blocks: int
    fileid: int
    atime: float
    mtime: float
    ctime: float

    @property
    def is_dir(self) -> bool:
        return self.ftype == FType.NFDIR

    @property
    def permission_bits(self) -> int:
        return self.mode & 0o7777


def unpack_fattr(dec: XDRDecoder) -> FAttr:
    ftype = FType(dec.unpack_enum())
    mode = dec.unpack_uint()
    nlink = dec.unpack_uint()
    uid = dec.unpack_uint()
    gid = dec.unpack_uint()
    size = dec.unpack_uint()
    blocksize = dec.unpack_uint()
    dec.unpack_uint()  # rdev
    blocks = dec.unpack_uint()
    dec.unpack_uint()  # fsid
    fileid = dec.unpack_uint()
    times = []
    for _ in range(3):
        sec = dec.unpack_uint()
        usec = dec.unpack_uint()
        times.append(sec + usec / 1_000_000)
    return FAttr(ftype=ftype, mode=mode, nlink=nlink, uid=uid, gid=gid,
                 size=size, blocksize=blocksize, blocks=blocks, fileid=fileid,
                 atime=times[0], mtime=times[1], ctime=times[2])


#: sattr field value meaning "do not change" (RFC 1094 uses all-ones).
SATTR_NO_CHANGE = 0xFFFFFFFF


@dataclass
class SAttr:
    """Settable attributes; None fields are left unchanged."""

    mode: int | None = None
    uid: int | None = None
    gid: int | None = None
    size: int | None = None
    atime: float | None = None
    mtime: float | None = None


def pack_sattr(enc: XDREncoder, sattr: SAttr) -> None:
    for value in (sattr.mode, sattr.uid, sattr.gid, sattr.size):
        enc.pack_uint(SATTR_NO_CHANGE if value is None else value)
    for t in (sattr.atime, sattr.mtime):
        if t is None:
            enc.pack_uint(SATTR_NO_CHANGE)
            enc.pack_uint(SATTR_NO_CHANGE)
        else:
            enc.pack_uint(int(t) & 0xFFFFFFFF)
            enc.pack_uint(int((t % 1) * 1_000_000))


def unpack_sattr(dec: XDRDecoder) -> SAttr:
    raw = [dec.unpack_uint() for _ in range(4)]
    mode, uid, gid, size = (None if v == SATTR_NO_CHANGE else v for v in raw)
    times: list[float | None] = []
    for _ in range(2):
        sec = dec.unpack_uint()
        usec = dec.unpack_uint()
        times.append(None if sec == SATTR_NO_CHANGE else sec + usec / 1_000_000)
    return SAttr(mode=mode, uid=uid, gid=gid, size=size, atime=times[0], mtime=times[1])


def raise_for_status(status: int) -> None:
    """Client-side helper: raise NFSError unless NFS_OK."""
    if status != NFSStat.NFS_OK:
        try:
            name = NFSStat(status).name
        except ValueError:
            name = f"status {status}"
        raise NFSError(status, f"server returned {name}")
