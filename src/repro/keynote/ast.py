"""Core KeyNote data model: principals, compliance values, assertions."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING

from repro.crypto.keycodec import decode_key, encode_public_key, is_key_identifier
from repro.errors import InvalidKey, KeyNoteError

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance for type hints
    from repro.keynote.expr import ConditionsProgram
    from repro.keynote.licensees import LicenseeExpr

#: The distinguished principal naming local (unsigned) policy roots.
POLICY_PRINCIPAL = "POLICY"


@lru_cache(maxsize=8192)
def normalize_principal(principal: str) -> str:
    """Return the canonical form of a principal identifier.

    RFC 2704 requires that two encodings of the same key (e.g. ``dsa-hex:``
    vs ``dsa-base64:``) compare as the same principal.  We canonicalize by
    decoding key identifiers and re-encoding them as hex.  Opaque names
    (non-key strings) are compared verbatim, except the reserved
    ``POLICY`` name which is case-sensitive per the RFC.

    Memoized: principals recur on every request (identity checks, queries),
    and decoding a 1024-bit key identifier is ~25 microseconds.
    """
    principal = principal.strip()
    if principal == POLICY_PRINCIPAL:
        return principal
    if is_key_identifier(principal):
        try:
            key = decode_key(principal)
        except InvalidKey:
            # Syntactically key-like but undecodable: treat as opaque text.
            return principal
        # Private-key identifiers normalize to their public part.
        public = getattr(key, "public", key)
        return encode_public_key(public, encoding="hex")
    return principal


class ComplianceValues:
    """An ordered set of compliance values for a query.

    Per RFC 2704 the application supplies, with each query, a totally
    ordered set of values from minimum to maximum trust, e.g.
    ``["false", "true"]`` or DisCFS's octal-ordered
    ``["false", "X", "W", "WX", "R", "RX", "RW", "RWX"]``.
    """

    def __init__(self, values: list[str] | tuple[str, ...]):
        values = list(values)
        if len(values) < 2:
            raise KeyNoteError("compliance value set needs at least 2 values")
        if len(set(values)) != len(values):
            raise KeyNoteError("compliance values must be distinct")
        self._values = values
        self._rank = {v: i for i, v in enumerate(values)}

    @property
    def values(self) -> list[str]:
        return list(self._values)

    @property
    def minimum(self) -> str:
        return self._values[0]

    @property
    def maximum(self) -> str:
        return self._values[-1]

    def rank(self, value: str) -> int:
        try:
            return self._rank[value]
        except KeyError:
            raise KeyNoteError(f"unknown compliance value: {value!r}") from None

    def __contains__(self, value: str) -> bool:
        return value in self._rank

    def min_of(self, a: str, b: str) -> str:
        return a if self.rank(a) <= self.rank(b) else b

    def max_of(self, a: str, b: str) -> str:
        return a if self.rank(a) >= self.rank(b) else b

    def kth_largest(self, values: list[str], k: int) -> str:
        """The k-th largest of ``values`` (k>=1); used by threshold licensees."""
        if k < 1 or k > len(values):
            return self.minimum
        ordered = sorted(values, key=self.rank, reverse=True)
        return ordered[k - 1]

    def __repr__(self) -> str:
        return f"ComplianceValues({self._values!r})"


@dataclass
class Assertion:
    """A parsed KeyNote assertion (policy or credential).

    Attributes mirror the RFC 2704 fields.  ``signed_text`` preserves the
    exact bytes the signature covers (everything up to and including the
    ``Signature:`` label), so verification is byte-faithful even after
    parsing.
    """

    authorizer: str
    licensees: "LicenseeExpr | None" = None
    conditions: "ConditionsProgram | None" = None
    comment: str = ""
    local_constants: dict[str, str] = field(default_factory=dict)
    version: str = "2"
    signature: str | None = None
    source_text: str = ""
    signed_text: str = ""

    def __post_init__(self) -> None:
        self.authorizer = normalize_principal(self.authorizer)

    @property
    def is_policy(self) -> bool:
        """True for local policy assertions (authorized by ``POLICY``)."""
        return self.authorizer == POLICY_PRINCIPAL

    @property
    def is_signed(self) -> bool:
        return self.signature is not None

    def licensee_principals(self) -> set[str]:
        """All principals mentioned in the Licensees field (normalized)."""
        if self.licensees is None:
            return set()
        return self.licensees.principals()

    def __repr__(self) -> str:
        who = "POLICY" if self.is_policy else self.authorizer[:24] + "..."
        return f"Assertion(authorizer={who!r}, signed={self.is_signed})"
