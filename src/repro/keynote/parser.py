"""Parsing of KeyNote assertion texts (RFC 2704 section 4).

An assertion is a sequence of ``Field: value`` lines; a line beginning with
whitespace continues the previous field.  Recognized fields::

    KeyNote-Version:   must be first if present
    Local-Constants:   NAME = "value" bindings usable in other fields
    Authorizer:        the delegating principal (or POLICY) — required
    Licensees:         licensee expression
    Conditions:        conditions program
    Comment:           free text
    Signature:         must be last if present

Multiple assertions in one text are separated by blank lines.
"""

from __future__ import annotations

import re

from repro.errors import AssertionSyntaxError
from repro.keynote.ast import POLICY_PRINCIPAL, Assertion, normalize_principal
from repro.keynote.expr import parse_conditions
from repro.keynote.lexer import TokenStream, tokenize
from repro.keynote.licensees import parse_licensees

_FIELD_NAMES = {
    "keynote-version": "KeyNote-Version",
    "local-constants": "Local-Constants",
    "authorizer": "Authorizer",
    "licensees": "Licensees",
    "conditions": "Conditions",
    "comment": "Comment",
    "signature": "Signature",
}

_FIELD_RE = re.compile(r"^([A-Za-z][A-Za-z0-9-]*)\s*:(.*)$")


def parse_assertion(text: str) -> Assertion:
    """Parse a single assertion; raises AssertionSyntaxError on problems."""
    fields, order, signature_label_end = _split_fields(text)

    if "KeyNote-Version" in fields and order[0] != "KeyNote-Version":
        raise AssertionSyntaxError("KeyNote-Version must be the first field")
    if "Signature" in fields and order[-1] != "Signature":
        raise AssertionSyntaxError("Signature must be the last field")
    if "Authorizer" not in fields:
        raise AssertionSyntaxError("assertion is missing the Authorizer field")

    constants = _parse_local_constants(fields.get("Local-Constants", ""))
    authorizer = _parse_authorizer(fields["Authorizer"], constants)

    licensees = None
    if fields.get("Licensees", "").strip():
        licensees = parse_licensees(fields["Licensees"], constants)

    conditions = None
    if fields.get("Conditions", "").strip():
        conditions = parse_conditions(fields["Conditions"])

    signature = None
    signed_text = ""
    if "Signature" in fields:
        signature = _parse_signature_value(fields["Signature"])
        signed_text = text[:signature_label_end]

    version = fields.get("KeyNote-Version", "2").strip().strip('"') or "2"

    return Assertion(
        authorizer=authorizer,
        licensees=licensees,
        conditions=conditions,
        comment=fields.get("Comment", "").strip(),
        local_constants=constants,
        version=version,
        signature=signature,
        source_text=text,
        signed_text=signed_text,
    )


def parse_assertions(text: str) -> list[Assertion]:
    """Parse a text containing zero or more blank-line-separated assertions."""
    chunks: list[list[str]] = []
    current: list[str] = []
    for line in text.splitlines():
        if line.strip():
            current.append(line)
        elif current:
            chunks.append(current)
            current = []
    if current:
        chunks.append(current)
    return [parse_assertion("\n".join(chunk) + "\n") for chunk in chunks]


def _split_fields(text: str) -> tuple[dict[str, str], list[str], int]:
    """Split assertion text into fields.

    Returns (fields, field order, offset just past the ``Signature:`` label)
    — the offset defines the byte range the signature covers.
    """
    fields: dict[str, str] = {}
    order: list[str] = []
    current_field: str | None = None
    signature_label_end = 0

    offset = 0
    for raw_line in text.splitlines(keepends=True):
        line = raw_line.rstrip("\n").rstrip("\r")
        line_start = offset
        offset += len(raw_line)
        if not line.strip():
            if current_field is not None:
                raise AssertionSyntaxError("blank line inside assertion")
            continue
        if line[0] in " \t":
            if current_field is None:
                raise AssertionSyntaxError("continuation line before any field")
            fields[current_field] += " " + line.strip()
            continue
        match = _FIELD_RE.match(line)
        if match is None:
            raise AssertionSyntaxError(f"malformed field line: {line[:60]!r}")
        raw_name, value = match.group(1), match.group(2)
        name = _FIELD_NAMES.get(raw_name.lower())
        if name is None:
            raise AssertionSyntaxError(f"unknown field: {raw_name!r}")
        if name in fields:
            raise AssertionSyntaxError(f"duplicate field: {name}")
        fields[name] = value.strip()
        order.append(name)
        current_field = name
        if name == "Signature":
            # Offset of the character just past the ':' of the label.
            colon = line.index(":")
            signature_label_end = line_start + colon + 1

    if not order:
        raise AssertionSyntaxError("empty assertion")
    return fields, order, signature_label_end


def _parse_local_constants(text: str) -> dict[str, str]:
    """Parse ``NAME = "value"`` bindings."""
    constants: dict[str, str] = {}
    if not text.strip():
        return constants
    stream = TokenStream(tokenize(text))
    while not stream.at_end():
        name_tok = stream.current
        if name_tok.kind != "IDENT":
            raise AssertionSyntaxError(
                f"expected constant name, found {name_tok.value!r}",
                column=name_tok.position,
            )
        stream.advance()
        eq = stream.current
        if not (eq.kind == "OP" and eq.value == "="):
            raise AssertionSyntaxError(
                f"expected '=' after constant name {name_tok.value!r}",
                column=eq.position,
            )
        stream.advance()
        val_tok = stream.current
        if val_tok.kind != "STRING":
            raise AssertionSyntaxError(
                f"constant {name_tok.value!r} must be assigned a quoted string",
                column=val_tok.position,
            )
        stream.advance()
        if name_tok.value in constants:
            raise AssertionSyntaxError(f"duplicate constant: {name_tok.value!r}")
        constants[name_tok.value] = val_tok.value
    return constants


def _parse_authorizer(text: str, constants: dict[str, str]) -> str:
    stream = TokenStream(tokenize(text))
    tok = stream.current
    if tok.kind == "STRING":
        stream.advance()
        value = tok.value
    elif tok.kind == "IDENT":
        stream.advance()
        if tok.value == POLICY_PRINCIPAL:
            value = POLICY_PRINCIPAL
        elif tok.value in constants:
            value = constants[tok.value]
        else:
            raise AssertionSyntaxError(
                f"unknown authorizer name {tok.value!r} (not in Local-Constants)"
            )
    else:
        raise AssertionSyntaxError("Authorizer must be a principal or POLICY")
    if not stream.at_end():
        raise AssertionSyntaxError("trailing garbage after Authorizer principal")
    if value in constants:
        value = constants[value]
    return normalize_principal(value)


def _parse_signature_value(text: str) -> str:
    text = text.strip()
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        text = text[1:-1]
    if not text.lower().startswith("sig-"):
        raise AssertionSyntaxError("Signature value must start with 'sig-'")
    return text
