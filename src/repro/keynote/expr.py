"""The KeyNote Conditions expression language (RFC 2704 section 5).

A Conditions field is a *program*: a sequence of clauses

    test ;
    test -> "value" ;
    test -> { nested-program } ;

The program's value is the **maximum** compliance value yielded by any
satisfied clause (the minimum value if none is satisfied).  A clause with no
``->`` yields the query's maximum value when its test holds.

Tests combine comparisons with ``&&``, ``||`` and ``!``.  Operands are
*value expressions* over three types:

* strings — literals, attribute names, ``$expr`` indirect dereference and
  ``.`` concatenation,
* integers — literals, arithmetic (``+ - * / % ^``, unary ``-``) and
  ``@expr`` string-to-integer conversion,
* floats — literals, the same arithmetic, and ``&expr`` conversion.

Comparisons are typed: ``==  !=  <  >  <=  >=`` apply to two strings or two
numbers; ``~=`` matches a string against a regular expression.  Undefined
attributes evaluate to the empty string (RFC 2704 section 7.3).

Error semantics: a type error, bad conversion, division by zero or bad
regex makes the enclosing *clause* unsatisfied rather than aborting the
query — mirroring the forgiving behaviour of the reference implementation,
where a malformed assertion simply fails to contribute authority.  The
evaluator can be run in strict mode (used by tests) where such errors
raise :class:`~repro.errors.ExpressionError`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import AssertionSyntaxError, ExpressionError
from repro.keynote.ast import ComplianceValues
from repro.keynote.lexer import TokenStream, tokenize

# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

Value = str | int | float


@dataclass(frozen=True)
class StrLit:
    value: str


@dataclass(frozen=True)
class IntLit:
    value: int


@dataclass(frozen=True)
class FloatLit:
    value: float


@dataclass(frozen=True)
class Attr:
    """A bare attribute name, e.g. ``HANDLE``."""

    name: str


@dataclass(frozen=True)
class Deref:
    """``$expr`` — the attribute whose name is the value of ``expr``."""

    inner: "ValueNode"


@dataclass(frozen=True)
class ToInt:
    """``@expr`` — string-to-integer conversion."""

    inner: "ValueNode"


@dataclass(frozen=True)
class ToFloat:
    """``&expr`` — string-to-float conversion."""

    inner: "ValueNode"


@dataclass(frozen=True)
class Neg:
    inner: "ValueNode"


@dataclass(frozen=True)
class BinOp:
    op: str  # + - * / % ^ .
    left: "ValueNode"
    right: "ValueNode"


ValueNode = StrLit | IntLit | FloatLit | Attr | Deref | ToInt | ToFloat | Neg | BinOp


@dataclass(frozen=True)
class BoolLit:
    value: bool


@dataclass(frozen=True)
class Compare:
    op: str  # == != < > <= >= ~=
    left: ValueNode
    right: ValueNode


@dataclass(frozen=True)
class Not:
    inner: "TestNode"


@dataclass(frozen=True)
class And:
    left: "TestNode"
    right: "TestNode"


@dataclass(frozen=True)
class Or:
    left: "TestNode"
    right: "TestNode"


TestNode = BoolLit | Compare | Not | And | Or


@dataclass(frozen=True)
class Clause:
    test: TestNode
    #: None = bare test (yields max value); str = explicit value;
    #: ConditionsProgram = nested program.
    target: "str | ConditionsProgram | None"


@dataclass(frozen=True)
class ConditionsProgram:
    clauses: tuple[Clause, ...]

    def evaluate(
        self,
        attributes: Mapping[str, str],
        values: ComplianceValues,
        strict: bool = False,
    ) -> str:
        """Evaluate the program to a compliance value."""
        env = _Env(attributes, values, strict)
        return _eval_program(self, env)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def parse_conditions(text: str) -> ConditionsProgram:
    """Parse a Conditions field body into a program.

    An empty body is the always-true program (RFC 2704: an empty Conditions
    field means no conditions, i.e. maximum trust for any action).
    """
    stream = TokenStream(tokenize(text))
    program = _parse_program(stream, top_level=True)
    if not stream.at_end():
        tok = stream.current
        raise AssertionSyntaxError(
            f"trailing garbage in conditions: {tok.value!r}", column=tok.position
        )
    return program


def _parse_program(stream: TokenStream, top_level: bool = False) -> ConditionsProgram:
    clauses: list[Clause] = []
    while not stream.at_end():
        if stream.current.kind == "OP" and stream.current.value == "}":
            break
        clauses.append(_parse_clause(stream))
        if not stream.match_op(";"):
            break
    if not clauses and not top_level:
        raise AssertionSyntaxError("empty clause block")
    return ConditionsProgram(tuple(clauses))


def _parse_clause(stream: TokenStream) -> Clause:
    test = _parse_test(stream)
    if stream.match_op("->"):
        if stream.match_op("{"):
            inner = _parse_program(stream)
            stream.expect_op("}")
            return Clause(test=test, target=inner)
        tok = stream.current
        if tok.kind != "STRING":
            raise AssertionSyntaxError(
                "expected compliance value string or '{' after '->'", column=tok.position
            )
        stream.advance()
        return Clause(test=test, target=tok.value)
    return Clause(test=test, target=None)


def _parse_test(stream: TokenStream) -> TestNode:
    return _parse_or(stream)


def _parse_or(stream: TokenStream) -> TestNode:
    node = _parse_and(stream)
    while stream.match_op("||"):
        node = Or(node, _parse_and(stream))
    return node


def _parse_and(stream: TokenStream) -> TestNode:
    node = _parse_not(stream)
    while stream.match_op("&&"):
        node = And(node, _parse_not(stream))
    return node


def _parse_not(stream: TokenStream) -> TestNode:
    if stream.match_op("!"):
        return Not(_parse_not(stream))
    return _parse_primary_test(stream)


def _parse_primary_test(stream: TokenStream) -> TestNode:
    tok = stream.current
    if tok.kind == "IDENT" and tok.value in ("true", "false"):
        # Could still be a comparison like `true == x`? `true`/`false` are
        # reserved words in tests; RFC treats them as boolean literals only.
        stream.advance()
        return BoolLit(tok.value == "true")
    if tok.kind == "OP" and tok.value == "(":
        # Ambiguous: "(test)" vs "(value-expr) RELOP value-expr".
        # Try the comparison reading first; backtrack to the test reading.
        saved = stream._pos
        try:
            return _parse_comparison(stream)
        except AssertionSyntaxError:
            stream._pos = saved
        stream.expect_op("(")
        inner = _parse_or(stream)
        stream.expect_op(")")
        return inner
    return _parse_comparison(stream)


_RELOPS = ("==", "!=", "<=", ">=", "<", ">", "~=")


def _parse_comparison(stream: TokenStream) -> TestNode:
    left = _parse_value_expr(stream)
    tok = stream.current
    if tok.kind == "OP" and tok.value in _RELOPS:
        stream.advance()
        right = _parse_value_expr(stream)
        return Compare(tok.value, left, right)
    raise AssertionSyntaxError(
        f"expected comparison operator, found {tok.value or tok.kind!r}",
        column=tok.position,
    )


def _parse_value_expr(stream: TokenStream) -> ValueNode:
    return _parse_additive(stream)


def _parse_additive(stream: TokenStream) -> ValueNode:
    node = _parse_multiplicative(stream)
    while True:
        tok = stream.match_op("+", "-", ".")
        if tok is None:
            return node
        node = BinOp(tok.value, node, _parse_multiplicative(stream))


def _parse_multiplicative(stream: TokenStream) -> ValueNode:
    node = _parse_power(stream)
    while True:
        tok = stream.match_op("*", "/", "%")
        if tok is None:
            return node
        node = BinOp(tok.value, node, _parse_power(stream))


def _parse_power(stream: TokenStream) -> ValueNode:
    node = _parse_unary(stream)
    if stream.match_op("^"):
        # Right-associative.
        return BinOp("^", node, _parse_power(stream))
    return node


def _parse_unary(stream: TokenStream) -> ValueNode:
    tok = stream.current
    if tok.kind == "OP" and tok.value in ("-", "@", "&", "$"):
        stream.advance()
        inner = _parse_unary(stream)
        return {"-": Neg, "@": ToInt, "&": ToFloat, "$": Deref}[tok.value](inner)
    return _parse_atom(stream)


def _parse_atom(stream: TokenStream) -> ValueNode:
    tok = stream.current
    if tok.kind == "STRING":
        stream.advance()
        return StrLit(tok.value)
    if tok.kind == "INT":
        stream.advance()
        return IntLit(int(tok.value))
    if tok.kind == "FLOAT":
        stream.advance()
        return FloatLit(float(tok.value))
    if tok.kind == "IDENT":
        if tok.value in ("true", "false"):
            raise AssertionSyntaxError(
                f"{tok.value!r} cannot appear in a value expression", column=tok.position
            )
        stream.advance()
        return Attr(tok.value)
    if tok.kind == "OP" and tok.value == "(":
        stream.advance()
        node = _parse_value_expr(stream)
        stream.expect_op(")")
        return node
    raise AssertionSyntaxError(
        f"expected value expression, found {tok.value or tok.kind!r}", column=tok.position
    )


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


class _Env:
    __slots__ = ("attributes", "values", "strict")

    def __init__(self, attributes: Mapping[str, str], values: ComplianceValues, strict: bool):
        self.attributes = attributes
        self.values = values
        self.strict = strict


def _eval_program(program: ConditionsProgram, env: _Env) -> str:
    result = env.values.minimum
    for clause in program.clauses:
        try:
            satisfied = _eval_test(clause.test, env)
        except ExpressionError:
            if env.strict:
                raise
            continue  # errored clause contributes nothing
        if not satisfied:
            continue
        if clause.target is None:
            contribution = env.values.maximum
        elif isinstance(clause.target, ConditionsProgram):
            contribution = _eval_program(clause.target, env)
        else:
            if clause.target not in env.values:
                if env.strict:
                    raise ExpressionError(
                        f"value {clause.target!r} not in the query's compliance set"
                    )
                continue
            contribution = clause.target
        result = env.values.max_of(result, contribution)
    return result


def _eval_test(node: TestNode, env: _Env) -> bool:
    if isinstance(node, BoolLit):
        return node.value
    if isinstance(node, Not):
        return not _eval_test(node.inner, env)
    if isinstance(node, And):
        return _eval_test(node.left, env) and _eval_test(node.right, env)
    if isinstance(node, Or):
        return _eval_test(node.left, env) or _eval_test(node.right, env)
    if isinstance(node, Compare):
        return _eval_compare(node, env)
    raise ExpressionError(f"unknown test node: {node!r}")


def _eval_compare(node: Compare, env: _Env) -> bool:
    left = _eval_value(node.left, env)
    if node.op == "~=":
        right = _eval_value(node.right, env)
        if not isinstance(left, str) or not isinstance(right, str):
            raise ExpressionError("~= requires string operands")
        try:
            pattern = re.compile(right)
        except re.error as exc:
            raise ExpressionError(f"bad regular expression: {exc}") from exc
        return pattern.search(left) is not None
    right = _eval_value(node.right, env)
    left_is_str = isinstance(left, str)
    right_is_str = isinstance(right, str)
    if left_is_str != right_is_str:
        raise ExpressionError(
            f"type mismatch in comparison: {type(left).__name__} "
            f"{node.op} {type(right).__name__}"
        )
    ops: dict[str, Callable[[Value, Value], bool]] = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        ">": lambda a, b: a > b,
        "<=": lambda a, b: a <= b,
        ">=": lambda a, b: a >= b,
    }
    return ops[node.op](left, right)


def _eval_value(node: ValueNode, env: _Env) -> Value:
    if isinstance(node, StrLit):
        return node.value
    if isinstance(node, IntLit):
        return node.value
    if isinstance(node, FloatLit):
        return node.value
    if isinstance(node, Attr):
        return env.attributes.get(node.name, "")
    if isinstance(node, Deref):
        name = _eval_value(node.inner, env)
        if not isinstance(name, str):
            raise ExpressionError("$ requires a string operand")
        return env.attributes.get(name, "")
    if isinstance(node, ToInt):
        raw = _eval_value(node.inner, env)
        if isinstance(raw, int):
            return raw
        if isinstance(raw, float):
            return int(raw)
        try:
            return int(raw.strip() or "0", 10)
        except ValueError as exc:
            raise ExpressionError(f"cannot convert {raw!r} to integer") from exc
    if isinstance(node, ToFloat):
        raw = _eval_value(node.inner, env)
        if isinstance(raw, (int, float)):
            return float(raw)
        try:
            return float(raw.strip() or "0")
        except ValueError as exc:
            raise ExpressionError(f"cannot convert {raw!r} to float") from exc
    if isinstance(node, Neg):
        inner = _eval_value(node.inner, env)
        if isinstance(inner, str):
            raise ExpressionError("unary - requires a numeric operand")
        return -inner
    if isinstance(node, BinOp):
        return _eval_binop(node, env)
    raise ExpressionError(f"unknown value node: {node!r}")


def _eval_binop(node: BinOp, env: _Env) -> Value:
    left = _eval_value(node.left, env)
    right = _eval_value(node.right, env)
    if node.op == ".":
        if not isinstance(left, str) or not isinstance(right, str):
            raise ExpressionError("'.' concatenation requires string operands")
        return left + right
    if isinstance(left, str) or isinstance(right, str):
        raise ExpressionError(f"operator {node.op!r} requires numeric operands")
    try:
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        if node.op == "*":
            return left * right
        if node.op == "/":
            if isinstance(left, int) and isinstance(right, int):
                # C-style truncation toward zero, like the reference engine.
                return int(left / right)
            return left / right
        if node.op == "%":
            if right == 0:
                raise ZeroDivisionError
            result = abs(left) % abs(right)
            return -result if left < 0 else result
        if node.op == "^":
            return left**right
    except ZeroDivisionError as exc:
        raise ExpressionError("division by zero") from exc
    except OverflowError as exc:
        raise ExpressionError("numeric overflow") from exc
    raise ExpressionError(f"unknown operator: {node.op!r}")
