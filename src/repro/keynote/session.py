"""Persistent KeyNote sessions, in the style of the keynote(3) C API.

The DisCFS daemon keeps one long-lived session: the administrator's policy
is installed at startup, users submit credentials over RPC ("successfully
submitted credential assertions are added to a persistent KeyNote
session", paper section 5), and every NFS operation triggers a query.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import KeyNoteError
from repro.keynote.ast import Assertion, ComplianceValues
from repro.keynote.compliance import ComplianceChecker
from repro.keynote.parser import parse_assertion, parse_assertions
from repro.keynote.signing import verify_assertion


class KeyNoteSession:
    """A mutable set of policies + credentials with a query interface.

    Parameters
    ----------
    verify_signatures:
        When True (default), ``add_credential`` rejects credentials whose
        signature does not verify, and queries re-check lazily.
    index_attribute:
        Optional attribute name for the compliance checker's sound pruning
        index (see :class:`~repro.keynote.compliance.ComplianceChecker`).
        DisCFS sessions index on ``HANDLE``.
    """

    def __init__(self, verify_signatures: bool = True,
                 index_attribute: str | None = None):
        self._checker = ComplianceChecker(verify_signatures=verify_signatures,
                                          index_attribute=index_attribute)
        self._policies: list[Assertion] = []
        self._credentials: list[Assertion] = []
        self._action_attributes: dict[str, str] = {}

    # -- policy & credential management --------------------------------

    def add_policy(self, text: str | Assertion) -> Assertion:
        """Install a local policy assertion (Authorizer must be POLICY)."""
        assertion = text if isinstance(text, Assertion) else parse_assertion(text)
        if not assertion.is_policy:
            raise KeyNoteError("policy assertions must be authorized by POLICY")
        self._checker.add_assertion(assertion)
        self._policies.append(assertion)
        return assertion

    def add_policies(self, text: str) -> list[Assertion]:
        """Install every assertion in a blank-line-separated policy file."""
        added = []
        for assertion in parse_assertions(text):
            added.append(self.add_policy(assertion))
        return added

    def add_credential(self, text: str | Assertion) -> Assertion:
        """Add a signed credential; raises SignatureVerificationError if bad."""
        assertion = text if isinstance(text, Assertion) else parse_assertion(text)
        if assertion.is_policy:
            raise KeyNoteError("credentials cannot be authorized by POLICY")
        if self._checker.verify_signatures:
            verify_assertion(assertion)  # fail fast at submission time
        self._checker.add_assertion(assertion)
        self._credentials.append(assertion)
        return assertion

    def add_credentials(self, text: str) -> list[Assertion]:
        added = []
        for assertion in parse_assertions(text):
            added.append(self.add_credential(assertion))
        return added

    def remove_credential(self, assertion: Assertion) -> bool:
        """Remove a credential (e.g. upon revocation); True if it was present."""
        if assertion in self._credentials:
            self._credentials.remove(assertion)
            return self._checker.remove_assertion(assertion)
        return False

    @property
    def policies(self) -> list[Assertion]:
        return list(self._policies)

    @property
    def credentials(self) -> list[Assertion]:
        return list(self._credentials)

    # -- action attributes ----------------------------------------------

    def add_action_attribute(self, name: str, value: str) -> None:
        """Set a session-scoped action attribute (merged into each query)."""
        if not name or name.startswith("_"):
            raise KeyNoteError(f"invalid action attribute name: {name!r}")
        self._action_attributes[name] = str(value)

    def clear_action_attributes(self) -> None:
        self._action_attributes.clear()

    # -- query -------------------------------------------------------------

    def query(
        self,
        action: Mapping[str, str] | None = None,
        action_authorizers: Iterable[str] = (),
        values: ComplianceValues | list[str] = ("false", "true"),
    ) -> str:
        """Run a compliance query; returns one of ``values``.

        ``action`` is merged over the session's standing attributes.
        """
        if not isinstance(values, ComplianceValues):
            values = ComplianceValues(list(values))
        merged = dict(self._action_attributes)
        if action:
            merged.update({k: str(v) for k, v in action.items()})
        return self._checker.query(merged, action_authorizers, values)

    def query_with_trace(
        self,
        action: Mapping[str, str] | None = None,
        action_authorizers: Iterable[str] = (),
        values: ComplianceValues | list[str] = ("false", "true"),
    ) -> tuple[str, list[Assertion]]:
        """Query returning the contributing assertions (for audit logs)."""
        if not isinstance(values, ComplianceValues):
            values = ComplianceValues(list(values))
        merged = dict(self._action_attributes)
        if action:
            merged.update({k: str(v) for k, v in action.items()})
        return self._checker.query_with_trace(merged, action_authorizers, values)
