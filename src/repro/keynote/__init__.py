"""A KeyNote trust-management engine (RFC 2704).

DisCFS delegates *all* authorization decisions to KeyNote: policies and
credentials are KeyNote assertions, and every file operation becomes a
compliance-checking query ("does this action, requested by these keys,
accompanied by these credentials, comply with local policy — and at what
compliance value?").

This package is a from-scratch implementation of the assertion language and
query semantics of RFC 2704:

* :mod:`repro.keynote.lexer` / :mod:`repro.keynote.parser` — assertion
  syntax (fields, continuation lines, quoted principals),
* :mod:`repro.keynote.expr` — the Conditions expression language (string,
  integer and float expressions, ``@``/``&``/``$`` dereferences, regex
  matching, nested clause programs, ``->`` compliance values),
* :mod:`repro.keynote.licensees` — licensee expressions (``&&``, ``||``
  and ``K-of(...)`` thresholds),
* :mod:`repro.keynote.compliance` — the query evaluator (depth-first over
  the delegation graph, minimum across conditions and licensees, maximum
  across alternative assertions),
* :mod:`repro.keynote.session` — persistent sessions in the style of the
  keynote(3) API: add policies, add credentials, add action attributes,
  query,
* :mod:`repro.keynote.signing` — signed assertions (credentials) and
  their verification.

Example
-------
>>> from repro.keynote import KeyNoteSession
>>> session = KeyNoteSession()
>>> session.add_policy('Authorizer: "POLICY"\\nLicensees: "alice"')
>>> session.query(
...     action={"app_domain": "test"},
...     action_authorizers=["alice"],
...     values=["false", "true"],
... )
'true'
"""

from repro.keynote.ast import Assertion, POLICY_PRINCIPAL, ComplianceValues
from repro.keynote.parser import parse_assertion, parse_assertions
from repro.keynote.session import KeyNoteSession
from repro.keynote.signing import sign_assertion, verify_assertion

__all__ = [
    "Assertion",
    "ComplianceValues",
    "POLICY_PRINCIPAL",
    "KeyNoteSession",
    "parse_assertion",
    "parse_assertions",
    "sign_assertion",
    "verify_assertion",
]
