"""The KeyNote compliance checker (RFC 2704 query semantics).

A query asks: *at what compliance value does local policy authorize this
action, requested by these principals, given these credentials?*

Semantics
---------
Each principal p has a compliance value CV(p):

* if p signed the request (p is an *action authorizer*), CV(p) is the
  maximum value — the requester vouches for its own request;
* otherwise CV(p) is the maximum, over assertions authored by p, of
  ``min(value(Conditions), value(Licensees))`` — p delegates at most what
  its conditions allow, and no more than its licensees support.

The licensee expression value replaces each principal q with CV(q), with
``&&`` = minimum, ``||`` = maximum, ``K-of`` = K-th largest.  The query
result is CV(POLICY).  Delegation graphs may be cyclic; a cycle contributes
the minimum value (a chain of trust must bottom out at a requester).

Per the paper, DisCFS runs these queries with the octal-ordered value set
``false < X < W < WX < R < RX < RW < RWX`` and treats the result as a unix
permission triple.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import SignatureVerificationError
from repro.keynote.ast import POLICY_PRINCIPAL, Assertion, ComplianceValues, normalize_principal
from repro.keynote.signing import verify_assertion

#: Reserved attribute names injected into every query (RFC 2704 section 8).
RESERVED_MIN = "_MIN_TRUST"
RESERVED_MAX = "_MAX_TRUST"
RESERVED_VALUES = "_VALUES"
RESERVED_AUTHORIZERS = "_ACTION_AUTHORIZERS"


class ComplianceChecker:
    """Evaluates queries against a set of policies and credentials.

    ``verify_signatures`` controls whether credentials are checked before
    being considered (the DisCFS server always verifies; some tests disable
    it to exercise the evaluator in isolation).  Invalid credentials are
    excluded, matching the reference implementation's behaviour of simply
    not considering them.

    ``index_attribute`` enables a sound pruning index: if every clause of
    an assertion's Conditions *requires* ``index_attribute == "literal"``
    as a conjunct, the assertion can only contribute when the query's
    attribute equals one of those literals — so it is skipped otherwise
    without evaluation.  DisCFS indexes on ``HANDLE``: a server holding
    thousands of per-file creator credentials still evaluates only the
    handful relevant to each request (semantics are unchanged; the skipped
    assertions would have evaluated to the minimum value anyway).
    """

    def __init__(self, verify_signatures: bool = True,
                 index_attribute: str | None = None):
        self.verify_signatures = verify_signatures
        self.index_attribute = index_attribute
        self._assertions_by_authorizer: dict[str, list[Assertion]] = {}
        #: assertion id -> frozenset of literals its conditions require the
        #: index attribute to equal (absent = unguarded, always evaluated).
        self._guards: dict[int, frozenset[str]] = {}
        self._verified: set[int] = set()

    # -- assertion management -------------------------------------------

    def add_assertion(self, assertion: Assertion) -> None:
        """Add a policy or credential to the checker.

        Signed credentials are verified on first use (lazily) unless
        verification is disabled.
        """
        self._assertions_by_authorizer.setdefault(assertion.authorizer, []).append(
            assertion
        )
        if self.index_attribute is not None:
            guard = _conditions_guard(assertion, self.index_attribute)
            if guard is not None:
                self._guards[id(assertion)] = guard

    def remove_assertion(self, assertion: Assertion) -> bool:
        """Remove a previously added assertion; returns True if found."""
        bucket = self._assertions_by_authorizer.get(assertion.authorizer, [])
        for i, existing in enumerate(bucket):
            if existing is assertion:
                del bucket[i]
                self._guards.pop(id(assertion), None)
                return True
        return False

    def assertions(self) -> list[Assertion]:
        return [a for bucket in self._assertions_by_authorizer.values() for a in bucket]

    # -- query ------------------------------------------------------------

    def query(
        self,
        action: Mapping[str, str],
        action_authorizers: Iterable[str],
        values: ComplianceValues | list[str],
    ) -> str:
        """Return the compliance value of the action (CV of POLICY)."""
        value, _trace = self.query_with_trace(action, action_authorizers, values)
        return value

    def query_with_trace(
        self,
        action: Mapping[str, str],
        action_authorizers: Iterable[str],
        values: ComplianceValues | list[str],
    ) -> tuple[str, list[Assertion]]:
        """Like :meth:`query`, also returning the assertions that
        contributed authority (the authorization path of the paper's audit
        story: "key A was used and key B authorized the operation")."""
        if not isinstance(values, ComplianceValues):
            values = ComplianceValues(values)
        requesters = {normalize_principal(p) for p in action_authorizers}

        attributes = dict(action)
        attributes.setdefault(RESERVED_MIN, values.minimum)
        attributes.setdefault(RESERVED_MAX, values.maximum)
        attributes.setdefault(RESERVED_VALUES, " ".join(values.values))
        attributes.setdefault(RESERVED_AUTHORIZERS, ",".join(sorted(requesters)))

        memo: dict[str, str] = {}
        visiting: set[str] = set()
        contributors: list[Assertion] = []
        index_value = (
            attributes.get(self.index_attribute)
            if self.index_attribute is not None else None
        )

        def cv(principal: str) -> str:
            if principal in requesters:
                return values.maximum
            if principal in memo:
                return memo[principal]
            if principal in visiting:
                return values.minimum  # delegation cycle
            visiting.add(principal)
            best = values.minimum
            for assertion in self._assertions_by_authorizer.get(principal, ()):
                guard = self._guards.get(id(assertion))
                if guard is not None and index_value not in guard:
                    continue  # conditions can only evaluate to minimum
                contribution = self._assertion_value(assertion, attributes, values, cv)
                if contribution != values.minimum:
                    contributors.append(assertion)
                best = values.max_of(best, contribution)
                if best == values.maximum:
                    break  # cannot improve further
            visiting.discard(principal)
            memo[principal] = best
            return best

        result = cv(POLICY_PRINCIPAL)
        if result == values.minimum:
            return result, []
        return result, contributors

    # -- internals ----------------------------------------------------------

    def _assertion_value(
        self,
        assertion: Assertion,
        attributes: Mapping[str, str],
        values: ComplianceValues,
        cv,
    ) -> str:
        if not self._credential_acceptable(assertion):
            return values.minimum
        if assertion.licensees is None:
            return values.minimum  # delegates to nobody
        # Local-Constants shadow action attributes inside this assertion.
        if assertion.local_constants:
            attributes = {**attributes, **assertion.local_constants}
        if assertion.conditions is None:
            conditions_value = values.maximum
        else:
            conditions_value = assertion.conditions.evaluate(attributes, values)
        if conditions_value == values.minimum:
            return values.minimum  # short-circuit: licensees cannot help
        licensees_value = assertion.licensees.evaluate(cv, values)
        return values.min_of(conditions_value, licensees_value)

    def _credential_acceptable(self, assertion: Assertion) -> bool:
        """Verify a credential's signature once, caching the result."""
        if assertion.is_policy or not self.verify_signatures:
            return True
        key = id(assertion)
        if key in self._verified:
            return True
        try:
            verify_assertion(assertion)
        except SignatureVerificationError:
            return False
        self._verified.add(key)
        return True


def _conditions_guard(assertion: Assertion, attribute: str) -> frozenset[str] | None:
    """Literals ``attribute`` must equal for the conditions to be non-minimal.

    Returns None when no sound guard exists (unguarded assertions are
    always evaluated).  A guard is sound when *every* top-level clause's
    test contains, as a conjunct, a comparison ``attribute == "literal"``:
    with any other attribute value, every clause test is false and the
    program evaluates to the minimum compliance value.
    """
    from repro.keynote.expr import And, Attr, Compare, StrLit

    if assertion.conditions is None:
        return None  # empty conditions mean maximum trust: never skip
    if attribute in assertion.local_constants:
        return None  # shadowed: the action attribute is not what's tested

    def required_literal(test) -> str | None:
        if isinstance(test, Compare) and test.op == "==":
            left, right = test.left, test.right
            if isinstance(left, Attr) and left.name == attribute and \
                    isinstance(right, StrLit):
                return right.value
            if isinstance(right, Attr) and right.name == attribute and \
                    isinstance(left, StrLit):
                return left.value
            return None
        if isinstance(test, And):
            return required_literal(test.left) or required_literal(test.right)
        return None  # Or / Not / bool literals: no sound requirement

    literals: set[str] = set()
    for clause in assertion.conditions.clauses:
        literal = required_literal(clause.test)
        if literal is None:
            return None
        literals.add(literal)
    return frozenset(literals)
