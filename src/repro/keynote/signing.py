"""Signed KeyNote assertions (credentials).

A credential is an assertion whose Authorizer is a key and which carries a
``Signature`` field.  The signature covers the assertion text from its
first byte up to and including the colon of the ``Signature:`` label —
so any tampering with fields, whitespace or ordering invalidates it.  The
parser records that exact byte range in ``Assertion.signed_text``.
"""

from __future__ import annotations

from repro.crypto.dsa import DSAKeyPair, DSAPublicKey
from repro.crypto.keycodec import (
    decode_key,
    decode_signature,
    encode_public_key,
    encode_signature,
    signature_scheme,
)
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey
from repro.errors import (
    AssertionSyntaxError,
    InvalidKey,
    InvalidSignature,
    SignatureVerificationError,
)
from repro.keynote.ast import Assertion
from repro.keynote.parser import parse_assertion

_SIGNATURE_LABEL = "Signature:"


def sign_assertion(
    body: str,
    key: DSAKeyPair | RSAKeyPair,
    hash_name: str = "sha1",
    encoding: str = "hex",
) -> str:
    """Sign an assertion body, returning the complete credential text.

    ``body`` is the assertion without a Signature field; its Authorizer
    must correspond to ``key`` (checked, so you cannot accidentally issue a
    credential the verifier will reject).
    """
    body = body.rstrip("\n") + "\n"
    parsed = parse_assertion(body)  # validates syntax early
    if parsed.is_policy:
        raise AssertionSyntaxError("POLICY assertions are never signed")
    expected = encode_public_key(key)
    if parsed.authorizer != expected:
        raise SignatureVerificationError(
            "signing key does not match the assertion's Authorizer"
        )
    signed_bytes = (body + _SIGNATURE_LABEL).encode("utf-8")
    raw_signature = key.sign(signed_bytes, hash_name=hash_name)
    identifier = encode_signature(key.algorithm, hash_name, raw_signature, encoding)
    return f'{body}{_SIGNATURE_LABEL} "{identifier}"\n'


def verify_assertion(assertion: Assertion) -> None:
    """Verify a signed assertion; raises SignatureVerificationError on failure.

    Policy assertions (unsigned, local) pass trivially — local policy is
    trusted by definition (RFC 2704 section 4.6.7).
    """
    if assertion.is_policy:
        return
    if assertion.signature is None:
        raise SignatureVerificationError("credential carries no Signature field")
    if not assertion.signed_text:
        raise SignatureVerificationError(
            "assertion was not parsed from text; cannot verify"
        )
    try:
        key = decode_key(assertion.authorizer)
    except InvalidKey as exc:
        raise SignatureVerificationError(
            f"authorizer is not a decodable key: {exc}"
        ) from exc
    public = getattr(key, "public", key)
    if not isinstance(public, (DSAPublicKey, RSAPublicKey)):
        raise SignatureVerificationError("authorizer key type unsupported")

    try:
        algorithm, hash_name, _enc = signature_scheme(assertion.signature)
        signature_value = decode_signature(assertion.signature)
    except InvalidSignature as exc:
        raise SignatureVerificationError(f"malformed signature: {exc}") from exc

    if algorithm != public.algorithm:
        raise SignatureVerificationError(
            f"signature algorithm {algorithm!r} does not match "
            f"authorizer key type {public.algorithm!r}"
        )
    try:
        public.verify(
            assertion.signed_text.encode("utf-8"), signature_value, hash_name=hash_name
        )
    except InvalidSignature as exc:
        raise SignatureVerificationError("credential signature is invalid") from exc
