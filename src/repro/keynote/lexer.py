"""Tokenizer for KeyNote licensee and conditions expressions.

One lexer serves both sub-languages; the parsers simply ignore tokens that
cannot appear in their grammar.  Token kinds:

``STRING``      quoted string literal (supports ``\\`` escapes)
``INT``         integer literal
``FLOAT``       floating-point literal
``IDENT``       attribute name / keyword (``true``, ``false``)
``OP``          one of the operator/punctuation lexemes below
``EOF``         end of input

Operators: ``( ) { } && || ! == != <= >= < > ~= -> ; + - * / % ^ . @ & $ , =``
(longest-match-first, so ``&&`` beats ``&``, ``==`` beats ``=`` and ``->``
beats ``-``; the single ``=`` only appears in Local-Constants bindings).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssertionSyntaxError

_OPERATORS = (
    "&&", "||", "==", "!=", "<=", ">=", "~=", "->",
    "(", ")", "{", "}", "!", "<", ">", ";", "+", "-", "*", "/", "%", "^",
    ".", "@", "&", "$", ",", "=",
)


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text: str) -> list[Token]:
    """Tokenize an expression string; raises AssertionSyntaxError on garbage."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == '"':
            literal, i = _read_string(text, i)
            tokens.append(Token("STRING", literal, i))
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            tok, i = _read_number(text, i)
            tokens.append(tok)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            tokens.append(Token("IDENT", text[start:i], start))
            continue
        for op in _OPERATORS:
            if text.startswith(op, i):
                # "." followed by a digit was handled as a number above, so a
                # bare "." here is concatenation.
                tokens.append(Token("OP", op, i))
                i += len(op)
                break
        else:
            raise AssertionSyntaxError(f"unexpected character {ch!r} in expression", column=i)
    tokens.append(Token("EOF", "", n))
    return tokens


def _read_string(text: str, i: int) -> tuple[str, int]:
    """Read a quoted string starting at ``text[i] == '"'``."""
    out: list[str] = []
    i += 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\":
            if i + 1 >= n:
                raise AssertionSyntaxError("dangling escape in string literal", column=i)
            nxt = text[i + 1]
            out.append({"n": "\n", "t": "\t", "r": "\r"}.get(nxt, nxt))
            i += 2
            continue
        if ch == '"':
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise AssertionSyntaxError("unterminated string literal", column=i)


def _read_number(text: str, i: int) -> tuple[Token, int]:
    start = i
    n = len(text)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            # Only a digit after the dot makes it part of the number;
            # otherwise it is the concatenation operator.
            if i + 1 < n and text[i + 1].isdigit():
                seen_dot = True
                i += 1
            else:
                break
        elif ch in "eE" and not seen_exp and i + 1 < n and (
            text[i + 1].isdigit() or text[i + 1] in "+-"
        ):
            seen_exp = True
            i += 2 if text[i + 1] in "+-" else 1
        else:
            break
    lexeme = text[start:i]
    kind = "FLOAT" if (seen_dot or seen_exp) else "INT"
    return Token(kind, lexeme, start), i


class TokenStream:
    """A small cursor over a token list used by both parsers."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def peek(self, offset: int = 1) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def advance(self) -> Token:
        tok = self._tokens[self._pos]
        if self._pos < len(self._tokens) - 1:
            self._pos += 1
        return tok

    def match_op(self, *ops: str) -> Token | None:
        tok = self.current
        if tok.kind == "OP" and tok.value in ops:
            return self.advance()
        return None

    def expect_op(self, op: str) -> Token:
        tok = self.current
        if tok.kind != "OP" or tok.value != op:
            raise AssertionSyntaxError(
                f"expected {op!r}, found {tok.value or tok.kind!r}", column=tok.position
            )
        return self.advance()

    def at_end(self) -> bool:
        return self.current.kind == "EOF"
