"""KeyNote licensee expressions (RFC 2704 section 6).

The Licensees field names the principal(s) an assertion delegates to:

    Licensees: "key1"
    Licensees: "key1" || "key2"
    Licensees: ("key1" && "key2") || "key3"
    Licensees: 2-of("key1", "key2", "key3")

During compliance checking each principal is replaced by its computed
compliance value; ``&&`` takes the minimum, ``||`` the maximum, and
``K-of(p1..pn)`` the K-th largest — so a 2-of-3 threshold is satisfied at
value *v* only if at least two of the three principals support *v*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import AssertionSyntaxError
from repro.keynote.ast import ComplianceValues, normalize_principal
from repro.keynote.lexer import TokenStream, tokenize


@dataclass(frozen=True)
class Principal:
    name: str  # normalized

    def principals(self) -> set[str]:
        return {self.name}

    def evaluate(self, cv_of: Callable[[str], str], values: ComplianceValues) -> str:
        return cv_of(self.name)


@dataclass(frozen=True)
class AndExpr:
    left: "LicenseeExpr"
    right: "LicenseeExpr"

    def principals(self) -> set[str]:
        return self.left.principals() | self.right.principals()

    def evaluate(self, cv_of: Callable[[str], str], values: ComplianceValues) -> str:
        return values.min_of(
            self.left.evaluate(cv_of, values), self.right.evaluate(cv_of, values)
        )


@dataclass(frozen=True)
class OrExpr:
    left: "LicenseeExpr"
    right: "LicenseeExpr"

    def principals(self) -> set[str]:
        return self.left.principals() | self.right.principals()

    def evaluate(self, cv_of: Callable[[str], str], values: ComplianceValues) -> str:
        return values.max_of(
            self.left.evaluate(cv_of, values), self.right.evaluate(cv_of, values)
        )


@dataclass(frozen=True)
class Threshold:
    k: int
    members: tuple["LicenseeExpr", ...]

    def principals(self) -> set[str]:
        out: set[str] = set()
        for member in self.members:
            out |= member.principals()
        return out

    def evaluate(self, cv_of: Callable[[str], str], values: ComplianceValues) -> str:
        member_values = [m.evaluate(cv_of, values) for m in self.members]
        return values.kth_largest(member_values, self.k)


LicenseeExpr = Principal | AndExpr | OrExpr | Threshold


def parse_licensees(
    text: str, local_constants: Mapping[str, str] | None = None
) -> LicenseeExpr | None:
    """Parse a Licensees field body.

    Returns ``None`` for an empty field (an assertion with no licensees
    delegates to nobody).  ``local_constants`` maps Local-Constants names to
    their values; a bare identifier in the expression is resolved through
    it (this is how assertions name keys symbolically).
    """
    constants = dict(local_constants or {})
    stream = TokenStream(tokenize(text))
    if stream.at_end():
        return None
    expr = _parse_or(stream, constants)
    if not stream.at_end():
        tok = stream.current
        raise AssertionSyntaxError(
            f"trailing garbage in licensees: {tok.value!r}", column=tok.position
        )
    return expr


def _parse_or(stream: TokenStream, constants: Mapping[str, str]) -> LicenseeExpr:
    node = _parse_and(stream, constants)
    while stream.match_op("||"):
        node = OrExpr(node, _parse_and(stream, constants))
    return node


def _parse_and(stream: TokenStream, constants: Mapping[str, str]) -> LicenseeExpr:
    node = _parse_primary(stream, constants)
    while stream.match_op("&&"):
        node = AndExpr(node, _parse_primary(stream, constants))
    return node


def _parse_primary(stream: TokenStream, constants: Mapping[str, str]) -> LicenseeExpr:
    tok = stream.current
    if tok.kind == "OP" and tok.value == "(":
        stream.advance()
        node = _parse_or(stream, constants)
        stream.expect_op(")")
        return node
    if tok.kind == "INT":
        # K-of(...) threshold: INT '-' IDENT(of) '(' list ')'
        return _parse_threshold(stream, constants)
    if tok.kind == "STRING":
        stream.advance()
        return Principal(_resolve(tok.value, constants))
    if tok.kind == "IDENT":
        stream.advance()
        if tok.value not in constants:
            raise AssertionSyntaxError(
                f"unknown licensee name {tok.value!r} "
                "(not defined in Local-Constants)",
                column=tok.position,
            )
        return Principal(normalize_principal(constants[tok.value]))
    raise AssertionSyntaxError(
        f"expected principal, found {tok.value or tok.kind!r}", column=tok.position
    )


def _parse_threshold(stream: TokenStream, constants: Mapping[str, str]) -> Threshold:
    k_tok = stream.advance()
    k = int(k_tok.value)
    if k < 1:
        raise AssertionSyntaxError("threshold K must be >= 1", column=k_tok.position)
    stream.expect_op("-")
    of_tok = stream.current
    if of_tok.kind != "IDENT" or of_tok.value.lower() != "of":
        raise AssertionSyntaxError(
            f"expected 'of' in threshold, found {of_tok.value!r}", column=of_tok.position
        )
    stream.advance()
    stream.expect_op("(")
    members: list[LicenseeExpr] = [_parse_or(stream, constants)]
    while stream.match_op(","):
        members.append(_parse_or(stream, constants))
    stream.expect_op(")")
    if k > len(members):
        raise AssertionSyntaxError(
            f"threshold K={k} exceeds the {len(members)} listed principals"
        )
    return Threshold(k=k, members=tuple(members))


def _resolve(name: str, constants: Mapping[str, str]) -> str:
    """Resolve a quoted principal through Local-Constants, then normalize."""
    if name in constants:
        name = constants[name]
    return normalize_principal(name)
