"""Uniform filesystem targets for the benchmark suite.

Bonnie and the search workload are written once against
:class:`FilesystemTarget`; each measured system provides an adapter:

* :class:`LocalFFSTarget` — direct FFS calls (the paper's local-FS rows),
* :class:`NFSTarget` — anything reachable through an
  :class:`~repro.nfs.client.NFSClient`: CFS, CFS-NE and DisCFS.

Files returned by ``create``/``open`` expose stdio-like buffered
operations (putc/getc/write/read/seek/flush) because Bonnie's
per-character phases measure exactly the stdio path.
"""

from __future__ import annotations

from typing import Protocol

from repro.fs.ffs import FFS
from repro.nfs.client import NFSClient, RemoteFile
from repro.nfs.protocol import MAX_DATA, SAttr


class BufferedFile(Protocol):
    def putc(self, byte: int) -> None: ...

    def getc(self) -> int | None: ...

    def write(self, data: bytes) -> int: ...

    def read(self, count: int) -> bytes: ...

    def seek(self, offset: int) -> None: ...

    def tell(self) -> int: ...

    def flush(self) -> None: ...


class FilesystemTarget(Protocol):
    """What a measured system must offer the workloads."""

    name: str

    def create_file(self, path: str) -> BufferedFile: ...

    def open_file(self, path: str) -> BufferedFile: ...

    def remove_file(self, path: str) -> None: ...

    def listdir(self, path: str) -> list[tuple[str, bool]]:
        """Entries of a directory as (name, is_dir), excluding '.'/'..'."""
        ...

    def file_size(self, path: str) -> int: ...


# ---------------------------------------------------------------------------
# Local FFS
# ---------------------------------------------------------------------------


class _LocalFile:
    """Buffered file over direct FFS calls (stdio analogue for "FFS")."""

    def __init__(self, fs: FFS, ino: int, buffer_size: int = MAX_DATA):
        self._fs = fs
        self._ino = ino
        self._buffer_size = buffer_size
        self._pos = 0
        self._wbuf = bytearray()
        self._wbuf_offset = 0
        self._rbuf = b""
        self._rbuf_offset = 0

    def write(self, data: bytes) -> int:
        if not self._wbuf:
            self._wbuf_offset = self._pos
        elif self._wbuf_offset + len(self._wbuf) != self._pos:
            self.flush()
            self._wbuf_offset = self._pos
        self._wbuf += data
        self._pos += len(data)
        while len(self._wbuf) >= self._buffer_size:
            chunk = bytes(self._wbuf[: self._buffer_size])
            self._fs.write(self._ino, self._wbuf_offset, chunk)
            del self._wbuf[: self._buffer_size]
            self._wbuf_offset += len(chunk)
        return len(data)

    def putc(self, byte: int) -> None:
        self.write(bytes((byte,)))

    def flush(self) -> None:
        if self._wbuf:
            self._fs.write(self._ino, self._wbuf_offset, bytes(self._wbuf))
            self._wbuf.clear()

    def read(self, count: int) -> bytes:
        self.flush()
        out = bytearray()
        while count > 0:
            start = self._pos - self._rbuf_offset
            if 0 <= start < len(self._rbuf):
                chunk = self._rbuf[start : start + count]
            else:
                self._rbuf = self._fs.read(self._ino, self._pos, self._buffer_size)
                self._rbuf_offset = self._pos
                if not self._rbuf:
                    break
                chunk = self._rbuf[:count]
            self._pos += len(chunk)
            out += chunk
            count -= len(chunk)
        return bytes(out)

    def getc(self) -> int | None:
        data = self.read(1)
        return data[0] if data else None

    def seek(self, offset: int) -> None:
        self.flush()
        self._pos = offset

    def tell(self) -> int:
        return self._pos


class LocalFFSTarget:
    """Direct (in-process, no RPC) access to an FFS instance."""

    def __init__(self, fs: FFS, name: str = "FFS"):
        self.fs = fs
        self.name = name

    def create_file(self, path: str) -> _LocalFile:
        inode = self.fs.write_file(path, b"")
        return _LocalFile(self.fs, inode.ino)

    def open_file(self, path: str) -> _LocalFile:
        inode = self.fs.namei(path)
        return _LocalFile(self.fs, inode.ino)

    def remove_file(self, path: str) -> None:
        dino, name = self.fs._split_path(path)
        self.fs.remove(dino, name)

    def listdir(self, path: str) -> list[tuple[str, bool]]:
        dir_inode = self.fs.namei(path)
        out = []
        for name, ino in self.fs.readdir(dir_inode.ino):
            if name in (".", ".."):
                continue
            out.append((name, self.fs.iget(ino).is_dir))
        return out

    def file_size(self, path: str) -> int:
        return self.fs.namei(path).size


# ---------------------------------------------------------------------------
# NFS-reachable systems (CFS, CFS-NE, DisCFS)
# ---------------------------------------------------------------------------


class NFSTarget:
    """A target speaking through an NFS client (any of the three daemons)."""

    def __init__(self, client: NFSClient, name: str):
        self.client = client
        self.name = name

    def _walk(self, path: str):
        return self.client.walk(path)

    def create_file(self, path: str) -> RemoteFile:
        directory, _, name = path.strip("/").rpartition("/")
        dir_fh, _ = self._walk(directory) if directory else (self.client.root, None)
        try:
            fh, _ = self.client.lookup(dir_fh, name)
            self.client.setattr(fh, SAttr(size=0))
        except Exception:
            fh, _attr, _cred = self.client.create(dir_fh, name)
        return self.client.open(fh)

    def open_file(self, path: str) -> RemoteFile:
        fh, _attr = self._walk(path)
        return self.client.open(fh)

    def remove_file(self, path: str) -> None:
        directory, _, name = path.strip("/").rpartition("/")
        dir_fh, _ = self._walk(directory) if directory else (self.client.root, None)
        self.client.remove(dir_fh, name)

    def listdir(self, path: str) -> list[tuple[str, bool]]:
        dir_fh, _ = self._walk(path)
        out = []
        for _fileid, name in self.client.readdir_all(dir_fh):
            if name in (".", ".."):
                continue
            _fh, attr = self.client.lookup(dir_fh, name)
            out.append((name, attr.is_dir))
        return out

    def file_size(self, path: str) -> int:
        _fh, attr = self._walk(path)
        return attr.size
