"""Builds the measured systems exactly as the evaluation compares them.

=============  ==========================================================
``FFS``        direct local filesystem calls (the paper's local rows)
``CFS-NE``     CFS daemon, encryption off, reached over NFS/RPC — the
               paper's base case
``CFS``        CFS daemon with encryption on (extra: the system CFS-NE
               was derived from)
``DisCFS``     the full prototype: NFS + KeyNote policy checks + policy
               cache; client identity injected at the transport (the
               paper's measurements isolate the *access-control* overhead
               — both CFS-NE and DisCFS ride identical NFS plumbing)
``DisCFS-IPsec``  DisCFS reached through the IKE/ESP channel, for the
               micro-benchmarks that price the secure channel itself
=============  ==========================================================

Each built system satisfies :class:`repro.bench.targets.FilesystemTarget`
and exposes its internals for stats collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.targets import FilesystemTarget, LocalFFSTarget, NFSTarget
from repro.cfs.client import cfs_attach
from repro.cfs.server import CFSServer
from repro.core.admin import Administrator, identity_of, make_user_keypair
from repro.core.client import DisCFSClient
from repro.core.permissions import Permission
from repro.core.server import DisCFSServer
from repro.fs.blockdev import BlockDevice, MemoryBlockDevice
from repro.fs.ffs import FFS
from repro.rpc.transport import LatencyModel, SimulatedLatencyTransport
from repro.storage import open_device

SYSTEMS = ("FFS", "CFS-NE", "CFS", "DisCFS", "DisCFS-IPsec")

#: The three systems the paper's figures compare.
PAPER_SYSTEMS = ("FFS", "CFS-NE", "DisCFS")

DEFAULT_DEVICE_BLOCKS = 1 << 15  # 256 MB of 8 KiB blocks


@dataclass
class BuiltSystem:
    """A measured system plus handles to its internals."""

    name: str
    target: FilesystemTarget
    fs: FFS
    server: object | None = None
    client: object | None = None
    extras: dict = field(default_factory=dict)

    @property
    def device_stats(self):
        return self.fs.device.stats

    @property
    def cache_stats(self):
        if self.server is not None and hasattr(self.server, "cache"):
            return self.server.cache.stats
        return None


def _fresh_device(device_blocks: int, backend: str | None) -> BlockDevice:
    if backend is None:
        return MemoryBlockDevice(num_blocks=device_blocks)
    return open_device(backend, num_blocks=device_blocks)


def make_target(
    system: str,
    cache_capacity: int = 128,
    device_blocks: int = DEFAULT_DEVICE_BLOCKS,
    network_model: LatencyModel | None = None,
    backend: str | None = None,
) -> BuiltSystem:
    """Build a named system on a fresh filesystem.

    ``backend``: storage URI the filesystem's device is opened from
    (default in-memory).  The backend ablation sweeps this axis while
    everything above the block layer stays identical.

    ``network_model``: wrap the network systems' transports in a
    virtual-time :class:`SimulatedLatencyTransport` charging the model for
    every RPC (used by the paper-scale modeled report; FFS, being local,
    is unaffected).  The model lands in ``extras["network_model"]``.
    """
    if system == "FFS":
        fs = FFS(_fresh_device(device_blocks, backend))
        return BuiltSystem(name=system, target=LocalFFSTarget(fs, name=system), fs=fs)

    if system in ("CFS-NE", "CFS"):
        server = CFSServer(
            device=_fresh_device(device_blocks, backend),
            encrypt=(system == "CFS"),
        )
        transport = server.in_process_transport("cfs-user")
        extras = {}
        if network_model is not None:
            transport = SimulatedLatencyTransport(transport, network_model)
            extras["network_model"] = network_model
        client = cfs_attach(transport, "/")
        return BuiltSystem(
            name=system,
            target=NFSTarget(client, name=system),
            fs=server.fs,
            server=server,
            client=client,
            extras=extras,
        )

    if system in ("DisCFS", "DisCFS-IPsec"):
        admin = Administrator.generate(seed=b"bench-admin")
        server = DisCFSServer(
            admin_identity=admin.identity,
            device=_fresh_device(device_blocks, backend),
            cache_capacity=cache_capacity,
        )
        admin.trust_server(server)
        user_key = make_user_keypair(b"bench-user")
        extras: dict = {"admin": admin, "user_key": user_key}
        if network_model is not None and system == "DisCFS":
            transport = SimulatedLatencyTransport(
                server.in_process_transport(identity_of(user_key)),
                network_model,
            )
            extras["network_model"] = network_model
            client = DisCFSClient(transport, user_key)
        else:
            client = DisCFSClient.connect(
                server, user_key, secure=(system == "DisCFS-IPsec")
            )
        client.attach("/")
        # The administrator grants the benchmark user the whole tree —
        # the equivalent of Bob's Figure 5 credential for his workspace.
        credential = admin.grant_inode(
            identity_of(user_key),
            server.fs.iget(server.fs.root_ino),
            rights=Permission.all(),
            scheme=server.handle_scheme,
            subtree=True,
            comment="benchmark workspace",
        )
        client.submit_credential(credential)
        return BuiltSystem(
            name=system,
            target=NFSTarget(client.nfs, name=system),
            fs=server.fs,
            server=server,
            client=client,
            extras=extras,
        )

    raise ValueError(f"unknown system {system!r}; choose from {SYSTEMS}")
