"""Paper-style result tables for the whole evaluation.

Running this module (``python -m repro.bench.report``) regenerates every
figure's data: Bonnie throughput rows for Figures 7-11 and the search
times for Figure 12, for FFS, CFS-NE and DisCFS (plus optional extras).
The output is the source for EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse

from repro.bench.bonnie import PHASES, run_bonnie
from repro.bench.harness import PAPER_SYSTEMS, make_target
from repro.bench.search import run_search
from repro.bench.workloads import SourceTreeSpec, generate_source_tree

_FIGURES = {
    "output_char": "Figure 7: Bonnie Sequential Output (Char)",
    "output_block": "Figure 8: Bonnie Sequential Output (Block)",
    "rewrite": "Figure 9: Bonnie Sequential Output (Rewrite)",
    "input_char": "Figure 10: Bonnie Sequential Input (Char)",
    "input_block": "Figure 11: Bonnie Sequential Input (Block)",
}


def run_evaluation(
    systems: tuple[str, ...] = PAPER_SYSTEMS,
    file_size: int = 1 << 21,
    char_size: int = 1 << 18,
    tree_spec: SourceTreeSpec | None = None,
    cache_capacity: int = 128,
) -> dict:
    """Run Bonnie + search on each system; returns a results dict."""
    results: dict = {"bonnie": {}, "search": {}}
    for system in systems:
        built = make_target(system, cache_capacity=cache_capacity)
        results["bonnie"][system] = run_bonnie(
            built.target, file_size=file_size, char_size=char_size
        )
        built = make_target(system, cache_capacity=cache_capacity)
        generate_source_tree(built.target, "/src", tree_spec)
        results["search"][system] = run_search(built.target, "/src")
    return results


def print_report(results: dict) -> None:
    systems = list(results["bonnie"])
    for phase in PHASES:
        print(f"\n{_FIGURES[phase]}")
        print(f"  {'Filesystem':<14} {'Throughput (K/sec)':>20}")
        for system in systems:
            kps = results["bonnie"][system].kps(phase)
            print(f"  {system:<14} {kps:>20.0f}")
    print("\nFigure 12: Filesystem Search")
    print(f"  {'Filesystem':<14} {'Time (sec)':>12} {'files':>7}")
    for system in systems:
        sr = results["search"][system]
        print(f"  {system:<14} {sr.seconds:>12.3f} {sr.files_scanned:>7}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--file-size", type=int, default=1 << 21,
                        help="Bonnie block-phase file size in bytes")
    parser.add_argument("--char-size", type=int, default=1 << 18,
                        help="Bonnie per-char phase size in bytes")
    parser.add_argument("--systems", nargs="*", default=list(PAPER_SYSTEMS))
    parser.add_argument("--cache", type=int, default=128,
                        help="DisCFS policy cache capacity")
    args = parser.parse_args()
    results = run_evaluation(
        systems=tuple(args.systems),
        file_size=args.file_size,
        char_size=args.char_size,
        cache_capacity=args.cache,
    )
    print_report(results)


if __name__ == "__main__":
    main()
