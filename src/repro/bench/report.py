"""Paper-style result tables for the whole evaluation.

Running this module (``python -m repro.bench.report``) regenerates every
figure's data: Bonnie throughput rows for Figures 7-11 and the search
times for Figure 12, for FFS, CFS-NE and DisCFS (plus optional extras).
The output is the source for EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse

from repro.bench.bonnie import PHASES, run_bonnie
from repro.bench.harness import PAPER_SYSTEMS, make_target
from repro.bench.search import run_search
from repro.bench.workloads import SourceTreeSpec, generate_source_tree

_FIGURES = {
    "output_char": "Figure 7: Bonnie Sequential Output (Char)",
    "output_block": "Figure 8: Bonnie Sequential Output (Block)",
    "rewrite": "Figure 9: Bonnie Sequential Output (Rewrite)",
    "input_char": "Figure 10: Bonnie Sequential Input (Char)",
    "input_block": "Figure 11: Bonnie Sequential Input (Block)",
}


def run_evaluation(
    systems: tuple[str, ...] = PAPER_SYSTEMS,
    file_size: int = 1 << 21,
    char_size: int = 1 << 18,
    tree_spec: SourceTreeSpec | None = None,
    cache_capacity: int = 128,
) -> dict:
    """Run Bonnie + search on each system; returns a results dict."""
    results: dict = {"bonnie": {}, "search": {}}
    for system in systems:
        built = make_target(system, cache_capacity=cache_capacity)
        results["bonnie"][system] = run_bonnie(
            built.target, file_size=file_size, char_size=char_size
        )
        built = make_target(system, cache_capacity=cache_capacity)
        generate_source_tree(built.target, "/src", tree_spec)
        results["search"][system] = run_search(built.target, "/src")
    return results


#: The backend sweep the storage ablation reports by default.
DEFAULT_BACKENDS = (
    "mem://",
    "shard://2",
    "shard://4",
    "shard://8",
    "cached://mem://#capacity=256",
)


def run_backend_ablation(
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    system: str = "FFS",
    file_size: int = 1 << 20,
    char_size: int = 1 << 16,
) -> dict:
    """Bonnie phases for one system across storage backends.

    Same workload, same system, only the block layer changes — the
    counterpart of ``run_evaluation``'s system sweep, for the storage
    axis (``benchmarks/test_ablation_storage_backend.py``).
    """
    results: dict = {"system": system, "bonnie": {}, "device": {}}
    for uri in backends:
        built = make_target(system, backend=uri)
        results["bonnie"][uri] = run_bonnie(
            built.target, file_size=file_size, char_size=char_size
        )
        results["device"][uri] = _device_row(built, seeks=True)
        built.fs.device.close()
    return results


def _device_row(built, seeks: bool = False) -> dict:
    """Logical-vs-physical I/O attribution for one built system.

    Logical traffic (what FFS issued) is workload-determined and so
    identical across backends; the physical traffic that reached the
    leaf stores is where cached://, shard:// and replica:// differ.
    """
    stats = built.device_stats
    store = getattr(built.fs.device, "store", None)
    leaves = store.leaf_stores() if store is not None else []
    row = {
        "reads": stats.reads,
        "writes": stats.writes,
        "physical_reads": sum(leaf.stats.reads for leaf in leaves)
        if leaves else stats.reads,
        "physical_writes": sum(leaf.stats.writes for leaf in leaves)
        if leaves else stats.writes,
        "leaves": len(leaves) or 1,
    }
    if seeks:
        row["seeks"] = stats.seeks
    return row


def print_backend_report(results: dict) -> None:
    """Per-backend comparison table (throughput per Bonnie phase)."""
    backends = list(results["bonnie"])
    print(f"\nStorage backend ablation — system: {results['system']}")
    header = f"  {'Backend':<32}" + "".join(f"{p:>14}" for p in PHASES)
    print(header)
    print(f"  {'(throughput K/sec)':<32}")
    for uri in backends:
        row = results["bonnie"][uri]
        cells = "".join(f"{row.kps(p):>14.0f}" for p in PHASES)
        print(f"  {uri:<32}{cells}")
    print(
        f"\n  {'Backend':<32}{'log.reads':>10}{'log.writes':>11}"
        f"{'phys.reads':>11}{'phys.writes':>12}{'leaves':>8}"
    )
    for uri in backends:
        dev = results["device"][uri]
        print(
            f"  {uri:<32}{dev['reads']:>10}{dev['writes']:>11}"
            f"{dev['physical_reads']:>11}{dev['physical_writes']:>12}"
            f"{dev['leaves']:>8}"
        )


#: The replica-factor / quorum sweep the replication ablation reports.
DEFAULT_REPLICA_CONFIGS = (
    "mem://",                 # no replication baseline
    "replica://2",            # 2x, write-all/read-one
    "replica://3",            # 3x, write-all/read-one
    "replica://3?w=2&r=2",    # 3x, strict quorums (1-node-outage safe)
    "replica://5?w=3&r=3",    # 5x, majority quorums
)


def run_replication_ablation(
    configs: tuple[str, ...] = DEFAULT_REPLICA_CONFIGS,
    system: str = "FFS",
    file_size: int = 1 << 20,
    char_size: int = 1 << 16,
) -> dict:
    """Bonnie across replica factors/quorums, plus an RPC round-trip
    comparison of batched vs per-block remote I/O.

    Replication multiplies *physical* writes by the replica factor while
    logical traffic stays constant — the same logical-vs-physical story
    as the backend ablation, on the redundancy axis.  The ``rpc`` rows
    price the other distributed cost: round trips, with
    ``read_many``/``write_many`` batching on versus off.
    """
    from repro.fs.ffs import FFS
    from repro.rpc.server import RPCServer
    from repro.rpc.transport import InProcessTransport
    from repro.storage import MemoryBlockStore, StoreBlockDevice
    from repro.storage.net import BlockStoreProgram, RemoteBlockStore

    results: dict = {"system": system, "bonnie": {}, "device": {}, "rpc": {}}
    for uri in configs:
        built = make_target(system, backend=uri)
        results["bonnie"][uri] = run_bonnie(
            built.target, file_size=file_size, char_size=char_size
        )
        store = getattr(built.fs.device, "store", None)
        row = _device_row(built)
        # The uniform protocol names the layer (scheme) and its live
        # children; no isinstance probing of store internals.
        row["replicas"] = (
            len(store.child_stores())
            if store is not None and store.scheme == "replica"
            else 1
        )
        results["device"][uri] = row
        built.fs.device.close()

    # The FFS cold path — whole-file extents — over an in-process remote
    # store: how many RPC round trips does the vectored interface save?
    # (Bonnie's phases hand FFS one block per call, so the batching win
    # shows on multi-block reads/writes: write_file/read_file.)
    payload = (bytes(range(256)) * (file_size // 256 + 1))[:file_size]
    for label, batch in (("remote (batched)", True),
                         ("remote (per-block)", False)):
        backing = MemoryBlockStore(num_blocks=1 << 15)
        rpc = RPCServer()
        rpc.register(BlockStoreProgram(backing))
        transport = InProcessTransport(rpc.handler_for(None))
        remote = RemoteBlockStore(transport, batch=batch)
        fs = FFS(StoreBlockDevice(remote, uri=label))
        for i in range(4):
            fs.write_file(f"/extent-{i}.dat", payload)
        for i in range(4):
            assert fs.read_file(f"/extent-{i}.dat") == payload
        results["rpc"][label] = {
            "round_trips": transport.stats.calls,
            "bytes_sent": transport.stats.bytes_sent,
            "reads": fs.device.stats.reads,
            "writes": fs.device.stats.writes,
        }
        fs.device.close()
    return results


def print_replication_report(results: dict) -> None:
    """Replication sweep + RPC round-trip tables."""
    print(f"\nReplication ablation — system: {results['system']}")
    header = f"  {'Backend':<28}" + "".join(f"{p:>14}" for p in PHASES)
    print(header)
    print(f"  {'(throughput K/sec)':<28}")
    for uri, row in results["bonnie"].items():
        cells = "".join(f"{row.kps(p):>14.0f}" for p in PHASES)
        print(f"  {uri:<28}{cells}")
    print(
        f"\n  {'Backend':<28}{'replicas':>9}{'log.reads':>10}"
        f"{'log.writes':>11}{'phys.reads':>11}{'phys.writes':>12}"
    )
    for uri, dev in results["device"].items():
        print(
            f"  {uri:<28}{dev['replicas']:>9}{dev['reads']:>10}"
            f"{dev['writes']:>11}{dev['physical_reads']:>11}"
            f"{dev['physical_writes']:>12}"
        )
    print(
        f"\n  {'Remote config':<28}{'rpc trips':>10}{'log.reads':>10}"
        f"{'log.writes':>11}{'bytes sent':>12}"
    )
    for label, rpc in results["rpc"].items():
        print(
            f"  {label:<28}{rpc['round_trips']:>10}{rpc['reads']:>10}"
            f"{rpc['writes']:>11}{rpc['bytes_sent']:>12}"
        )


#: label -> backend URI template ({d} = scratch directory) the journal
#: ablation sweeps: journaling on/off over both durable children.
JOURNAL_CONFIGS = (
    ("file (no journal)", "file://{d}/plain.img"),
    ("journal://file", "journal://file://{d}/journaled.img"),
    ("sqlite (no journal)", "sqlite://{d}/plain.db"),
    ("journal://sqlite", "journal://sqlite://{d}/journaled.db"),
)

#: Blocks written (in batches) by the replay measurement.
REPLAY_BLOCKS = 1024
REPLAY_BATCH = 64


def run_journal_ablation(
    system: str = "FFS",
    file_size: int = 1 << 20,
    char_size: int = 1 << 16,
    workdir: str | None = None,
) -> dict:
    """Bonnie with journaling on/off over the durable backends, plus a
    measured crash replay.

    What the write-ahead log costs is fsyncs (one group commit per
    batch) and their latency; what it buys is replay — committed writes
    surviving a crash instead of rolling back to the last checkpoint.
    Both sides are reported: per-phase throughput and fsync counts for
    each config, then the timed replay of a deliberately "crashed"
    journal (:meth:`JournalBlockStore.abandon`).
    """
    import tempfile
    import time

    from repro.storage import iter_stores, open_store

    workdir = workdir or tempfile.mkdtemp(prefix="journal-ablation-")
    results: dict = {"system": system, "bonnie": {}, "device": {}}
    for label, template in JOURNAL_CONFIGS:
        uri = template.format(d=workdir)
        built = make_target(system, backend=uri)
        results["bonnie"][label] = run_bonnie(
            built.target, file_size=file_size, char_size=char_size
        )
        store = built.fs.device.store
        row = _device_row(built)
        # Uniform snapshot protocol: walk the mounted tree and read each
        # layer's counters from its StoreStats — no isinstance probing.
        snapshots = [s.snapshot() for s in iter_stores(store)]
        row["fsyncs"] = sum(snap.fsyncs for snap in snapshots)
        journal_snap = next(
            (snap for snap in snapshots if snap.scheme == "journal"), None
        )
        row["journal_txns"] = (
            int(journal_snap.extra["transactions"]) if journal_snap else 0
        )
        row["journal_blocks"] = (
            int(journal_snap.extra["blocks_journaled"]) if journal_snap
            else 0
        )
        results["device"][label] = row
        built.fs.device.close()

    # Crash replay: journal a workload, abandon without checkpointing,
    # and time the reopen that replays it into the child.
    uri = f"journal://file://{workdir}/replay.img#cap={REPLAY_BLOCKS * 2}"
    store = open_store(uri, num_blocks=max(REPLAY_BLOCKS * 2, 4096))
    payload = b"J" * store.block_size
    for start in range(0, REPLAY_BLOCKS, REPLAY_BATCH):
        store.write_many(
            [(b, payload) for b in range(start, start + REPLAY_BATCH)]
        )
    store.abandon()
    t0 = time.monotonic()
    reopened = open_store(uri, num_blocks=max(REPLAY_BLOCKS * 2, 4096))
    replay_seconds = time.monotonic() - t0
    replay_snap = reopened.snapshot()
    results["replay"] = {
        "transactions": int(replay_snap.extra["replayed_transactions"]),
        "blocks": int(replay_snap.extra["replayed_blocks"]),
        "seconds": replay_seconds,
        "journal_seconds": reopened.journal_stats.replay_seconds,
    }
    reopened.close()
    return results


def print_journal_report(results: dict) -> None:
    """Journal on/off comparison plus the replay measurement."""
    print(f"\nJournal ablation — system: {results['system']}")
    header = f"  {'Backend':<24}" + "".join(f"{p:>14}" for p in PHASES)
    print(header)
    print(f"  {'(throughput K/sec)':<24}")
    for label, row in results["bonnie"].items():
        cells = "".join(f"{row.kps(p):>14.0f}" for p in PHASES)
        print(f"  {label:<24}{cells}")
    print(
        f"\n  {'Backend':<24}{'log.writes':>11}{'phys.writes':>12}"
        f"{'fsyncs':>8}{'txns':>7}{'blk/txn':>9}"
    )
    for label, dev in results["device"].items():
        per_txn = (dev["journal_blocks"] / dev["journal_txns"]
                   if dev["journal_txns"] else 0.0)
        print(
            f"  {label:<24}{dev['writes']:>11}{dev['physical_writes']:>12}"
            f"{dev['fsyncs']:>8}{dev['journal_txns']:>7}{per_txn:>9.1f}"
        )
    replay = results["replay"]
    print(
        f"\n  crash replay: {replay['blocks']} blocks in "
        f"{replay['transactions']} committed transactions replayed in "
        f"{replay['seconds'] * 1000:.1f} ms"
    )


#: Node counts the fanout ablation sweeps (one in-process TCP server per
#: node, each charging an emulated per-operation service latency).
FANOUT_NODE_COUNTS = (1, 2, 4, 8)


def run_fanout_ablation(
    node_counts: tuple[int, ...] = FANOUT_NODE_COUNTS,
    blocks: int = 96,
    rounds: int = 12,
    delay_ms: float = 3.0,
    slow_ms: float = 25.0,
    block_size: int = 4096,
) -> dict:
    """Sequential vs concurrent cross-node fan-out, on real TCP sockets.

    Each "node" is an in-process ``serve_store`` on its own loopback
    port, wrapping its memory store in ``slow://`` so every RPC pays
    ``delay_ms`` of emulated service latency (disk + wire time a
    same-process benchmark otherwise hides).  Two mounts of the same
    ring are timed over identical ``read_many``/``write_many``
    workloads:

    * **sequential** — ``#fanout=1`` children visited one after another
      (the pre-concurrency behaviour): a batch costs the *sum* of every
      node's share;
    * **concurrent** — ``#fanout=n`` with pooled pipelined connections
      (``?workers=2``): a batch costs roughly the *slowest* node's
      share.

    The replica half makes the quorum claim measurable: three replicas,
    one of them ``slow_ms`` behind, written at ``w=2``.  Sequential
    fan-out pays the straggler on every write; concurrent fan-out
    returns at the 2nd-fastest replica and lets the straggler finish on
    its background lane (drained before close, and reported).
    """
    import time as _time

    from repro.storage import (
        DelayedBlockStore,
        MemoryBlockStore,
        open_store,
        serve_store,
    )

    results: dict = {
        "params": {
            "blocks": blocks, "rounds": rounds, "delay_ms": delay_ms,
            "slow_ms": slow_ms, "block_size": block_size,
        },
        "shard": {},
        "replica": {},
    }
    payload = bytes(range(256)) * (block_size // 256)
    items = [(b, payload) for b in range(blocks)]
    block_nos = list(range(blocks))

    def run_workload(uri: str) -> tuple[float, float]:
        store = open_store(uri, num_blocks=blocks * 4,
                           block_size=block_size)
        try:
            t0 = _time.perf_counter()
            for _round in range(rounds):
                store.write_many(items)
            write_seconds = _time.perf_counter() - t0
            t0 = _time.perf_counter()
            for _round in range(rounds):
                datas = store.read_many(block_nos)
            read_seconds = _time.perf_counter() - t0
            assert all(d == payload for d in datas), uri
        finally:
            store.close()
        return write_seconds, read_seconds

    for n in node_counts:
        servers = [
            serve_store(
                DelayedBlockStore(
                    MemoryBlockStore(blocks * 4, block_size),
                    delay_ms=delay_ms,
                ),
                workers=4,
            )
            for _ in range(n)
        ]
        try:
            seq_children = ";".join(
                f"remote://{h}:{p}" for h, p in (s.address for s in servers)
            )
            conc_children = ";".join(
                f"remote://{h}:{p}?workers=2"
                for h, p in (s.address for s in servers)
            )
            seq_w, seq_r = run_workload(f"shard://{seq_children}#fanout=1")
            conc_w, conc_r = run_workload(
                f"shard://{conc_children}#fanout={n}"
            )
        finally:
            for server in servers:
                server.close()
        results["shard"][n] = {
            "sequential_write_s": seq_w, "concurrent_write_s": conc_w,
            "sequential_read_s": seq_r, "concurrent_read_s": conc_r,
            "write_speedup": seq_w / conc_w if conc_w else 0.0,
            "read_speedup": seq_r / conc_r if conc_r else 0.0,
        }

    # Quorum-return: 3 replicas, one straggling, written at w=2.
    delays = (delay_ms, delay_ms, slow_ms)
    servers = [
        serve_store(
            DelayedBlockStore(MemoryBlockStore(blocks * 4, block_size),
                              delay_ms=d),
            workers=4,
        )
        for d in delays
    ]
    try:
        children = ";".join(
            f"remote://{h}:{p}" for h, p in (s.address for s in servers)
        )
        for label, fanout in (("sequential", 1), ("concurrent", 3)):
            store = open_store(
                f"replica://{children}#w=2&r=2&fanout={fanout}",
                num_blocks=blocks * 4, block_size=block_size,
            )
            try:
                t0 = _time.perf_counter()
                for _round in range(rounds):
                    store.write_many(items)
                write_seconds = _time.perf_counter() - t0
                t0 = _time.perf_counter()
                store.drain()
                drain_seconds = _time.perf_counter() - t0
                results["replica"][label] = {
                    "write_ms_per_round": write_seconds * 1000 / rounds,
                    "drain_ms": drain_seconds * 1000,
                    "background_writes":
                        store.replica_stats.background_writes,
                }
            finally:
                store.close()
    finally:
        for server in servers:
            server.close()
    return results


def print_fanout_report(results: dict) -> None:
    """Sequential-vs-concurrent fan-out tables (shard ring + replica)."""
    params = results["params"]
    print(
        f"\nFan-out ablation — {params['blocks']} blocks x "
        f"{params['rounds']} rounds per cell, per-op node latency "
        f"{params['delay_ms']:g} ms (straggler {params['slow_ms']:g} ms)"
    )
    print(
        f"  {'nodes':>5}{'seq write':>11}{'conc write':>12}{'speedup':>9}"
        f"{'seq read':>10}{'conc read':>11}{'speedup':>9}"
    )
    for n, row in results["shard"].items():
        print(
            f"  {n:>5}{row['sequential_write_s']:>10.3f}s"
            f"{row['concurrent_write_s']:>11.3f}s"
            f"{row['write_speedup']:>8.1f}x"
            f"{row['sequential_read_s']:>9.3f}s"
            f"{row['concurrent_read_s']:>10.3f}s"
            f"{row['read_speedup']:>8.1f}x"
        )
    print(
        f"\n  replica w=2 over (fast, fast, {params['slow_ms']:g} ms "
        "straggler):"
    )
    print(
        f"  {'mode':<12}{'write ms/round':>15}{'drain ms':>10}"
        f"{'bg writes':>10}"
    )
    for label, row in results["replica"].items():
        print(
            f"  {label:<12}{row['write_ms_per_round']:>15.1f}"
            f"{row['drain_ms']:>10.1f}{row['background_writes']:>10}"
        )


#: (nodes_before, nodes_after) ring transitions the reshard ablation
#: walks, in order, on one live mounted store (scale out, then in).
RESHARD_TRANSITIONS = ((3, 4), (4, 3))


def run_reshard_ablation(
    transitions: tuple[tuple[int, int], ...] = RESHARD_TRANSITIONS,
    blocks: int = 1536,
    block_size: int = 4096,
    batch: int = 128,
) -> dict:
    """Live ring migrations across real TCP nodes, measured.

    Starts enough in-process ``serve_store`` nodes for the largest ring,
    mounts the first transition's ring as ``shard://remote://...``,
    writes a seeded workload, then walks each transition with the
    control plane's :func:`~repro.storage.control.reshard` — on the
    *live* mounted store, verification on.  Each row reports the cost
    axis (blocks moved vs total, wall-clock) and the safety axis (all
    payloads re-read and intact from the new ring).  Consistent hashing
    is the headline: a 3→4 transition should move ~1/4 of the blocks,
    nowhere near the ~100% a modulo placement would.
    """
    import time as _time

    from repro.storage import MemoryBlockStore, open_store, reshard, serve_store
    from repro.storage import spec as specs

    max_nodes = max(n for transition in transitions for n in transition)
    servers = [
        serve_store(MemoryBlockStore(blocks * 2, block_size), workers=2)
        for _ in range(max_nodes)
    ]
    results: dict = {
        "params": {"blocks": blocks, "block_size": block_size},
        "rows": [],
    }

    def ring_spec(n: int) -> specs.ShardSpec:
        return specs.shard(
            *(specs.remote("%s:%d" % s.address, workers=2)
              for s in servers[:n]),
            fanout=n,
        )

    def payload(block_no: int) -> bytes:
        seed = b"reshard-%d" % block_no
        return (seed * (block_size // len(seed) + 1))[:block_size]

    try:
        first = transitions[0][0]
        store = open_store(ring_spec(first), num_blocks=blocks * 2,
                           block_size=block_size)
        try:
            for start in range(0, blocks, batch):
                store.write_many([
                    (b, payload(b)) for b in range(start,
                                                   min(start + batch, blocks))
                ])
            for before, after in transitions:
                old_spec, new_spec = ring_spec(before), ring_spec(after)
                t0 = _time.perf_counter()
                report = reshard(store, old_spec, new_spec, verify=True)
                seconds = _time.perf_counter() - t0
                intact = True
                for start in range(0, blocks, batch):
                    window = list(range(start, min(start + batch, blocks)))
                    datas = store.read_many(window)
                    intact = intact and all(
                        data == payload(b) for b, data in zip(window, datas)
                    )
                results["rows"].append({
                    "before": before,
                    "after": after,
                    "total_blocks": report.total_blocks,
                    "moved_blocks": report.moved_blocks,
                    "moved_fraction": report.moved_fraction,
                    "seconds": seconds,
                    "verified": report.verified,
                    "intact": intact,
                })
        finally:
            store.close()
    finally:
        for server in servers:
            server.close()
    return results


def print_reshard_report(results: dict) -> None:
    """Blocks-moved vs total + wall-clock per ring transition."""
    params = results["params"]
    print(
        f"\nReshard ablation — {params['blocks']} blocks x "
        f"{params['block_size']}B on live remote:// rings "
        "(verification on)"
    )
    print(
        f"  {'ring':>9}{'total':>8}{'moved':>8}{'moved %':>9}"
        f"{'wall-clock':>12}{'intact':>8}"
    )
    for row in results["rows"]:
        print(
            f"  {row['before']:>4}->{row['after']:<4}"
            f"{row['total_blocks']:>7}{row['moved_blocks']:>8}"
            f"{row['moved_fraction'] * 100:>8.1f}%"
            f"{row['seconds'] * 1000:>10.1f}ms"
            f"{'yes' if row['intact'] else 'NO':>8}"
        )


#: Session mounts timed by the auth ablation's handshake row.
AUTH_MOUNTS = 8


def run_auth_ablation(
    blocks: int = 96,
    rounds: int = 12,
    block_size: int = 4096,
    mounts: int = AUTH_MOUNTS,
) -> dict:
    """Authenticated vs open served stores: what the credential gate
    costs, on real TCP sockets.

    Three mounts of the same memory-backed ``serve_store`` node are
    measured over identical ``write_many``/``read_many`` workloads:

    * **open** — no gate, the pre-auth behaviour (baseline);
    * **session (operator)** — KeyNote-gated server, whole-store
      operator session: every proc carries a token the server looks up
      and rank-checks;
    * **session (tenant)** — same gate plus a tenant table: the session
      is confined to a :class:`~repro.storage.tenant.TenantBlockStore`
      region with quota accounting on every write.

    The handshake row prices SESSION_OPEN itself (DSA challenge
    signature + compliance query, paid once per mount); the steady-state
    rows show the per-proc overhead, which is where the design earns its
    keep: authorization is a dict lookup + rank compare, not a per-call
    KeyNote query.
    """
    import time as _time

    from repro.crypto.dsa import generate_dsa_keypair
    from repro.crypto.keycodec import encode_public_key
    from repro.crypto.numbers import seeded_random_bits
    from repro.storage import MemoryBlockStore, serve_store
    from repro.storage.auth import (
        StoreAuthGate,
        TenantQuota,
        issue_store_credential,
    )
    from repro.storage.net import RemoteBlockStore

    operator = generate_dsa_keypair(
        rand=seeded_random_bits(b"auth-ablation-operator"))
    tenant_key = generate_dsa_keypair(
        rand=seeded_random_bits(b"auth-ablation-tenant"))
    policy = (
        'Authorizer: "POLICY"\n'
        f'Licensees: "{encode_public_key(operator)}"\n'
        'Conditions: (app_domain == "discfs-store") -> "admin";\n'
    )
    credential = issue_store_credential(
        operator, encode_public_key(tenant_key), "t0", rights="rw")

    payload = bytes(range(256)) * (block_size // 256)
    items = [(b, payload) for b in range(blocks)]
    block_nos = list(range(blocks))
    results: dict = {
        "params": {"blocks": blocks, "rounds": rounds,
                   "block_size": block_size, "mounts": mounts},
        "rows": {},
    }

    def measure(server, **auth) -> dict:
        host, port = server.address
        t0 = _time.perf_counter()
        for _i in range(mounts):
            RemoteBlockStore.connect(host, port, **auth).close()
        mount_seconds = _time.perf_counter() - t0
        store = RemoteBlockStore.connect(host, port, workers=2, **auth)
        try:
            t0 = _time.perf_counter()
            for _round in range(rounds):
                store.write_many(items)
            write_seconds = _time.perf_counter() - t0
            t0 = _time.perf_counter()
            for _round in range(rounds):
                datas = store.read_many(block_nos)
            read_seconds = _time.perf_counter() - t0
            assert all(d == payload for d in datas)
        finally:
            store.close()
        ops = blocks * rounds
        return {
            "mount_ms": mount_seconds * 1000 / mounts,
            "write_s": write_seconds,
            "read_s": read_seconds,
            "write_ops_s": ops / write_seconds if write_seconds else 0.0,
            "read_ops_s": ops / read_seconds if read_seconds else 0.0,
        }

    server = serve_store(MemoryBlockStore(blocks * 4, block_size),
                         workers=4)
    try:
        results["rows"]["open"] = measure(server)
    finally:
        server.close()

    server = serve_store(MemoryBlockStore(blocks * 4, block_size),
                         workers=4, gate=StoreAuthGate(policy))
    try:
        results["rows"]["session (operator)"] = measure(
            server, key=operator, rights="rw")
    finally:
        server.close()

    gate = StoreAuthGate(
        policy, tenants=[TenantQuota(name="t0", blocks=blocks * 2)])
    server = serve_store(MemoryBlockStore(blocks * 4, block_size),
                         workers=4, gate=gate)
    try:
        results["rows"]["session (tenant)"] = measure(
            server, key=tenant_key, credentials=[credential], tenant="t0")
    finally:
        server.close()
    return results


def print_auth_report(results: dict) -> None:
    """Open vs authenticated served-store comparison table."""
    params = results["params"]
    print(
        f"\nAuth ablation — {params['blocks']} blocks x "
        f"{params['rounds']} rounds per cell, {params['block_size']}B "
        f"blocks, handshake averaged over {params['mounts']} mounts"
    )
    print(
        f"  {'mount':<20}{'handshake ms':>13}{'write ops/s':>13}"
        f"{'read ops/s':>12}{'write cost':>12}{'read cost':>11}"
    )
    base = results["rows"].get("open")
    for label, row in results["rows"].items():
        write_cost = (base["write_s"] and
                      (row["write_s"] / base["write_s"] - 1) * 100
                      if base else 0.0)
        read_cost = (base["read_s"] and
                     (row["read_s"] / base["read_s"] - 1) * 100
                     if base else 0.0)
        print(
            f"  {label:<20}{row['mount_ms']:>13.1f}"
            f"{row['write_ops_s']:>13.0f}{row['read_ops_s']:>12.0f}"
            f"{write_cost:>11.1f}%{read_cost:>10.1f}%"
        )


def run_metered_ablation(
    blocks: int = 256,
    rounds: int = 40,
    block_size: int = 4096,
) -> dict:
    """Price the observability layer itself: ``mem://`` vs
    ``metered://mem://`` over identical vectored workloads.

    The metered wrapper's untraced fast path is a ``perf_counter`` pair
    plus one histogram bucket increment per call — the ablation verifies
    that stays in the noise (the acceptance bar is <10% on the fastest
    backend we have, where there is nothing to hide behind), and reads
    the p50/p99 latency the wrapper itself observed back out of the
    stats extras.
    """
    import time as _time

    from repro.obs.metrics import get_registry
    from repro.storage import open_store

    payload = bytes(range(256)) * (block_size // 256)
    items = [(b, payload) for b in range(blocks)]
    block_nos = list(range(blocks))
    results: dict = {
        "params": {"blocks": blocks, "rounds": rounds,
                   "block_size": block_size},
        "rows": {},
    }

    def measure(uri: str) -> dict:
        get_registry().reset()
        store = open_store(uri, num_blocks=blocks * 2,
                           block_size=block_size)
        try:
            store.write_many(items)  # warm-up, excluded from timing
            t0 = _time.perf_counter()
            for _round in range(rounds):
                store.write_many(items)
            write_seconds = _time.perf_counter() - t0
            t0 = _time.perf_counter()
            for _round in range(rounds):
                datas = store.read_many(block_nos)
            read_seconds = _time.perf_counter() - t0
            assert all(d == payload for d in datas)
            extra = dict(store.snapshot().extra)
        finally:
            store.close()
        ops = blocks * rounds
        row = {
            "write_s": write_seconds,
            "read_s": read_seconds,
            "write_ops_s": ops / write_seconds if write_seconds else 0.0,
            "read_ops_s": ops / read_seconds if read_seconds else 0.0,
        }
        for op in ("write_many", "read_many"):
            for quantile in ("p50", "p99"):
                key = f"lat:mem:{op}:{quantile}"
                if key in extra:
                    row[f"{op}_{quantile}_ms"] = extra[key]
        return row

    results["rows"]["mem://"] = measure("mem://")
    results["rows"]["metered://mem://"] = measure("metered://mem://")
    base = results["rows"]["mem://"]
    inst = results["rows"]["metered://mem://"]
    results["overhead"] = {
        "write_pct": (inst["write_s"] / base["write_s"] - 1) * 100
        if base["write_s"] else 0.0,
        "read_pct": (inst["read_s"] / base["read_s"] - 1) * 100
        if base["read_s"] else 0.0,
    }
    return results


def print_metered_report(results: dict) -> None:
    """Metered vs bare backend comparison table."""
    params = results["params"]
    print(
        f"\nMetered ablation — {params['blocks']} blocks x "
        f"{params['rounds']} rounds per cell, {params['block_size']}B "
        f"blocks, vectored ops"
    )
    print(
        f"  {'backend':<22}{'write ops/s':>13}{'read ops/s':>12}"
        f"{'w p50/p99 ms':>15}{'r p50/p99 ms':>15}"
    )
    for label, row in results["rows"].items():
        def lat(op: str, row: dict = row) -> str:
            p50 = row.get(f"{op}_p50_ms")
            p99 = row.get(f"{op}_p99_ms")
            if p50 is None:
                return "-"
            return f"{p50:.3f}/{p99:.3f}"

        print(
            f"  {label:<22}{row['write_ops_s']:>13.0f}"
            f"{row['read_ops_s']:>12.0f}{lat('write_many'):>15}"
            f"{lat('read_many'):>15}"
        )
    overhead = results["overhead"]
    print(
        f"  metering overhead: write {overhead['write_pct']:+.1f}%, "
        f"read {overhead['read_pct']:+.1f}%"
    )


def print_report(results: dict) -> None:
    systems = list(results["bonnie"])
    for phase in PHASES:
        print(f"\n{_FIGURES[phase]}")
        print(f"  {'Filesystem':<14} {'Throughput (K/sec)':>20}")
        for system in systems:
            kps = results["bonnie"][system].kps(phase)
            print(f"  {system:<14} {kps:>20.0f}")
    print("\nFigure 12: Filesystem Search")
    print(f"  {'Filesystem':<14} {'Time (sec)':>12} {'files':>7}")
    for system in systems:
        sr = results["search"][system]
        print(f"  {system:<14} {sr.seconds:>12.3f} {sr.files_scanned:>7}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--file-size", type=int, default=1 << 21,
                        help="Bonnie block-phase file size in bytes")
    parser.add_argument("--char-size", type=int, default=1 << 18,
                        help="Bonnie per-char phase size in bytes")
    parser.add_argument("--systems", nargs="*", default=list(PAPER_SYSTEMS))
    parser.add_argument("--cache", type=int, default=128,
                        help="DisCFS policy cache capacity")
    parser.add_argument("--backends", nargs="*", metavar="URI",
                        help="also run the storage-backend ablation over "
                             "these URIs (no URIs = the default sweep)")
    parser.add_argument("--replication", nargs="*", metavar="URI",
                        help="also run the replication/remote ablation "
                             "(no URIs = the default replica sweep)")
    parser.add_argument("--journal", action="store_true",
                        help="also run the journal (crash-recovery) "
                             "ablation: on/off x file/sqlite, fsync "
                             "counts, replay time")
    parser.add_argument("--fanout", action="store_true",
                        help="also run the concurrent fan-out ablation: "
                             "sequential vs concurrent shard/replica "
                             "I/O across 1/2/4/8 in-process TCP nodes")
    parser.add_argument("--reshard", action="store_true",
                        help="also run the reshard ablation: live ring "
                             "migrations across in-process TCP nodes "
                             "(blocks moved vs total, wall-clock)")
    parser.add_argument("--auth", action="store_true",
                        help="also run the auth ablation: open vs "
                             "credential-gated served stores (handshake "
                             "latency, per-proc session overhead)")
    parser.add_argument("--metered", action="store_true",
                        help="also run the metered ablation: mem:// vs "
                             "metered://mem:// (what the observability "
                             "layer itself costs, plus its p50/p99 "
                             "readback)")
    parser.add_argument("--emit-trajectory", metavar="DIR", default=None,
                        help="append one schema-versioned record per "
                             "ablation to DIR/BENCH_<topic>.json "
                             "(ops/s, p50/p99, fsyncs, git sha, date — "
                             "the nightly perf trajectory)")
    args = parser.parse_args()

    def emit_trajectory(topic: str, fields: dict) -> None:
        if args.emit_trajectory is None:
            return
        from repro.obs.trajectory import append_record

        path = append_record(topic, fields,
                             directory=args.emit_trajectory)
        print(f"trajectory: appended {topic!r} record to {path}")

    results = run_evaluation(
        systems=tuple(args.systems),
        file_size=args.file_size,
        char_size=args.char_size,
        cache_capacity=args.cache,
    )
    print_report(results)
    if args.backends is not None:
        backends = tuple(args.backends) if args.backends else DEFAULT_BACKENDS
        print_backend_report(run_backend_ablation(
            backends, file_size=args.file_size, char_size=args.char_size,
        ))
    if args.replication is not None:
        configs = tuple(args.replication) if args.replication \
            else DEFAULT_REPLICA_CONFIGS
        print_replication_report(run_replication_ablation(
            configs, file_size=args.file_size, char_size=args.char_size,
        ))
    if args.journal:
        journal_results = run_journal_ablation(
            file_size=args.file_size, char_size=args.char_size,
        )
        print_journal_report(journal_results)
        fields: dict = {
            "replay_ms": journal_results["replay"]["seconds"] * 1000.0,
            "replay_blocks": journal_results["replay"]["blocks"],
        }
        for label, dev in journal_results["device"].items():
            slug = label.replace(" ", "_")
            fields[f"{slug}:fsyncs"] = dev["fsyncs"]
            if dev["writes"]:
                fields[f"{slug}:write_amplification"] = (
                    dev["physical_writes"] / dev["writes"])
        emit_trajectory("journal", fields)
    if args.fanout:
        print_fanout_report(run_fanout_ablation())
    if args.reshard:
        print_reshard_report(run_reshard_ablation())
    if args.auth:
        auth_results = run_auth_ablation()
        print_auth_report(auth_results)
        fields = {}
        for label, row in auth_results["rows"].items():
            slug = label.replace(" ", "_").strip("()").replace("(", "") \
                .replace(")", "")
            fields[f"{slug}:write_ops_s"] = row["write_ops_s"]
            fields[f"{slug}:read_ops_s"] = row["read_ops_s"]
            fields[f"{slug}:mount_ms"] = row["mount_ms"]
        emit_trajectory("auth", fields)
    if args.metered:
        metered_results = run_metered_ablation()
        print_metered_report(metered_results)
        row = metered_results["rows"]["metered://mem://"]
        fields = {
            "write_ops_s": row["write_ops_s"],
            "read_ops_s": row["read_ops_s"],
            "write_overhead_pct": metered_results["overhead"]["write_pct"],
            "read_overhead_pct": metered_results["overhead"]["read_pct"],
        }
        for key in ("write_many_p50_ms", "write_many_p99_ms",
                    "read_many_p50_ms", "read_many_p99_ms"):
            if key in row:
                fields[key] = row[key]
        emit_trajectory("metered", fields)


if __name__ == "__main__":
    main()
