"""Paper-style result tables for the whole evaluation.

Running this module (``python -m repro.bench.report``) regenerates every
figure's data: Bonnie throughput rows for Figures 7-11 and the search
times for Figure 12, for FFS, CFS-NE and DisCFS (plus optional extras).
The output is the source for EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse

from repro.bench.bonnie import PHASES, run_bonnie
from repro.bench.harness import PAPER_SYSTEMS, make_target
from repro.bench.search import run_search
from repro.bench.workloads import SourceTreeSpec, generate_source_tree

_FIGURES = {
    "output_char": "Figure 7: Bonnie Sequential Output (Char)",
    "output_block": "Figure 8: Bonnie Sequential Output (Block)",
    "rewrite": "Figure 9: Bonnie Sequential Output (Rewrite)",
    "input_char": "Figure 10: Bonnie Sequential Input (Char)",
    "input_block": "Figure 11: Bonnie Sequential Input (Block)",
}


def run_evaluation(
    systems: tuple[str, ...] = PAPER_SYSTEMS,
    file_size: int = 1 << 21,
    char_size: int = 1 << 18,
    tree_spec: SourceTreeSpec | None = None,
    cache_capacity: int = 128,
) -> dict:
    """Run Bonnie + search on each system; returns a results dict."""
    results: dict = {"bonnie": {}, "search": {}}
    for system in systems:
        built = make_target(system, cache_capacity=cache_capacity)
        results["bonnie"][system] = run_bonnie(
            built.target, file_size=file_size, char_size=char_size
        )
        built = make_target(system, cache_capacity=cache_capacity)
        generate_source_tree(built.target, "/src", tree_spec)
        results["search"][system] = run_search(built.target, "/src")
    return results


#: The backend sweep the storage ablation reports by default.
DEFAULT_BACKENDS = (
    "mem://",
    "shard://2",
    "shard://4",
    "shard://8",
    "cached://mem://#capacity=256",
)


def run_backend_ablation(
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    system: str = "FFS",
    file_size: int = 1 << 20,
    char_size: int = 1 << 16,
) -> dict:
    """Bonnie phases for one system across storage backends.

    Same workload, same system, only the block layer changes — the
    counterpart of ``run_evaluation``'s system sweep, for the storage
    axis (``benchmarks/test_ablation_storage_backend.py``).
    """
    results: dict = {"system": system, "bonnie": {}, "device": {}}
    for uri in backends:
        built = make_target(system, backend=uri)
        results["bonnie"][uri] = run_bonnie(
            built.target, file_size=file_size, char_size=char_size
        )
        stats = built.device_stats
        # Logical traffic (what FFS issued) is workload-determined and so
        # identical across backends; the physical traffic that reached
        # the leaf stores is where cached:// and shard:// differ.
        store = getattr(built.fs.device, "store", None)
        leaves = store.leaf_stores() if store is not None else []
        results["device"][uri] = {
            "reads": stats.reads,
            "writes": stats.writes,
            "seeks": stats.seeks,
            "physical_reads": sum(leaf.stats.reads for leaf in leaves)
            if leaves else stats.reads,
            "physical_writes": sum(leaf.stats.writes for leaf in leaves)
            if leaves else stats.writes,
            "leaves": len(leaves) or 1,
        }
        built.fs.device.close()
    return results


def print_backend_report(results: dict) -> None:
    """Per-backend comparison table (throughput per Bonnie phase)."""
    backends = list(results["bonnie"])
    print(f"\nStorage backend ablation — system: {results['system']}")
    header = f"  {'Backend':<32}" + "".join(f"{p:>14}" for p in PHASES)
    print(header)
    print(f"  {'(throughput K/sec)':<32}")
    for uri in backends:
        row = results["bonnie"][uri]
        cells = "".join(f"{row.kps(p):>14.0f}" for p in PHASES)
        print(f"  {uri:<32}{cells}")
    print(
        f"\n  {'Backend':<32}{'log.reads':>10}{'log.writes':>11}"
        f"{'phys.reads':>11}{'phys.writes':>12}{'leaves':>8}"
    )
    for uri in backends:
        dev = results["device"][uri]
        print(
            f"  {uri:<32}{dev['reads']:>10}{dev['writes']:>11}"
            f"{dev['physical_reads']:>11}{dev['physical_writes']:>12}"
            f"{dev['leaves']:>8}"
        )


def print_report(results: dict) -> None:
    systems = list(results["bonnie"])
    for phase in PHASES:
        print(f"\n{_FIGURES[phase]}")
        print(f"  {'Filesystem':<14} {'Throughput (K/sec)':>20}")
        for system in systems:
            kps = results["bonnie"][system].kps(phase)
            print(f"  {system:<14} {kps:>20.0f}")
    print("\nFigure 12: Filesystem Search")
    print(f"  {'Filesystem':<14} {'Time (sec)':>12} {'files':>7}")
    for system in systems:
        sr = results["search"][system]
        print(f"  {system:<14} {sr.seconds:>12.3f} {sr.files_scanned:>7}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--file-size", type=int, default=1 << 21,
                        help="Bonnie block-phase file size in bytes")
    parser.add_argument("--char-size", type=int, default=1 << 18,
                        help="Bonnie per-char phase size in bytes")
    parser.add_argument("--systems", nargs="*", default=list(PAPER_SYSTEMS))
    parser.add_argument("--cache", type=int, default=128,
                        help="DisCFS policy cache capacity")
    parser.add_argument("--backends", nargs="*", metavar="URI",
                        help="also run the storage-backend ablation over "
                             "these URIs (no URIs = the default sweep)")
    args = parser.parse_args()
    results = run_evaluation(
        systems=tuple(args.systems),
        file_size=args.file_size,
        char_size=args.char_size,
        cache_capacity=args.cache,
    )
    print_report(results)
    if args.backends is not None:
        backends = tuple(args.backends) if args.backends else DEFAULT_BACKENDS
        print_backend_report(run_backend_ablation(
            backends, file_size=args.file_size, char_size=args.char_size,
        ))


if __name__ == "__main__":
    main()
