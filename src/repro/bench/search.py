"""The filesystem-search macro-benchmark (Figure 12).

Walks a source tree through the measured system's interface and, for every
``.c`` and ``.h`` file, reads the whole file and counts lines, words and
bytes (the behaviour of the paper's shell script running ``wc`` over the
OpenBSD kernel sources).  The metric is elapsed time in seconds — lower is
better, matching the figure's Time(sec) axis.

This workload is metadata-heavy (readdir + lookup per file) and therefore
exercises the DisCFS policy cache: with the paper's 128-entry cache, every
file's handful of operations hit the cache after the first check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.targets import FilesystemTarget

CHUNK = 8192


@dataclass
class SearchResult:
    system: str
    files_scanned: int
    lines: int
    words: int
    bytes: int
    seconds: float


def _count_stream(f, size_hint: int) -> tuple[int, int, int]:
    """wc-style line/word/byte counting over a buffered file."""
    lines = words = nbytes = 0
    in_word = False
    while True:
        chunk = f.read(CHUNK)
        if not chunk:
            break
        nbytes += len(chunk)
        lines += chunk.count(b"\n")
        for byte in chunk:
            is_space = byte in (0x20, 0x09, 0x0A, 0x0D, 0x0B, 0x0C)
            if in_word and is_space:
                in_word = False
            elif not in_word and not is_space:
                words += 1
                in_word = True
    return lines, words, nbytes


def run_search(target: FilesystemTarget, root: str = "/src") -> SearchResult:
    """Run the search over ``root``; returns counts and elapsed time."""
    start = time.perf_counter()
    files = lines = words = nbytes = 0

    stack = [root]
    while stack:
        directory = stack.pop()
        for name, is_dir in sorted(target.listdir(directory)):
            path = f"{directory}/{name}"
            if is_dir:
                stack.append(path)
                continue
            if not (name.endswith(".c") or name.endswith(".h")):
                continue
            f = target.open_file(path)
            file_lines, file_words, file_bytes = _count_stream(
                f, target.file_size(path)
            )
            files += 1
            lines += file_lines
            words += file_words
            nbytes += file_bytes

    return SearchResult(
        system=target.name,
        files_scanned=files,
        lines=lines,
        words=words,
        bytes=nbytes,
        seconds=time.perf_counter() - start,
    )
