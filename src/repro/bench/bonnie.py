"""A reimplementation of the Bonnie filesystem benchmark (Tim Bray, 1990).

The paper uses Bonnie on a 100 MB file to produce Figures 7-11.  The five
sequential phases, faithful to bonnie.c's access patterns:

1. **Sequential output, per-character** — putc() every byte through the
   stdio buffer (Figure 7),
2. **Sequential output, block** — write() full blocks (Figure 8),
3. **Sequential output, rewrite** — read a block, dirty one byte, seek
   back, rewrite it (Figure 9),
4. **Sequential input, per-character** — getc() every byte (Figure 10),
5. **Sequential input, block** — read() full blocks (Figure 11).

Bonnie reports each phase as throughput in K/sec.  File sizes are
parameters: pure-Python per-byte loops make the paper's 100 MB
impractical, but the phases' *relative* behaviour across systems — the
quantity the figures compare — is size-stable (verified by the
``--scale`` sweep in ``benchmarks/test_ablation_scaling.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bench.targets import FilesystemTarget

CHUNK = 8192  # Bonnie's I/O unit (matches NFSv2 max transfer size)


@dataclass
class PhaseResult:
    """One Bonnie phase: bytes moved and time taken."""

    name: str
    nbytes: int
    seconds: float

    @property
    def kps(self) -> float:
        """Throughput in Bonnie's unit (1024 bytes per second)."""
        return (self.nbytes / 1024.0) / self.seconds if self.seconds > 0 else float("inf")


@dataclass
class BonnieResult:
    """All five phases for one system."""

    system: str
    file_size: int
    phases: dict[str, PhaseResult] = field(default_factory=dict)

    def kps(self, phase: str) -> float:
        return self.phases[phase].kps


PHASES = ("output_char", "output_block", "rewrite", "input_char", "input_block")


def phase_output_char(target: FilesystemTarget, path: str, size: int) -> PhaseResult:
    """Figure 7: per-character sequential output."""
    f = target.create_file(path)
    start = time.perf_counter()
    for i in range(size):
        f.putc(i & 0x7F)
    f.flush()
    return PhaseResult("output_char", size, time.perf_counter() - start)


def phase_output_block(target: FilesystemTarget, path: str, size: int) -> PhaseResult:
    """Figure 8: block sequential output (rewrites the file in place)."""
    f = target.create_file(path)
    block = bytes(i & 0xFF for i in range(CHUNK))
    start = time.perf_counter()
    written = 0
    while written < size:
        n = min(CHUNK, size - written)
        f.write(block[:n])
        written += n
    f.flush()
    return PhaseResult("output_block", size, time.perf_counter() - start)


def phase_rewrite(target: FilesystemTarget, path: str, size: int) -> PhaseResult:
    """Figure 9: read each block, dirty it, seek back, write it again."""
    f = target.open_file(path)
    start = time.perf_counter()
    offset = 0
    while offset < size:
        f.seek(offset)
        block = f.read(min(CHUNK, size - offset))
        if not block:
            break
        dirtied = bytes((block[0] ^ 0xFF,)) + block[1:]
        f.seek(offset)
        f.write(dirtied)
        offset += len(block)
    f.flush()
    return PhaseResult("rewrite", size, time.perf_counter() - start)


def phase_input_char(target: FilesystemTarget, path: str, size: int) -> PhaseResult:
    """Figure 10: per-character sequential input."""
    f = target.open_file(path)
    start = time.perf_counter()
    count = 0
    while count < size:
        if f.getc() is None:
            break
        count += 1
    return PhaseResult("input_char", count, time.perf_counter() - start)


def phase_input_block(target: FilesystemTarget, path: str, size: int) -> PhaseResult:
    """Figure 11: block sequential input."""
    f = target.open_file(path)
    start = time.perf_counter()
    total = 0
    while total < size:
        data = f.read(min(CHUNK, size - total))
        if not data:
            break
        total += len(data)
    return PhaseResult("input_block", total, time.perf_counter() - start)


_PHASE_FUNCS = {
    "output_char": phase_output_char,
    "output_block": phase_output_block,
    "rewrite": phase_rewrite,
    "input_char": phase_input_char,
    "input_block": phase_input_block,
}


def run_phase(target: FilesystemTarget, phase: str, path: str, size: int) -> PhaseResult:
    """Run a single phase by name (benchmark entry point)."""
    return _PHASE_FUNCS[phase](target, path, size)


def run_bonnie(
    target: FilesystemTarget,
    file_size: int = 1 << 20,
    char_size: int | None = None,
    path: str = "/bonnie.dat",
) -> BonnieResult:
    """Run all five phases in Bonnie's order.

    ``char_size`` lets the expensive per-character phases run on a smaller
    file (Bonnie itself has no such knob; throughput is size-normalized so
    the comparison across systems is unaffected).
    """
    if char_size is None:
        char_size = file_size
    result = BonnieResult(system=target.name, file_size=file_size)

    result.phases["output_char"] = phase_output_char(target, path, char_size)
    result.phases["output_block"] = phase_output_block(target, path, file_size)
    result.phases["rewrite"] = phase_rewrite(target, path, file_size)
    result.phases["input_char"] = phase_input_char(target, path, char_size)
    result.phases["input_block"] = phase_input_block(target, path, file_size)

    target.remove_file(path)
    return result
