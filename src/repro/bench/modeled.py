"""Paper-scale modeled reporting.

Wall-clock numbers from the pure-Python stack compare the systems fairly
but bear no resemblance to the paper's 2001 testbed, whose Bonnie phases
were bounded by a ~15 MB/s disk and 100 Mbps Ethernet, not by protocol
CPU.  This module reconstructs testbed-scale figures by charging, for
each Bonnie phase:

* **disk time** from the block-device counters under the
  Quantum-Fireball model (:mod:`repro.bench.timing`),
* **network time** from the RPC byte/round-trip counters under the
  100 Mbps :class:`~repro.rpc.transport.LatencyModel` (zero for FFS),

and taking the phase time as ``max(disk, network)`` — the testbed's
bottleneck resource; Python CPU time is excluded since a 2001 C daemon's
CPU was not the binding constraint.  Absolute accuracy is not claimed;
the point is that the *modeled* numbers land in the paper's regime
(single-digit MB/s, FFS disk-bound, network systems wire-bound) with the
same ordering as the wall-clock comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.bonnie import PHASES, run_phase
from repro.bench.harness import PAPER_SYSTEMS, make_target
from repro.bench.timing import QUANTUM_FIREBALL_CT10, DiskModel
from repro.rpc.transport import LatencyModel


@dataclass
class ModeledPhase:
    phase: str
    nbytes: int
    disk_seconds: float
    network_seconds: float

    @property
    def seconds(self) -> float:
        """Bottleneck-resource time (disk and NIC overlap via readahead /
        write-behind on the testbed, so the slower one dominates)."""
        return max(self.disk_seconds, self.network_seconds, 1e-9)

    @property
    def kps(self) -> float:
        return (self.nbytes / 1024.0) / self.seconds


def run_modeled_bonnie(
    system: str,
    file_size: int = 1 << 22,
    disk_model: DiskModel = QUANTUM_FIREBALL_CT10,
) -> dict[str, ModeledPhase]:
    """Bonnie with virtual-time accounting on a named system.

    The per-char phases are modeled from the block phases' I/O pattern
    (identical once the stdio buffer aggregates them) — running millions
    of Python putc calls adds nothing to a virtual-time estimate.
    """
    network = LatencyModel()  # 100 Mbps Ethernet defaults
    built = make_target(system, network_model=network)
    device_stats = built.fs.device.stats

    results: dict[str, ModeledPhase] = {}
    for phase in ("output_block", "rewrite", "input_block"):
        device_stats.reset()
        network.reset()
        measured = run_phase(built.target, phase, "/modeled.dat", file_size)
        results[phase] = ModeledPhase(
            phase=phase,
            nbytes=measured.nbytes,
            disk_seconds=disk_model.time_for(device_stats),
            network_seconds=network.virtual_time,
        )
    # Char phases: same I/O volume and pattern as the block phases, plus
    # the (real, historical) stdio per-byte CPU cost which we approximate
    # with the paper-era ~0.1 us/byte -> dominated by disk/net anyway.
    results["output_char"] = ModeledPhase(
        "output_char", results["output_block"].nbytes,
        results["output_block"].disk_seconds,
        results["output_block"].network_seconds,
    )
    results["input_char"] = ModeledPhase(
        "input_char", results["input_block"].nbytes,
        results["input_block"].disk_seconds,
        results["input_block"].network_seconds,
    )
    return results


def print_modeled_report(file_size: int = 1 << 22) -> dict:
    """Print the paper-scale table for the three measured systems."""
    all_results = {
        system: run_modeled_bonnie(system, file_size)
        for system in PAPER_SYSTEMS
    }
    print(f"\nModeled (testbed-scale) Bonnie throughput, {file_size >> 20} MiB file")
    print("(Quantum Fireball CT10 disk model + 100 Mbps Ethernet model)")
    header = f"  {'phase':<14}" + "".join(f"{s:>12}" for s in PAPER_SYSTEMS)
    print(header + "   (K/sec)")
    for phase in PHASES:
        row = f"  {phase:<14}"
        for system in PAPER_SYSTEMS:
            row += f"{all_results[system][phase].kps:>12.0f}"
        print(row)
    return all_results


if __name__ == "__main__":  # pragma: no cover
    print_modeled_report()
