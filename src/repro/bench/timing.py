"""Cost models for virtual-time reporting.

Wall-clock measurements of a pure-Python stack compare the three systems
fairly against each other, but their absolute numbers are nothing like the
paper's 2001 testbed.  For paper-scale reporting, the harness can combine:

* measured wall time (CPU cost of the protocol/policy layers),
* a **disk model** charging seek + transfer time for the block I/O the
  workload actually performed (read off the device's counters), modeled
  after the testbed's Quantum Fireball CT10 (5400 rpm, ~9 ms seek,
  ~15 MB/s media rate),
* the RPC transport's :class:`~repro.rpc.transport.LatencyModel`
  (100 Mbps Ethernet) virtual time.

EXPERIMENTS.md reports both wall-clock and modeled numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.blockdev import BlockDeviceStats


@dataclass
class DiskModel:
    """Seek/rotate/transfer model of a single spindle."""

    average_seek_seconds: float = 0.0088
    rotational_latency_seconds: float = 0.0055  # half a rev at 5400 rpm
    media_rate_bytes_per_second: float = 15_000_000.0

    def time_for(self, stats: BlockDeviceStats) -> float:
        """Modeled disk time for the I/O recorded in ``stats``.

        Non-sequential accesses (the device counts them as ``seeks``) pay
        seek + rotational latency; every byte pays transfer time.
        """
        positioning = stats.seeks * (
            self.average_seek_seconds + self.rotational_latency_seconds
        )
        transfer = (stats.bytes_read + stats.bytes_written) / self.media_rate_bytes_per_second
        return positioning + transfer


#: The paper's server disk (Quantum Fireball CT10, 9.6 GB).
QUANTUM_FIREBALL_CT10 = DiskModel()


@dataclass
class MeasuredTime:
    """A measurement with its virtual-time components."""

    wall_seconds: float
    disk_seconds: float = 0.0
    network_seconds: float = 0.0

    @property
    def modeled_seconds(self) -> float:
        """Paper-scale estimate: protocol CPU + modeled disk + modeled net."""
        return self.wall_seconds + self.disk_seconds + self.network_seconds

    def throughput_kps(self, nbytes: int, modeled: bool = False) -> float:
        """Throughput in units of 1024 bytes/second (Bonnie's K/sec)."""
        seconds = self.modeled_seconds if modeled else self.wall_seconds
        return (nbytes / 1024.0) / seconds if seconds > 0 else float("inf")
