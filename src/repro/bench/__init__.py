"""Benchmark substrate reproducing the paper's evaluation (section 6).

The paper measures three systems — local **FFS**, **CFS-NE** (CFS with
encryption off, run remotely) and **DisCFS** — under the Bonnie
micro-benchmark (Figures 7-11) and a filesystem-search macro-benchmark
over the OpenBSD kernel sources (Figure 12).

* :mod:`repro.bench.targets` — a uniform filesystem interface over the
  three systems (plus encrypting CFS as an extra),
* :mod:`repro.bench.bonnie` — the five Bonnie phases,
* :mod:`repro.bench.workloads` — the synthetic kernel-source tree,
* :mod:`repro.bench.search` — the line/word/byte counting search,
* :mod:`repro.bench.timing` — a disk cost model for virtual-time
  reporting at paper scale,
* :mod:`repro.bench.harness` — builds each system and runs the suite,
* :mod:`repro.bench.report` — prints paper-style tables.
"""

from repro.bench.bonnie import BonnieResult, run_bonnie
from repro.bench.harness import SYSTEMS, make_target
from repro.bench.search import run_search
from repro.bench.workloads import SourceTreeSpec, generate_source_tree

__all__ = [
    "BonnieResult",
    "run_bonnie",
    "run_search",
    "SourceTreeSpec",
    "generate_source_tree",
    "SYSTEMS",
    "make_target",
]
