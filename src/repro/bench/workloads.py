"""Synthetic workload content: the "OpenBSD kernel source tree".

The paper's search benchmark "goes through every .c and .h file of the
OpenBSD kernel source code and counts the number of lines, words and
bytes" (section 6).  We cannot ship those sources, so this module
generates a deterministic synthetic tree with the same relevant shape:
nested directories of C source and header files (plus some non-matching
files the search must skip), with realistic line-structured content.

Everything is seeded, so every run (and every measured system) sees an
identical tree.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench.targets import FilesystemTarget

_C_SNIPPETS = (
    "#include <sys/param.h>",
    "#include <sys/systm.h>",
    "static int",
    "struct proc *p;",
    "int error = 0;",
    "if (error != 0)",
    "\treturn (error);",
    "splx(s);",
    "simple_lock(&map->lock);",
    "KASSERT(vp != NULL);",
    "/* XXX should be per-cpu */",
    "bzero(&sa, sizeof(sa));",
    "for (i = 0; i < n; i++) {",
    "}",
    "printf(\"%s: watchdog timeout\\n\", sc->sc_dev.dv_xname);",
)

#: Subdirectory names echoing sys/ in the OpenBSD tree.
_DIR_NAMES = (
    "kern", "uvm", "net", "netinet", "nfs", "ufs", "dev", "arch",
    "crypto", "ddb", "isofs", "miscfs", "altq", "lib", "scsi", "pci",
)


@dataclass(frozen=True)
class SourceTreeSpec:
    """Shape parameters for the synthetic tree.

    Defaults give ~160 source files across 16 directories, a few MB in
    total — a scaled-down kernel tree whose access pattern (many lookups,
    many small-to-medium sequential reads) matches the original workload.
    """

    directories: int = 16
    files_per_directory: int = 10
    min_file_bytes: int = 2_000
    max_file_bytes: int = 40_000
    other_files_per_directory: int = 2  # non-.c/.h files the search skips
    seed: int = 20010923  # arbitrary fixed seed

    @property
    def total_source_files(self) -> int:
        return self.directories * self.files_per_directory


def _make_file_content(rng: random.Random, nbytes: int) -> bytes:
    lines: list[str] = []
    size = 0
    while size < nbytes:
        line = rng.choice(_C_SNIPPETS)
        lines.append(line)
        size += len(line) + 1
    return ("\n".join(lines) + "\n").encode("ascii")


def generate_source_tree(
    target: FilesystemTarget, root: str = "/src", spec: SourceTreeSpec | None = None
) -> dict[str, int]:
    """Materialize the tree through ``target``; returns {path: size}.

    ``target`` only needs ``create_file``; directories are created through
    file paths on local targets and explicitly elsewhere, so the function
    works uniformly via a small capability check.
    """
    spec = spec if spec is not None else SourceTreeSpec()
    rng = random.Random(spec.seed)
    manifest: dict[str, int] = {}

    for d in range(spec.directories):
        dirname = f"{_DIR_NAMES[d % len(_DIR_NAMES)]}{d // len(_DIR_NAMES) or ''}"
        dirpath = f"{root}/{dirname}"
        _ensure_directory(target, dirpath)
        for i in range(spec.files_per_directory):
            ext = ".c" if rng.random() < 0.7 else ".h"
            path = f"{dirpath}/file{i}{ext}"
            nbytes = rng.randint(spec.min_file_bytes, spec.max_file_bytes)
            content = _make_file_content(rng, nbytes)
            f = target.create_file(path)
            f.write(content)
            f.flush()
            manifest[path] = len(content)
        for i in range(spec.other_files_per_directory):
            path = f"{dirpath}/README{i}"
            f = target.create_file(path)
            f.write(b"not a source file\n")
            f.flush()
    return manifest


def _ensure_directory(target: FilesystemTarget, path: str) -> None:
    """Create a directory through whatever interface the target offers."""
    if hasattr(target, "fs"):  # LocalFFSTarget
        target.fs.makedirs(path)
        return
    client = target.client  # NFSTarget
    fh = client.root
    for part in (p for p in path.split("/") if p):
        try:
            fh, _ = client.lookup(fh, part)
        except Exception:
            fh, _attr, _cred = client.mkdir(fh, part)
