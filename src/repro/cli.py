"""The ``discfs`` command-line tool.

Wraps the library in the workflows the paper describes operationally:
key management, credential issuance/delegation/inspection (the
"send it via email" artifacts), running a server, and client file
operations over the secure channel.

Commands
--------
==================  ====================================================
``keygen``          generate a DSA (or RSA) keypair into a key file
``identity``        print a key file's public principal identifier
``issue``           issue a credential (issuer key -> licensee id)
``delegate``        re-grant an existing credential to another key
``inspect``         pretty-print a credential's fields
``verify``          check a credential's signature
``serve``           run a DisCFS server on a TCP port, optionally
                    importing a host directory into its filesystem;
                    ``--backend URI`` picks the storage backend
``store-serve``     export a storage backend over RPC on a TCP port —
                    the node other servers reach as ``remote://``;
                    ``--policy FILE`` gates every call behind a KeyNote
                    session, ``--tenant-quota`` carves tenant regions,
                    ``--metrics-port`` serves Prometheus/JSON metrics,
                    ``--trace-log`` appends spans for ``store-trace``
``store-issue``     issue a storage-plane credential (tenant + rights)
``store-inspect``   mount a backend URI and print its live topology:
                    per-layer capabilities and stats (``--json`` for
                    machines, ``--parse`` to validate without mounting)
``store-trace``     reconstruct cross-node span trees from the JSON-line
                    files ``store-serve --trace-log`` (and traced
                    clients) append, flagging slow operations
``reshard``         migrate a mounted ``shard://`` ring to a new layout,
                    moving only the blocks whose ring owner changed
``backends``        list the registered storage-backend URI schemes
``journal-inspect`` dump and verify a ``journal://`` write-ahead log
``ls/cat/put/rm``   client operations against a running server
``stat``            print a remote file's handle and granted rights
``submit``          submit credential files to a server
``revoke``          administrator revocation (key or credential)
``audit``           dump the server's audit log (administrator only)
==================  ====================================================

Every client command takes ``--server HOST:PORT --key KEYFILE`` and
optionally ``--credential FILE`` (repeatable).  See
``tests/unit/test_cli.py`` for end-to-end invocations.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.admin import Administrator
from repro.core.client import DisCFSClient
from repro.core.credentials import CredentialIssuer, extract_grant
from repro.core.server import DisCFSServer
from repro.crypto.dsa import generate_dsa_keypair
from repro.crypto.keycodec import decode_key, encode_private_key, encode_public_key
from repro.crypto.numbers import seeded_random_bits
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import ReproError
from repro.ipsec.channel import SecureTransport
from repro.ipsec.ike import IKEInitiator
from repro.keynote.parser import parse_assertion
from repro.keynote.signing import verify_assertion
from repro.rpc.transport import TCPTransport, serve_tcp


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def _write(path: str, text: str, secret: bool = False) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    if secret:
        os.chmod(path, 0o600)


def _load_keypair(path: str):
    key = decode_key(_read(path).strip())
    if not hasattr(key, "sign"):
        raise ReproError(f"{path} holds a public key; a private key is needed")
    return key


# ---------------------------------------------------------------------------
# Key management
# ---------------------------------------------------------------------------


def cmd_keygen(args) -> int:
    rand = seeded_random_bits(args.seed.encode()) if args.seed else None
    if args.algorithm == "dsa":
        key = generate_dsa_keypair(rand=rand) if rand else generate_dsa_keypair()
    else:
        key = (generate_rsa_keypair(args.bits, rand=rand) if rand
               else generate_rsa_keypair(args.bits))
    _write(args.out, encode_private_key(key) + "\n", secret=True)
    print(f"wrote {args.algorithm.upper()} private key to {args.out}")
    print(f"identity: {encode_public_key(key)[:48]}...")
    return 0


def cmd_identity(args) -> int:
    key = decode_key(_read(args.key).strip())
    public = getattr(key, "public", key)
    print(encode_public_key(public))
    return 0


# ---------------------------------------------------------------------------
# Credentials
# ---------------------------------------------------------------------------


def cmd_issue(args) -> int:
    issuer = CredentialIssuer(_load_keypair(args.key))
    licensee = _read(args.licensee).strip() if os.path.exists(args.licensee) \
        else args.licensee
    text = issuer.grant(
        licensee, handle=args.handle, rights=args.rights,
        comment=args.comment, subtree=args.subtree,
        expires_at=args.expires_at, hours=_parse_hours(args.hours),
    )
    _emit_credential(text, args.out)
    return 0


def cmd_delegate(args) -> int:
    issuer = CredentialIssuer(_load_keypair(args.key))
    licensee = _read(args.licensee).strip() if os.path.exists(args.licensee) \
        else args.licensee
    text = issuer.delegate(
        _read(args.credential), licensee, rights=args.rights,
        comment=args.comment, expires_at=args.expires_at,
    )
    _emit_credential(text, args.out)
    return 0


def _parse_hours(spec: str | None):
    if not spec:
        return None
    start, _, end = spec.partition("-")
    return (int(start), int(end))


def _emit_credential(text: str, out: str | None) -> None:
    if out:
        _write(out, text)
        print(f"credential written to {out}")
    else:
        sys.stdout.write(text)


def cmd_inspect(args) -> int:
    assertion = parse_assertion(_read(args.credential))
    print(f"authorizer : {assertion.authorizer[:64]}...")
    for principal in sorted(assertion.licensee_principals()):
        print(f"licensee   : {principal[:64]}...")
    try:
        handle, rights, subtree = extract_grant(assertion)
        print(f"handle     : {handle}{'  (subtree)' if subtree else ''}")
        print(f"rights     : {rights.value} (octal {rights.octal})")
    except ReproError:
        print("handle     : (no HANDLE condition — not a file credential)")
    if assertion.comment:
        print(f"comment    : {assertion.comment}")
    print(f"signed     : {'yes' if assertion.is_signed else 'no'}")
    return 0


def cmd_verify(args) -> int:
    assertion = parse_assertion(_read(args.credential))
    try:
        verify_assertion(assertion)
    except ReproError as exc:
        print(f"INVALID: {exc}")
        return 1
    print("signature OK")
    return 0


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------


def _import_host_tree(server: DisCFSServer, host_dir: str) -> int:
    """Copy a host directory tree into the server's filesystem."""
    imported = 0
    host_dir = os.path.abspath(host_dir)
    for dirpath, _dirnames, filenames in os.walk(host_dir):
        rel = os.path.relpath(dirpath, host_dir)
        base = "" if rel == "." else "/" + rel.replace(os.sep, "/")
        if base:
            server.fs.makedirs(base)
        for filename in filenames:
            with open(os.path.join(dirpath, filename), "rb") as f:
                server.fs.write_file(f"{base}/{filename}", f.read())
            imported += 1
    return imported


def cmd_serve(args) -> int:
    from repro.fs import persist
    from repro.fs.ffs import FFS
    from repro.storage import open_device

    admin_identity = _read(args.admin_identity).strip() \
        if os.path.exists(args.admin_identity) else args.admin_identity
    # Restore a previous checkpoint when the backend holds one (what makes
    # `--backend file:///var/lib/discfs.img` survive restarts); otherwise
    # build a fresh filesystem on the backend.
    device = open_device(args.backend)
    try:
        fs = persist.load(device)
        print(f"restored filesystem checkpoint from {args.backend}")
    except ReproError:
        fs = FFS(device)
    server = DisCFSServer(admin_identity=admin_identity,
                          cache_capacity=args.cache,
                          fs=fs)
    if args.trust_key:
        # Convenience for single-host demos: holding the admin's private
        # key lets the CLI install the server-issuer delegation directly.
        Administrator(_load_keypair(args.trust_key)).trust_server(server)
    if args.import_dir:
        n = _import_host_tree(server, args.import_dir)
        print(f"imported {n} files from {args.import_dir}")
    tcp = serve_tcp(server.secure_channel().handle,
                    host=args.host, port=args.port)
    host, port = tcp.address

    def checkpoint() -> None:
        persist.sync(server.fs)
        server.fs.device.flush()

    stop = None
    if not args.oneshot:
        # Checkpoint on SIGTERM (process managers, `docker stop`) as well
        # as Ctrl-C, so durable backends keep their state however the
        # server is shut down.  Installed before announcing readiness: a
        # manager that stops us immediately must still get a checkpoint.
        import signal
        import threading

        stop = threading.Event()
        try:
            signal.signal(signal.SIGTERM, lambda _signum, _frame: stop.set())
        except ValueError:  # pragma: no cover - serve() off the main thread
            pass

    print(f"DisCFS serving on {host}:{port} "
          f"(issuer identity {server.issuer_identity[:40]}..., "
          f"backend {args.backend})")
    if args.oneshot:  # used by the tests: exit instead of blocking
        checkpoint()
        tcp.close()
        return 0
    try:
        stop.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    checkpoint()
    tcp.close()
    return 0


#: ``store-serve`` bind addresses that never leave the machine — anything
#: else is reachable by peers and demands --policy (or an explicit
#: --insecure acknowledgement).
_LOOPBACK_HOSTS = ("127.0.0.1", "localhost", "::1")


def cmd_store_serve(args) -> int:
    """Serve one storage backend over RPC (the ``remote://`` server side)."""
    from repro.fs.blockdev import DEFAULT_BLOCK_SIZE
    from repro.storage import DEFAULT_NUM_BLOCKS, open_store
    from repro.storage.auth import AuditLog, StoreAuthGate, TenantQuota
    from repro.storage.net import serve_store

    if (args.host not in _LOOPBACK_HOSTS and not args.policy
            and not args.insecure):
        print(
            f"store-serve: refusing to bind {args.host} without --policy.\n"
            f"An open block store on a non-loopback address gives every "
            f"peer that can\nreach the port full read/write on the backend. "
            f"Either gate it:\n"
            f"    discfs store-serve --host {args.host} --policy "
            f"POLICY_FILE ...\n"
            f"or accept the exposure explicitly with --insecure.",
            file=sys.stderr,
        )
        return 2

    gate = None
    if args.policy:
        audit = AuditLog(path=args.audit_log) if args.audit_log else None
        gate = StoreAuthGate(
            _read(args.policy),
            tenants=[TenantQuota.parse(q) for q in args.tenant_quota or []],
            audit=audit,
        )
    elif args.tenant_quota:
        raise ReproError("--tenant-quota needs --policy: tenants only exist "
                         "inside an authenticated session")
    elif args.audit_log:
        raise ReproError("--audit-log needs --policy: an open server makes "
                         "no auth decisions to log")

    if args.trace_log:
        from repro.obs import configure_tracing

        configure_tracing(log_path=args.trace_log)

    store = open_store(
        args.backend,
        num_blocks=args.blocks if args.blocks else DEFAULT_NUM_BLOCKS,
        block_size=args.bs if args.bs else DEFAULT_BLOCK_SIZE,
    )
    server = serve_store(store, host=args.host, port=args.port,
                         workers=args.workers, gate=gate)
    host, port = server.address

    metrics_server = None
    if args.metrics_port is not None:
        from repro.obs.exposition import serve_metrics

        metrics_server = serve_metrics(host=args.host,
                                       port=args.metrics_port)

    stop = None
    if not args.oneshot:
        import signal
        import threading

        stop = threading.Event()
        try:
            signal.signal(signal.SIGTERM, lambda _signum, _frame: stop.set())
        except ValueError:  # pragma: no cover - off the main thread
            pass

    # The announce line is machine-readable: the integration tests (and a
    # two-terminal walkthrough) parse host:port out of it.
    auth = (f"keynote, {len(gate.tenants)} tenant(s)" if gate is not None
            else "open")
    print(f"block store serving on {host}:{port} "
          f"(backend {args.backend}, "
          f"{store.num_blocks}x{store.block_size}B, auth {auth})", flush=True)
    if metrics_server is not None:
        # A second machine-readable line, deliberately separate so the
        # announce-line parsers above keep working unchanged.
        mhost, mport = metrics_server.address
        print(f"metrics serving on {mhost}:{mport} "
              f"(/metrics /metrics.json /trace.json)", flush=True)
    if args.oneshot:  # used by the tests: exit instead of blocking
        if metrics_server is not None:
            metrics_server.close()
        server.close()
        store.close()
        return 0
    try:
        stop.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    if metrics_server is not None:
        metrics_server.close()
    server.close()
    store.close()
    return 0


def cmd_store_issue(args) -> int:
    """Issue a KeyNote credential for the *storage* plane: the artifact a
    client presents at SESSION_OPEN (``remote://...#cred=FILE``)."""
    from repro.storage.auth import issue_store_credential

    issuer = _load_keypair(args.key)
    licensee = _read(args.licensee).strip() if os.path.exists(args.licensee) \
        else args.licensee
    text = issue_store_credential(
        issuer, licensee, args.tenant, rights=args.rights,
        expires_at=args.expires_at, comment=args.comment,
    )
    _emit_credential(text, args.out)
    return 0


def cmd_store_inspect(args) -> int:
    """Mount a backend and print the live topology (the control plane's
    ``describe`` tree: per-layer capabilities + stats snapshots)."""
    import json as _json

    from repro.storage import (
        describe,
        latency_usage,
        open_store,
        parse_spec,
        render_latency_table,
        render_tenant_table,
        tenant_usage,
    )

    spec = parse_spec(args.backend)
    if args.parse:
        print(f"spec ok: {spec.to_uri()}")
        return 0
    store = open_store(spec)
    try:
        if args.exercise:
            # Two reads of block 0 so counters (and a cache hit) show up
            # in demos.  Reads only: inspection must NEVER mutate the
            # backend — block 0 of a real image is the superblock.
            store.read(0)
            store.read(0)
        tree = describe(store)
        if args.json:
            print(_json.dumps(tree.to_dict(), indent=2))
        else:
            print(f"backend: {spec.to_uri()}")
            print(tree.render())
            # A gated server folds its auth verdicts and every tenant
            # view's counters into the STATS extras; local tenant://
            # mounts publish the same flat keys.  Regroup them into the
            # per-tenant usage table.
            tenants: dict[str, dict[str, float]] = {}
            latencies: dict[tuple[str, str], dict[str, float]] = {}
            auth_denied = 0.0
            for node in tree.walk():
                for snap in (node.stats, node.remote):
                    if snap is None:
                        continue
                    auth_denied += snap.extra.get("auth_denied", 0.0)
                    for name, fields in tenant_usage(snap.extra).items():
                        tenants.setdefault(name, {}).update(fields)
                    for key, fields in latency_usage(snap.extra).items():
                        latencies.setdefault(key, {}).update(fields)
            if tenants:
                print()
                print(render_tenant_table(tenants))
            if latencies:
                print()
                print(render_latency_table(latencies))
            if auth_denied:
                print(f"auth: {int(auth_denied)} request(s) denied")
    finally:
        store.close()
    return 0


def cmd_store_trace(args) -> int:
    """Join span logs (``store-serve --trace-log`` / client JSONL files)
    into per-trace trees: client call → per-node server spans, with the
    queue-wait vs. service-time split and slow ops flagged."""
    import json as _json
    from collections import defaultdict

    from repro.storage.metered import DEFAULT_SLOW_MS

    slow_ms = args.slow_ms if args.slow_ms is not None else DEFAULT_SLOW_MS
    spans: list[dict] = []
    for path in args.files:
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = _json.loads(line)
                except ValueError:
                    print(f"{path}:{lineno}: skipping unparsable line",
                          file=sys.stderr)
                    continue
                if isinstance(record, dict) and record.get("trace_id") \
                        and record.get("span_id"):
                    spans.append(record)

    traces: dict[str, list[dict]] = defaultdict(list)
    for span in spans:
        traces[span["trace_id"]].append(span)
    selected = sorted(
        (tid for tid in traces
         if not args.trace or tid.startswith(args.trace)),
        key=lambda tid: min(s.get("start", 0.0) for s in traces[tid]),
    )
    if not selected:
        print("no matching traces", file=sys.stderr)
        return 1

    def tree(members: list[dict]):
        """(roots, children) with orphans — spans whose parent was never
        recorded, e.g. the caller's root context — promoted to roots."""
        by_id = {s["span_id"]: s for s in members}
        children: dict[str, list[dict]] = defaultdict(list)
        roots = []
        for span in sorted(members, key=lambda s: s.get("start", 0.0)):
            parent = span.get("parent_id", "")
            if parent and parent in by_id:
                children[parent].append(span)
            else:
                roots.append(span)
        return roots, children

    if args.json:
        def nest(span, children):
            out = dict(span)
            out["children"] = [nest(c, children)
                               for c in children[span["span_id"]]]
            return out

        payload = []
        for tid in selected:
            roots, children = tree(traces[tid])
            payload.append({"trace_id": tid,
                            "spans": [nest(r, children) for r in roots]})
        print(_json.dumps(payload, indent=2))
        return 0

    def render(span, children, depth):
        queue = span.get("queue_ms", 0.0)
        queue_part = f" (queue {queue:.3f}ms)" if queue else ""
        status = span.get("status", "ok")
        status_part = f" [{status.upper()}]" if status != "ok" else ""
        slow_part = " <-- SLOW" \
            if span.get("duration_ms", 0.0) >= slow_ms else ""
        print(f"{'  ' * depth}{span.get('kind', '?'):6s} "
              f"{span.get('name', '?')} @ {span.get('node', '?')}  "
              f"{span.get('duration_ms', 0.0):.3f}ms"
              f"{queue_part}{status_part}{slow_part}")
        for child in children[span["span_id"]]:
            render(child, children, depth + 1)

    for tid in selected:
        members = traces[tid]
        starts = [s.get("start", 0.0) for s in members]
        ends = [s.get("start", 0.0) + s.get("duration_ms", 0.0) / 1000.0
                for s in members]
        nodes = {s.get("node", "?") for s in members}
        print(f"trace {tid}  ({len(members)} span(s), {len(nodes)} "
              f"node(s), {(max(ends) - min(starts)) * 1000.0:.3f}ms)")
        roots, children = tree(members)
        for root in roots:
            render(root, children, 1)
        print()
    return 0


def cmd_reshard(args) -> int:
    """Migrate a shard:// ring to a new layout (the control plane's
    flagship: only blocks whose consistent-hash owner changed move)."""
    from repro.storage import open_store, parse_spec, reshard

    old_spec = parse_spec(args.old)
    new_spec = parse_spec(args.new)
    store = open_store(old_spec)
    try:
        report = reshard(store, old_spec, new_spec,
                         verify=not args.no_verify)
        store.flush()
    finally:
        store.close()
    pct = report.moved_fraction * 100.0
    print(f"resharded {args.old}")
    print(f"       -> {args.new}")
    print(f"moved      : {report.moved_blocks}/{report.total_blocks} "
          f"blocks ({pct:.1f}%)")
    print(f"children   : {report.reused_children} reused, "
          f"{report.added_children} added, "
          f"{report.removed_children} removed")
    print(f"verified   : {'yes' if report.verified else 'skipped'}")
    print(f"wall-clock : {report.seconds * 1000:.1f} ms")
    return 0


def cmd_backends(args) -> int:
    """List storage schemes and a usage example for each."""
    from repro.storage import registered_schemes

    examples = {
        "mem": "mem://  (options: ?blocks=N&bs=N)",
        "file": "file:///var/lib/discfs.img",
        "sqlite": "sqlite:///var/lib/discfs.db",
        "shard": "shard://4  |  shard://4?base=sqlite&dir=/data  |  "
                 "shard://mem://;mem://#fanout=2",
        "cached": "cached://sqlite:///var/lib/discfs.db#capacity=512",
        "remote": "remote://127.0.0.1:9001  (serve with: discfs store-serve; "
                  "options: ?timeout=S&batch=on|off&workers=N; against a "
                  "--policy server add #cred=FILE&key=FILE&tenant=NAME"
                  "&rights=r|rw|admin)",
        "tenant": "tenant://mem://#name=alice&offset=0&blocks=64&quota=32  "
                  "(private region with block/byte quotas + op rate limit; "
                  "store-serve --tenant-quota builds these server-side)",
        "replica": "replica://3?w=2&r=2  |  replica://3/file:///d/r-{i}.img#w=2"
                   "  |  replica://remote://h1:9001;remote://h2:9002#w=1&r=1"
                   "  (also #hedge_ms=N tail-capped reads, #stamps=P "
                   "restart-safe repair stamps)",
        "failing": "failing://mem://#fail=1  (fault injection for drills)",
        "journal": "journal://file:///var/lib/discfs.img  (crash recovery: "
                   "fsynced intent log, replay on reopen; #cap=N&path=P)",
        "lazy": "lazy://remote://127.0.0.1:9001#retry=1  (open/retry on "
                "use; replica:// applies it to nodes down at mount)",
        "slow": "slow://mem://#ms=5  (injectable straggler for "
                "concurrency drills)",
        "metered": "metered://sqlite:///var/lib/discfs.db#slow_ms=50&ring="
                   "4096  (per-op latency histograms in stats extras + "
                   "trace spans; see store-serve --metrics-port and "
                   "store-trace)",
    }
    for scheme in registered_schemes():
        print(f"{scheme:<8} {examples.get(scheme, f'{scheme}://')}")
    return 0


def cmd_journal_inspect(args) -> int:
    """Dump and verify a write-ahead journal file."""
    from repro.storage import inspect_journal

    info = inspect_journal(args.journal)
    print(f"journal    : {info.path}")
    print(f"block size : {info.block_size}")
    print(f"log size   : {info.size} bytes")
    if args.records:
        for record in info.records:
            detail = (f"{record.blocks:>5} blocks" if record.blocks
                      else " " * 11)
            print(f"  @{record.offset:<10} seq={record.seq:<8} "
                  f"{record.kind_name:<7} {detail}  crc ok")
    blocks = f" ({info.committed_blocks} blocks)" if info.committed else ""
    print(f"committed  : {info.committed} transaction(s){blocks}")
    uncommitted = (", ".join(f"seq={s}" for s in info.uncommitted)
                   if info.uncommitted else "none")
    print(f"uncommitted: {uncommitted}")
    if info.torn_offset is None:
        print("torn tail  : none (log is clean)")
    else:
        print(f"torn tail  : {info.size - info.torn_offset} byte(s) "
              f"discarded from offset {info.torn_offset} on replay")
    return 0


# ---------------------------------------------------------------------------
# Client operations
# ---------------------------------------------------------------------------


def _connect(args) -> DisCFSClient:
    host, _, port = args.server.partition(":")
    raw = TCPTransport(host, int(port))
    key = _load_keypair(args.key)
    client = DisCFSClient(SecureTransport(raw, IKEInitiator(key)), key)
    client.attach(args.attach)
    for path in args.credential or ():
        client.submit_credential(_read(path))
    return client


def cmd_ls(args) -> int:
    client = _connect(args)
    try:
        fh, _ = client.walk(args.path)
        for _ino, name in client.readdir(fh):
            if name not in (".", ".."):
                print(name)
    finally:
        client.close()
    return 0


def cmd_cat(args) -> int:
    client = _connect(args)
    try:
        sys.stdout.buffer.write(client.read_path(args.path))
    finally:
        client.close()
    return 0


def cmd_put(args) -> int:
    client = _connect(args)
    try:
        with open(args.local, "rb") as f:
            data = f.read()
        client.write_path(args.path, data)
        print(f"wrote {len(data)} bytes to {args.path}")
        if client.wallet and args.save_credential:
            _write(args.save_credential, client.wallet[-1])
            print(f"creator credential saved to {args.save_credential}")
    finally:
        client.close()
    return 0


def cmd_rm(args) -> int:
    client = _connect(args)
    try:
        directory, _, name = args.path.strip("/").rpartition("/")
        dir_fh, _ = client.walk(directory) if directory else (client.root, None)
        client.remove(dir_fh, name)
        print(f"removed {args.path}")
    finally:
        client.close()
    return 0


def cmd_stat(args) -> int:
    """Print a remote file's handle (what credentials bind rights to)."""
    from repro.core.handles import HandleScheme

    client = _connect(args)
    try:
        fh, attr = client.walk(args.path)
        print(f"handle     : {HandleScheme.INODE_GENERATION.render(fh)}")
        print(f"handle(ino): {HandleScheme.INODE.render(fh)}")
        print(f"type       : {'dir' if attr.is_dir else 'file'}")
        print(f"size       : {attr.size}")
        print(f"mode       : {attr.permission_bits:03o} (your granted rights)")
    finally:
        client.close()
    return 0


def cmd_submit(args) -> int:
    client = _connect(args)
    try:
        for path in args.files:
            message = client.submit_credential(_read(path))
            print(f"{path}: {message}")
    finally:
        client.close()
    return 0


def cmd_audit(args) -> int:
    client = _connect(args)
    try:
        for line in client.nfs.audit_log(limit=args.limit):
            print(line)
    finally:
        client.close()
    return 0


def cmd_revoke(args) -> int:
    client = _connect(args)
    try:
        if args.kind == "key":
            value = _read(args.value).strip() if os.path.exists(args.value) \
                else args.value
        else:
            value = parse_assertion(_read(args.value)).signature
        print(client.nfs.revoke(f"{args.kind} {value}"))
    finally:
        client.close()
    return 0


def cmd_lint(args) -> int:
    import json
    from pathlib import Path

    from repro.analysis import Baseline, all_checkers, run_lint

    if args.list_rules:
        for name, factory in sorted(all_checkers().items()):
            print(f"{name:20s} {factory.description}")
        return 0

    root = Path.cwd()
    paths = [Path(p) for p in (args.paths or ["src/repro"])]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {missing[0]}", file=sys.stderr)
        return 2

    if getattr(args, "diff", None):
        import subprocess
        try:
            proc = subprocess.run(
                ["git", "diff", "--name-only", "--diff-filter=d",
                 args.diff, "--", "*.py"],
                cwd=root, capture_output=True, text=True, check=True,
            )
        except FileNotFoundError:
            print("error: --diff requires git on PATH", file=sys.stderr)
            return 2
        except subprocess.CalledProcessError as exc:
            detail = (exc.stderr or "").strip() or f"exit {exc.returncode}"
            print(f"error: git diff {args.diff} failed: {detail}",
                  file=sys.stderr)
            return 2
        scope = [p.resolve() for p in paths]
        changed: list[Path] = []
        for rel in proc.stdout.splitlines():
            candidate = (root / rel).resolve()
            if not candidate.is_file():
                continue
            if any(candidate == s or s in candidate.parents
                   for s in scope):
                changed.append(root / rel)
        if not changed:
            print(f"discfs-lint: no changed python files vs {args.diff}")
            return 0
        paths = changed

    baseline = None
    if args.baseline and Path(args.baseline).is_file():
        baseline = Baseline.load(Path(args.baseline))

    try:
        result = run_lint(paths, root, rules=args.rule, baseline=baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(result.findings).save(Path(args.write_baseline))
        print(f"wrote {len(result.findings)} finding(s) to "
              f"{args.write_baseline}; annotate each with a justification")
        return 0

    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return result.exit_code

    for finding in result.findings:
        print(finding.render())
    errors = sum(1 for f in result.findings if f.severity == "error")
    print(
        f"discfs-lint: {result.files_checked} file(s), "
        f"{errors} error(s), {len(result.findings) - errors} warning(s), "
        f"{result.suppressed} suppressed, "
        f"{result.grandfathered} grandfathered"
    )
    return result.exit_code


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------


def _add_client_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--server", required=True, metavar="HOST:PORT")
    parser.add_argument("--key", required=True, help="private key file")
    parser.add_argument("--attach", default="/", help="remote path to mount")
    parser.add_argument("--credential", action="append", metavar="FILE",
                        help="credential file to submit (repeatable)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="discfs", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("keygen", help="generate a keypair")
    p.add_argument("--out", required=True)
    p.add_argument("--algorithm", choices=("dsa", "rsa"), default="dsa")
    p.add_argument("--bits", type=int, default=1024, help="RSA modulus bits")
    p.add_argument("--seed", help="deterministic seed (tests/demos only)")
    p.set_defaults(func=cmd_keygen)

    p = sub.add_parser("identity", help="print a key file's principal")
    p.add_argument("--key", required=True)
    p.set_defaults(func=cmd_identity)

    p = sub.add_parser("issue", help="issue a credential")
    p.add_argument("--key", required=True, help="issuer private key file")
    p.add_argument("--licensee", required=True,
                   help="principal id or file containing one")
    p.add_argument("--handle", required=True)
    p.add_argument("--rights", default="RWX")
    p.add_argument("--comment", default="")
    p.add_argument("--subtree", action="store_true")
    p.add_argument("--expires-at", type=int, default=None)
    p.add_argument("--hours", help="e.g. 9-17")
    p.add_argument("--out")
    p.set_defaults(func=cmd_issue)

    p = sub.add_parser("delegate", help="re-grant a credential")
    p.add_argument("--key", required=True, help="delegator private key file")
    p.add_argument("--credential", required=True, help="original credential")
    p.add_argument("--licensee", required=True)
    p.add_argument("--rights", default=None)
    p.add_argument("--comment", default="")
    p.add_argument("--expires-at", type=int, default=None)
    p.add_argument("--out")
    p.set_defaults(func=cmd_delegate)

    p = sub.add_parser("inspect", help="pretty-print a credential")
    p.add_argument("--credential", required=True)
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("verify", help="verify a credential signature")
    p.add_argument("--credential", required=True)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("serve", help="run a DisCFS server")
    p.add_argument("--admin-identity", required=True,
                   help="administrator principal (or file containing it)")
    p.add_argument("--trust-key",
                   help="admin private key file: auto-install server trust")
    p.add_argument("--import-dir", help="host directory to import")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument("--cache", type=int, default=128)
    p.add_argument("--backend", default="mem://", metavar="URI",
                   help="storage backend URI: mem://, file://PATH, "
                        "sqlite://PATH, shard://N, cached://URI, "
                        "remote://HOST:PORT, replica://N, journal://URI "
                        "(default mem://; see `discfs backends`)")
    p.add_argument("--oneshot", action="store_true", help=argparse.SUPPRESS)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("store-serve",
                       help="export a storage backend over RPC (remote://)")
    p.add_argument("--backend", default="mem://", metavar="URI",
                   help="backend URI to serve (default mem://)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument("--blocks", type=int, default=None,
                   help="store size in blocks (default: registry default)")
    p.add_argument("--bs", type=int, default=None,
                   help="block size in bytes (default 8192)")
    p.add_argument("--workers", type=int, default=4,
                   help="request-handling threads per node: pipelined "
                        "clients (remote://...?workers=N) overlap calls "
                        "on one connection; 0 = answer each connection "
                        "sequentially (default 4)")
    p.add_argument("--policy", metavar="FILE",
                   help="KeyNote policy file: require an authenticated "
                        "SESSION_OPEN (clients mount with "
                        "remote://...#cred=FILE&key=FILE) and authorize "
                        "every call against the session's rights")
    p.add_argument("--tenant-quota", action="append", metavar="SPEC",
                   help="carve a private tenant region on the served "
                        "store: NAME=BLOCKS[:BYTES[:RATE]] (repeatable; "
                        "needs --policy)")
    p.add_argument("--audit-log", metavar="FILE",
                   help="append one JSON line per auth decision "
                        "(needs --policy)")
    p.add_argument("--insecure", action="store_true",
                   help="serve a non-loopback address WITHOUT --policy "
                        "(anyone reaching the port gets full read/write)")
    p.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                   help="also serve /metrics (Prometheus text), "
                        "/metrics.json and /trace.json over HTTP on this "
                        "port (0 = ephemeral; announced on a second line)")
    p.add_argument("--trace-log", metavar="FILE",
                   help="append one JSON line per recorded span "
                        "(feed the files to: discfs store-trace)")
    p.add_argument("--oneshot", action="store_true", help=argparse.SUPPRESS)
    p.set_defaults(func=cmd_store_serve)

    p = sub.add_parser("store-issue",
                       help="issue a storage-plane credential "
                            "(tenant + r/rw/admin rights)")
    p.add_argument("--key", required=True, help="issuer private key file")
    p.add_argument("--licensee", required=True,
                   help="principal id or file containing one")
    p.add_argument("--tenant", default="",
                   help="tenant the grant is scoped to (empty: whole store)")
    p.add_argument("--rights", default="rw", choices=("r", "rw", "admin"))
    p.add_argument("--comment", default="")
    p.add_argument("--expires-at", type=int, default=None,
                   help="unix time after which the credential is dead")
    p.add_argument("--out")
    p.set_defaults(func=cmd_store_issue)

    p = sub.add_parser("store-inspect",
                       help="print a backend's live topology "
                            "(capabilities + stats per layer)")
    p.add_argument("backend", metavar="URI",
                   help="backend URI to mount and inspect")
    p.add_argument("--json", action="store_true",
                   help="emit the topology tree as JSON")
    p.add_argument("--parse", action="store_true",
                   help="validate and canonicalize the URI without "
                        "mounting anything")
    p.add_argument("--exercise", action="store_true",
                   help="read block 0 twice first so the stats are "
                        "non-zero (demos; never writes)")
    p.set_defaults(func=cmd_store_inspect)

    p = sub.add_parser("store-trace",
                       help="reconstruct cross-node span trees from "
                            "--trace-log span files")
    p.add_argument("files", nargs="+", metavar="SPANS.jsonl",
                   help="JSON-lines span files (store-serve --trace-log "
                        "output, one per node, plus any client logs)")
    p.add_argument("--trace", metavar="ID",
                   help="only show traces whose id starts with ID")
    p.add_argument("--slow-ms", type=float, default=None,
                   help="flag spans at or above this duration "
                        "(default 100)")
    p.add_argument("--json", action="store_true",
                   help="emit the reconstructed trees as JSON")
    p.set_defaults(func=cmd_store_trace)

    p = sub.add_parser("reshard",
                       help="migrate a shard:// ring to a new layout "
                            "(moves only ring-owner-changed blocks)")
    p.add_argument("old", metavar="OLD_URI",
                   help="the currently deployed shard:// layout")
    p.add_argument("new", metavar="NEW_URI",
                   help="the target shard:// layout")
    p.add_argument("--no-verify", action="store_true",
                   help="skip re-reading moved blocks from their new "
                        "owner before the swap")
    p.set_defaults(func=cmd_reshard)

    p = sub.add_parser("backends", help="list storage-backend URI schemes")
    p.set_defaults(func=cmd_backends)

    p = sub.add_parser("journal-inspect",
                       help="dump/verify a journal:// write-ahead log")
    p.add_argument("journal", help="path to the journal file")
    p.add_argument("--records", action="store_true",
                   help="also list every record in the log")
    p.set_defaults(func=cmd_journal_inspect)

    p = sub.add_parser(
        "lint",
        help="run the project-specific static analyzers (discfs-lint)",
    )
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="files or directories to lint (default: src/repro)")
    p.add_argument("--rule", action="append", metavar="RULE",
                   help="run only this rule (repeatable; see --list-rules)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable findings + summary")
    p.add_argument("--baseline", metavar="FILE",
                   help="grandfather findings whose fingerprint is in FILE")
    p.add_argument("--diff", metavar="REF",
                   help="lint only python files changed vs git REF "
                        "(intersected with PATH; new-vs-baseline "
                        "findings still gate)")
    p.add_argument("--write-baseline", metavar="FILE",
                   help="write current findings to FILE as a new baseline")
    p.add_argument("--list-rules", action="store_true",
                   help="list available rules and exit")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("ls", help="list a remote directory")
    _add_client_args(p)
    p.add_argument("path", nargs="?", default="/")
    p.set_defaults(func=cmd_ls)

    p = sub.add_parser("cat", help="print a remote file")
    _add_client_args(p)
    p.add_argument("path")
    p.set_defaults(func=cmd_cat)

    p = sub.add_parser("put", help="upload a local file")
    _add_client_args(p)
    p.add_argument("local")
    p.add_argument("path")
    p.add_argument("--save-credential", metavar="FILE",
                   help="store the creator credential here")
    p.set_defaults(func=cmd_put)

    p = sub.add_parser("rm", help="remove a remote file")
    _add_client_args(p)
    p.add_argument("path")
    p.set_defaults(func=cmd_rm)

    p = sub.add_parser("stat", help="print a remote file's handle and rights")
    _add_client_args(p)
    p.add_argument("path")
    p.set_defaults(func=cmd_stat)

    p = sub.add_parser("submit", help="submit credential files")
    _add_client_args(p)
    p.add_argument("files", nargs="+")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("audit", help="dump the server audit log (admin)")
    _add_client_args(p)
    p.add_argument("--limit", type=int, default=100)
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("revoke", help="administrator revocation")
    _add_client_args(p)
    p.add_argument("kind", choices=("key", "credential"))
    p.add_argument("value", help="principal/file (key) or credential file")
    p.set_defaults(func=cmd_revoke)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
