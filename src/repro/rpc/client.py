"""RPC client stub: synchronous calls over any transport."""

from __future__ import annotations

from repro.errors import ProcedureUnavailable, RPCError
from repro.rpc.message import AcceptStat, CallMessage, ReplyMessage
from repro.rpc.transport import Transport
from repro.rpc.xdr import XDRDecoder


class RPCClient:
    """Issues calls for one (program, version) pair over a transport."""

    def __init__(self, transport: Transport, prog: int, vers: int):
        self.transport = transport
        self.prog = prog
        self.vers = vers

    def call(self, proc: int, args: bytes = b"") -> XDRDecoder:
        """Call a procedure; returns a decoder over the results.

        Raises :class:`ProcedureUnavailable` for PROG/PROC_UNAVAIL and
        :class:`RPCError` for other non-success statuses or xid mismatches.
        """
        request = CallMessage(prog=self.prog, vers=self.vers, proc=proc, args=args)
        raw = self.transport.call(request.encode())
        reply = ReplyMessage.decode(raw)
        if reply.xid != request.xid:
            raise RPCError(f"xid mismatch: sent {request.xid}, got {reply.xid}")
        if reply.stat in (AcceptStat.PROG_UNAVAIL, AcceptStat.PROC_UNAVAIL,
                          AcceptStat.PROG_MISMATCH):
            raise ProcedureUnavailable(
                f"server cannot serve prog={self.prog} vers={self.vers} proc={proc} "
                f"({reply.stat.name})"
            )
        if reply.stat != AcceptStat.SUCCESS:
            raise RPCError(f"call failed with status {reply.stat.name}")
        return XDRDecoder(reply.results)

    def ping(self) -> None:
        """Invoke the NULL procedure (used by tests and health checks)."""
        self.call(0).done()

    def close(self) -> None:
        self.transport.close()
