"""RPC client stub: synchronous and future-based calls over any transport.

Two concurrency building blocks live here besides the classic blocking
:meth:`RPCClient.call`:

* :meth:`RPCClient.call_async` — returns a
  :class:`~concurrent.futures.Future` for the decoded reply.  On a
  transport that can pipeline (anything with ``submit``, e.g.
  :class:`~repro.rpc.transport.PipelinedTCPTransport` or a
  :class:`ConnectionPool`) the call is in flight before the method
  returns; otherwise a small thread pool runs the blocking call, so
  callers get the same futures API over every transport.
* :class:`ConnectionPool` — up to ``size`` lazily-created connections to
  one endpoint, presented as a single transport.  In-flight calls are
  spread over the least-loaded connections, broken connections are
  discarded and re-dialed on next use, and a failure on one pool slot
  fails only the calls routed over that slot.

No asyncio: everything is plain threads and ``concurrent.futures``, the
same machinery the storage fan-out layers build on.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable

from repro.errors import ProcedureUnavailable, RPCError, TransportError
from repro.rpc.message import AcceptStat, CallMessage, ReplyMessage
from repro.rpc.transport import Transport, _resolve_future
from repro.rpc.xdr import XDRDecoder

#: Slot marker: a connection is being dialed for this slot right now.
_DIALING = object()


def abandon_call(fut: Future, reason: str) -> None:
    """Give up on an in-flight call whose deadline has passed.

    Cancels the future and — when it rides a pooled connection
    (``ConnectionPool.submit`` tags its futures) — tears that connection
    down, failing its other in-flight calls with ``reason``.  Without
    the teardown, a server that never answers would accumulate pending
    state and in-flight counts against a wedged connection forever.
    """
    fut.cancel()
    transport = getattr(fut, "pool_transport", None)
    if transport is None:
        return
    exc = TransportError(reason)
    fail = getattr(transport, "_fail", None)
    if fail is not None:
        fail(exc)  # resolves every pending call on that connection
    else:
        transport.broken = True  # type: ignore[attr-defined]
        try:
            transport.close()  # unblocks a fallback-executor call
        except Exception:
            pass


class ConnectionPool:
    """Fan calls over up to ``size`` connections to one endpoint.

    ``factory`` dials one new transport (it may raise, e.g. ``OSError``
    when the peer is down — the error surfaces on the call that needed
    the new connection).  Connections are created lazily: a workload
    with one call in flight at a time uses one connection no matter the
    pool size, and ``created`` counts how many the pool ever dialed, so
    tests can assert reuse.

    The pool implements the transport protocol (``call``/``close``)
    plus ``submit``, so an :class:`RPCClient` works over it unchanged.
    Calls are routed to the connection with the fewest calls in flight.
    A slot whose transport turns out broken is cleared and re-dialed on
    next use; its failure is delivered only to the calls that were
    actually riding that connection.
    """

    def __init__(self, factory: Callable[[], Transport], size: int = 4,
                 timeout: float | None = None):
        if size < 1:
            raise ValueError("pool needs at least one connection slot")
        self.factory = factory
        self.size = size
        #: Deadline applied by the synchronous :meth:`call` path (None =
        #: wait forever); future-based callers set their own deadlines.
        self.timeout = timeout
        self.created = 0
        self._slots: list = [None] * size
        self._inflight = [0] * size
        self._cond = threading.Condition()
        self._closed = False
        #: Fallback executor for transports without ``submit``.
        self._executor: ThreadPoolExecutor | None = None

    # -- slot management ----------------------------------------------------

    def _acquire(self) -> tuple[int, Transport]:
        discarded: list[Transport] = []
        slot = -1
        reuse: tuple[int, Transport] | None = None
        try:
            with self._cond:
                while slot < 0 and reuse is None:
                    if self._closed:
                        raise TransportError("connection pool is closed")
                    for idx in range(self.size):
                        transport = self._slots[idx]
                        if (transport is not None
                                and transport is not _DIALING
                                and getattr(transport, "broken", None)):
                            self._slots[idx] = None
                            discarded.append(transport)
                    live = [idx for idx in range(self.size)
                            if self._slots[idx] is not None
                            and self._slots[idx] is not _DIALING]
                    idle = [idx for idx in live if self._inflight[idx] == 0]
                    if idle:
                        # Reuse an idle connection before dialing new ones.
                        chosen = idle[0]
                        self._inflight[chosen] += 1
                        reuse = (chosen, self._slots[chosen])
                        continue
                    empty = next((idx for idx in range(self.size)
                                  if self._slots[idx] is None), None)
                    if empty is not None:
                        self._slots[empty] = _DIALING
                        self._inflight[empty] += 1
                        slot = empty
                    elif live:
                        # Every slot is live and busy: pile onto the
                        # least loaded (pipelining shares a connection).
                        chosen = min(live,
                                     key=lambda idx: self._inflight[idx])
                        self._inflight[chosen] += 1
                        reuse = (chosen, self._slots[chosen])
                    else:
                        # Every slot is mid-dial; wait for one to land.
                        self._cond.wait()
        finally:
            # Outside the lock: closing a pipelined transport resolves
            # its pending futures, whose callbacks re-enter _release.
            self._close_quietly(discarded)
        if reuse is not None:
            return reuse
        try:
            transport = self.factory()
        except Exception:
            with self._cond:
                self._slots[slot] = None
                self._inflight[slot] -= 1
                self._cond.notify_all()
            raise
        with self._cond:
            if self._closed:
                self._slots[slot] = None
                self._inflight[slot] -= 1
                self._cond.notify_all()
                transport.close()
                raise TransportError("connection pool is closed")
            self._slots[slot] = transport
            self.created += 1
            self._cond.notify_all()
        return slot, transport

    @staticmethod
    def _close_quietly(transports: list) -> None:
        """Close discarded transports so broken connections don't leak
        their sockets until GC (pipelined ones already closed in _fail;
        plain TCP ones have not)."""
        while transports:
            try:
                transports.pop().close()
            except Exception:
                pass

    def _release(self, slot: int, transport: Transport) -> None:
        dropped = None
        with self._cond:
            self._inflight[slot] -= 1
            if (getattr(transport, "broken", None)
                    and self._slots[slot] is transport):
                self._slots[slot] = None
                dropped = transport
            self._cond.notify_all()
        if dropped is not None:
            self._close_quietly([dropped])

    # -- transport protocol -------------------------------------------------

    def _dispatch(self, transport: Transport, request: bytes) -> "Future[bytes]":
        """Start one call on an already-acquired transport."""
        inner_submit = getattr(transport, "submit", None)
        if inner_submit is not None:
            return inner_submit(request)
        if self._executor is None:
            with self._cond:
                if self._executor is None:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.size,
                        thread_name_prefix="rpc-pool",
                    )
        return self._executor.submit(
            self._call_marking_broken, transport, request
        )

    def submit(self, request: bytes) -> "Future[bytes]":
        slot, transport = self._acquire()
        try:
            fut = self._dispatch(transport, request)
        except Exception:
            self._release(slot, transport)
            raise
        fut.pool_transport = transport  # type: ignore[attr-defined]  # lets abandon_call tear it down
        fut.add_done_callback(lambda _f: self._release(slot, transport))
        return fut

    @staticmethod
    def _call_marking_broken(transport: Transport, request: bytes) -> bytes:
        """Blocking-call fallback: plain transports don't self-report
        brokenness the way pipelined ones do, so tag the transport on a
        transport-level failure — _release then discards the slot
        instead of preferring the dead-but-idle connection forever."""
        try:
            return transport.call(request)
        except (TransportError, OSError):
            transport.broken = True  # type: ignore[attr-defined]
            raise

    def call(self, request: bytes) -> bytes:
        """Blocking call with the pool's deadline.

        The slot is released synchronously before returning (not from a
        future callback, which CPython runs *after* ``result()`` waiters
        wake), so a strictly sequential caller always finds its previous
        connection idle again instead of dialing a redundant one.  On
        timeout the wedged connection is torn down and its slot
        re-dialed on next use — in-flight state must not accumulate
        against a server that never answers.
        """
        from concurrent.futures import TimeoutError as FutureTimeoutError

        slot, transport = self._acquire()
        try:
            fut = self._dispatch(transport, request)
            fut.pool_transport = transport  # type: ignore[attr-defined]  # for abandon_call symmetry
            try:
                return fut.result(timeout=self.timeout)
            except FutureTimeoutError:
                reason = (
                    f"no reply within {self.timeout}s (connection dropped)"
                )
                abandon_call(fut, reason)
                raise TransportError(reason) from None
        finally:
            self._release(slot, transport)

    @property
    def live_connections(self) -> int:
        with self._cond:
            return sum(1 for t in self._slots
                       if t is not None and t is not _DIALING)

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            slots, self._slots = list(self._slots), [None] * self.size
            executor, self._executor = self._executor, None
            self._cond.notify_all()
        for transport in slots:
            if transport is not None and transport is not _DIALING:
                transport.close()
        if executor is not None:
            executor.shutdown(wait=False)


class RPCClient:
    """Issues calls for one (program, version) pair over a transport."""

    def __init__(self, transport: Transport, prog: int, vers: int):
        self.transport = transport
        self.prog = prog
        self.vers = vers
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _decode_reply(self, request: CallMessage, raw: bytes) -> XDRDecoder:
        reply = ReplyMessage.decode(raw)
        if reply.xid != request.xid:
            raise RPCError(f"xid mismatch: sent {request.xid}, got {reply.xid}")
        if reply.stat in (AcceptStat.PROG_UNAVAIL, AcceptStat.PROC_UNAVAIL,
                          AcceptStat.PROG_MISMATCH):
            raise ProcedureUnavailable(
                f"server cannot serve prog={self.prog} vers={self.vers} "
                f"proc={request.proc} ({reply.stat.name})"
            )
        if reply.stat != AcceptStat.SUCCESS:
            raise RPCError(f"call failed with status {reply.stat.name}")
        return XDRDecoder(reply.results)

    def call(self, proc: int, args: bytes = b"", cred: bytes = b"") -> XDRDecoder:
        """Call a procedure; returns a decoder over the results.

        ``cred`` rides in the call's AUTH_NONE credential body — the
        slot the trace layer uses to ship span contexts; peers that
        predate tracing decode and ignore it (see
        :mod:`repro.obs.trace`).

        Raises :class:`ProcedureUnavailable` for PROG/PROC_UNAVAIL and
        :class:`RPCError` for other non-success statuses or xid mismatches.
        """
        request = CallMessage(prog=self.prog, vers=self.vers, proc=proc,
                              args=args, auth_body=cred)
        raw = self.transport.call(request.encode())
        return self._decode_reply(request, raw)

    def call_async(self, proc: int, args: bytes = b"",
                   cred: bytes = b"") -> Future:
        """Start a call; the future resolves to the reply's decoder.

        Over a pipelined transport (or :class:`ConnectionPool`) the
        request is on the wire before this returns, so several
        ``call_async`` invocations overlap their round trips; elsewhere
        a client-owned thread pool supplies the overlap.  Errors arrive
        through the future exactly as :meth:`call` would raise them.
        ``cred`` is the optional credential body, as in :meth:`call`.
        """
        request = CallMessage(prog=self.prog, vers=self.vers, proc=proc,
                              args=args, auth_body=cred)
        raw = request.encode()
        submit = getattr(self.transport, "submit", None)
        if submit is None:
            if self._executor is None:
                with self._lock:
                    if self._executor is None:
                        self._executor = ThreadPoolExecutor(
                            max_workers=8, thread_name_prefix="rpc-async"
                        )
            return self._executor.submit(
                lambda: self._decode_reply(request, self.transport.call(raw))
            )
        outer: Future = Future()
        inner = submit(raw)
        pool_transport = getattr(inner, "pool_transport", None)
        if pool_transport is not None:
            outer.pool_transport = pool_transport  # type: ignore[attr-defined]  # keep abandon_call working

        def chain(f: Future) -> None:
            exc = f.exception()
            if exc is not None:
                _resolve_future(outer, exc=exc)
                return
            try:
                _resolve_future(outer, result=self._decode_reply(
                    request, f.result()
                ))
            except Exception as decode_exc:
                _resolve_future(outer, exc=decode_exc)

        inner.add_done_callback(chain)
        return outer

    def ping(self) -> None:
        """Invoke the NULL procedure (used by tests and health checks)."""
        self.call(0).done()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        self.transport.close()
