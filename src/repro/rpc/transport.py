"""RPC transports.

A transport is anything with ``call(request: bytes) -> bytes`` (client
side) plus accounting.  Three implementations:

* :class:`InProcessTransport` — the server handler is invoked directly;
  fast and deterministic.  Most tests and the wall-clock benchmarks use
  this, with the RPC/NFS/KeyNote layers providing the measured overheads.
* :class:`TCPTransport` (+ :func:`serve_tcp`) — real sockets with RFC 1831
  record marking, for the distributed examples.
* :class:`PipelinedTCPTransport` — one socket, many in-flight calls:
  :meth:`~PipelinedTCPTransport.submit` returns a future and a background
  reader matches replies to requests by xid, so independent calls overlap
  on one connection (and a ``workers=N`` server may answer out of order).
* :class:`SimulatedLatencyTransport` — wraps another transport and charges
  a virtual-time cost per round trip from a :class:`LatencyModel`
  parameterized like the paper's testbed (100 Mbps Ethernet).  Virtual
  time accumulates in the model; the benchmark harness reads it to report
  paper-scale numbers without sleeping.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.errors import TransportError
from repro.obs.trace import mark_request_received

Handler = Callable[[bytes], bytes]

_RECORD_HEADER = struct.Struct(">I")
_LAST_FRAGMENT = 0x80000000


class Transport(Protocol):
    def call(self, request: bytes) -> bytes: ...

    def close(self) -> None: ...


@dataclass
class TransportStats:
    calls: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def reset(self) -> None:
        self.calls = self.bytes_sent = self.bytes_received = 0


class InProcessTransport:
    """Directly invokes a server handler in the caller's thread."""

    def __init__(self, handler: Handler):
        self._handler = handler
        self.stats = TransportStats()
        self._closed = False

    def call(self, request: bytes) -> bytes:
        if self._closed:
            raise TransportError("transport is closed")
        self.stats.calls += 1
        self.stats.bytes_sent += len(request)
        mark_request_received()  # no queue: service starts immediately
        response = self._handler(request)
        self.stats.bytes_received += len(response)
        return response

    def close(self) -> None:
        self._closed = True


@dataclass
class LatencyModel:
    """Virtual-time cost model for one RPC round trip.

    Defaults approximate the paper's testbed: 100 Mbps Ethernet between
    two hosts on the same segment (~0.2 ms RTT for small frames,
    12.5 MB/s line rate).
    """

    rtt_seconds: float = 0.0002
    bandwidth_bytes_per_second: float = 12_500_000.0
    #: Accumulated virtual network time.
    virtual_time: float = field(default=0.0)

    def charge(self, request_bytes: int, response_bytes: int) -> float:
        cost = self.rtt_seconds + (
            (request_bytes + response_bytes) / self.bandwidth_bytes_per_second
        )
        self.virtual_time += cost
        return cost

    def reset(self) -> None:
        self.virtual_time = 0.0


class SimulatedLatencyTransport:
    """Wraps a transport, charging virtual time per call (no sleeping)."""

    def __init__(self, inner: Transport, model: LatencyModel | None = None):
        self.inner = inner
        self.model = model if model is not None else LatencyModel()
        self.stats = TransportStats()

    def call(self, request: bytes) -> bytes:
        self.stats.calls += 1
        self.stats.bytes_sent += len(request)
        response = self.inner.call(request)
        self.stats.bytes_received += len(response)
        self.model.charge(len(request), len(response))
        return response

    def close(self) -> None:
        self.inner.close()


class TCPTransport:
    """Client side of an RPC connection over TCP with record marking."""

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.Lock()
        self.stats = TransportStats()

    def call(self, request: bytes) -> bytes:
        with self._lock:
            self.stats.calls += 1
            self.stats.bytes_sent += len(request)
            _send_record(self._sock, request)
            response = _recv_record(self._sock)
            self.stats.bytes_received += len(response)
            return response

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def _resolve_future(fut: Future, result: bytes | None = None,
                    exc: BaseException | None = None) -> None:
    """Set a future's outcome, tolerating callers that cancelled it."""
    if fut.cancelled() or fut.done():
        return
    try:
        if exc is not None:
            fut.set_exception(exc)
        else:
            fut.set_result(result)
    except Exception:  # lost a race with cancel(): the caller gave up
        pass


class PipelinedTCPTransport:
    """Many in-flight calls on one TCP connection.

    :meth:`submit` frames and sends the request immediately and returns
    a :class:`~concurrent.futures.Future` for the reply; a background
    reader thread matches incoming replies to pending futures by **xid**
    (the first uint32 of every RPC call and reply), so replies may
    arrive in any order — which is exactly what a ``workers=N`` server
    produces when a fast call overtakes a slow one.

    A transport error fails every pending future and marks the
    connection broken (``broken`` is the original error); pools discard
    broken transports and reconnect, so one dead connection never
    poisons calls routed over its siblings.  ``timeout`` bounds the
    synchronous :meth:`call` path; future-based callers apply their own
    deadline via ``Future.result(timeout)``.
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # The reader blocks in recv; close() unblocks it by closing the
        # socket, so no per-recv timeout is needed once connected.
        self._sock.settimeout(None)
        self.timeout = timeout
        self.stats = TransportStats()
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._closed = False
        self.broken: TransportError | None = None
        self._reader = threading.Thread(
            target=self._read_loop, name="rpc-pipeline-reader", daemon=True
        )
        self._reader.start()

    # -- client API ---------------------------------------------------------

    def submit(self, request: bytes) -> "Future[bytes]":
        """Send ``request`` now; the returned future resolves to the reply."""
        if len(request) < 4:
            raise TransportError("request too short to carry an xid")
        xid = _RECORD_HEADER.unpack(request[:4])[0]
        fut: Future = Future()
        with self._lock:
            if self._closed:
                raise TransportError("transport is closed")
            if self.broken is not None:
                raise TransportError(f"transport is broken: {self.broken}")
            if xid in self._pending:
                raise TransportError(f"xid {xid} already in flight")
            self._pending[xid] = fut
            self.stats.calls += 1
            self.stats.bytes_sent += len(request)
        try:
            with self._send_lock:
                _send_record(self._sock, request)
        except TransportError as exc:
            self._fail(exc)
        return fut

    def call(self, request: bytes) -> bytes:
        fut = self.submit(request)
        try:
            return fut.result(timeout=self.timeout)
        except FutureTimeoutError:
            # The reply may still arrive, but the caller's deadline has
            # passed; tear the connection down so pending state cannot
            # grow without bound and callers see a clean error.
            exc = TransportError(
                f"no reply within {self.timeout}s (connection dropped)"
            )
            self._fail(exc)
            raise exc from None

    @property
    def pending_calls(self) -> int:
        with self._lock:
            return len(self._pending)

    def close(self) -> None:
        with self._lock:
            self._closed = True
        self._fail(TransportError("transport closed"), closing=True)

    # -- internals ----------------------------------------------------------

    def _read_loop(self) -> None:
        while True:
            try:
                response = _recv_record(self._sock)
            except TransportError as exc:
                with self._lock:
                    quiet = self._closed
                if not quiet:
                    self._fail(exc)
                return
            if len(response) < 4:
                self._fail(TransportError("reply too short to carry an xid"))
                return
            xid = _RECORD_HEADER.unpack(response[:4])[0]
            with self._lock:
                fut = self._pending.pop(xid, None)
                self.stats.bytes_received += len(response)
            if fut is None:
                # A reply for a call that timed out or was never ours:
                # drop it; xids are unique so nothing can mis-match.
                continue
            _resolve_future(fut, result=response)

    def _fail(self, exc: TransportError, closing: bool = False) -> None:
        with self._lock:
            if not closing and self.broken is None:
                self.broken = exc
            pending, self._pending = self._pending, {}
        for fut in pending.values():
            _resolve_future(fut, exc=exc)
        try:
            self._sock.close()
        except OSError:
            pass


def _send_record(sock: socket.socket, data: bytes) -> None:
    header = _RECORD_HEADER.pack(_LAST_FRAGMENT | len(data))
    try:
        sock.sendall(header + data)
    except OSError as exc:
        raise TransportError(f"send failed: {exc}") from exc


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError as exc:
            raise TransportError(f"receive failed: {exc}") from exc
        if not chunk:
            raise TransportError("connection closed mid-record")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_record(sock: socket.socket) -> bytes:
    fragments = []
    while True:
        header = _RECORD_HEADER.unpack(_recv_exact(sock, 4))[0]
        length = header & ~_LAST_FRAGMENT
        if length > 1 << 26:
            raise TransportError(f"record fragment of {length} bytes is implausible")
        fragments.append(_recv_exact(sock, length))
        if header & _LAST_FRAGMENT:
            return b"".join(fragments)


class TCPServer:
    """A threaded record-marked TCP server dispatching to a handler.

    With ``workers=0`` (the default) each connection's requests are
    handled sequentially in that connection's thread — replies come back
    in request order.  With ``workers=N`` requests are dispatched to a
    shared pool and replies are sent as they complete, possibly out of
    request order; that is legal because RPC replies carry the call's
    xid, and it is what lets a pipelined client overlap calls on a
    single connection instead of queueing behind the slowest one.
    """

    def __init__(self, handler: Handler, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 0):
        self._handler = handler
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.address = self._listener.getsockname()
        # Set before the thread starts: settimeout on a listener that
        # close() already tore down raises EBADF in the accept thread.
        self._listener.settimeout(0.2)
        self.workers = workers
        self._pool = (
            ThreadPoolExecutor(max_workers=workers,
                               thread_name_prefix="rpc-server-worker")
            if workers > 0 else None
        )
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_lock = threading.Lock()
        with conn:
            while not self._stop.is_set():
                try:
                    request = _recv_record(conn)
                except TransportError:
                    return
                # Stamp arrival now: with a worker pool, the gap until a
                # worker picks the request up is queue wait, which the
                # program layer splits from service time for tracing.
                received = time.perf_counter()
                if self._pool is not None:
                    self._pool.submit(self._handle_one, conn, send_lock,
                                      request, received)
                    continue
                try:
                    mark_request_received(received)
                    response = self._handler(request)
                except Exception:  # handler bug: drop connection, keep server
                    return
                try:
                    _send_record(conn, response)
                except TransportError:
                    return

    def _handle_one(self, conn: socket.socket, send_lock: threading.Lock,
                    request: bytes, received: float | None = None) -> None:
        """Worker-pool path: handle and reply, racing sibling requests."""
        try:
            mark_request_received(received)
            response = self._handler(request)
        except Exception:  # handler bug: drop connection, keep server
            try:
                conn.close()
            except OSError:
                pass
            return
        try:
            with send_lock:
                _send_record(conn, response)
        except TransportError:
            pass  # client went away; its reader already saw the close

    def close(self) -> None:
        self._stop.set()
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        try:
            self._listener.close()
        except OSError:
            pass


def serve_tcp(handler: Handler, host: str = "127.0.0.1", port: int = 0,
              workers: int = 0) -> TCPServer:
    """Start a TCP RPC server; returns the server (``.address`` has the port)."""
    return TCPServer(handler, host=host, port=port, workers=workers)
