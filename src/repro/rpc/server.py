"""RPC program registration and dispatch."""

from __future__ import annotations

from typing import Callable

from repro.errors import RPCError, XDRError
from repro.rpc.message import AcceptStat, CallMessage, ReplyMessage
from repro.rpc.xdr import XDRDecoder

#: A procedure takes the XDR-decoded argument stream and per-call context,
#: returning encoded results.
Procedure = Callable[[XDRDecoder, "CallContext"], bytes]


class CallContext:
    """Per-call information handed to procedures.

    ``peer_identity`` carries the public-key identifier bound to the
    transport by the secure channel (None on unauthenticated transports).
    DisCFS procedures use it as the requesting principal.
    """

    def __init__(self, call: CallMessage, peer_identity: str | None = None):
        self.call = call
        self.peer_identity = peer_identity


class RPCProgram:
    """One versioned RPC program: a table of procedures."""

    def __init__(self, prog: int, vers: int, name: str = ""):
        self.prog = prog
        self.vers = vers
        self.name = name or f"prog-{prog}"
        self._procedures: dict[int, Procedure] = {0: lambda dec, ctx: b""}  # NULL proc

    def register(self, proc: int, handler: Procedure) -> None:
        self._procedures[proc] = handler

    def procedure(self, proc: int):
        """Decorator form of :meth:`register`."""

        def wrap(handler: Procedure) -> Procedure:
            self.register(proc, handler)
            return handler

        return wrap

    def dispatch(self, proc: int, decoder: XDRDecoder, ctx: CallContext) -> bytes:
        handler = self._procedures.get(proc)
        if handler is None:
            raise RPCError(f"procedure {proc} unavailable in {self.name}")
        return handler(decoder, ctx)

    def has_procedure(self, proc: int) -> bool:
        return proc in self._procedures


class RPCServer:
    """Dispatches encoded call messages to registered programs.

    The server itself is transport-agnostic: its :meth:`handle` is a
    ``bytes -> bytes`` function pluggable into any transport, including
    the secure channel (which supplies a per-connection identity via an
    identity resolver).
    """

    def __init__(self) -> None:
        self._programs: dict[tuple[int, int], RPCProgram] = {}

    def register(self, program: RPCProgram) -> None:
        self._programs[(program.prog, program.vers)] = program

    def handle(self, request: bytes, peer_identity: str | None = None) -> bytes:
        try:
            call = CallMessage.decode(request)
        except (RPCError, XDRError) as exc:
            # Cannot even recover an xid; answer with xid 0 / GARBAGE_ARGS.
            return ReplyMessage(xid=0, stat=AcceptStat.GARBAGE_ARGS,
                                results=str(exc).encode()[:64]).encode()

        program = self._programs.get((call.prog, call.vers))
        if program is None:
            return ReplyMessage(xid=call.xid, stat=AcceptStat.PROG_UNAVAIL).encode()
        if not program.has_procedure(call.proc):
            return ReplyMessage(xid=call.xid, stat=AcceptStat.PROC_UNAVAIL).encode()

        ctx = CallContext(call, peer_identity=peer_identity)
        try:
            results = program.dispatch(call.proc, XDRDecoder(call.args), ctx)
        except XDRError:
            return ReplyMessage(xid=call.xid, stat=AcceptStat.GARBAGE_ARGS).encode()
        except Exception:
            return ReplyMessage(xid=call.xid, stat=AcceptStat.SYSTEM_ERR).encode()
        return ReplyMessage(xid=call.xid, stat=AcceptStat.SUCCESS, results=results).encode()

    def handler_for(self, identity: str | None = None):
        """A ``bytes -> bytes`` closure with a fixed peer identity."""

        def handler(request: bytes) -> bytes:
            return self.handle(request, peer_identity=identity)

        return handler
