"""XDR (External Data Representation) encoding — the RFC 4506 subset NFS uses.

All quantities are big-endian and padded to 4-byte alignment.  The decoder
is strict: short buffers and unconsumed padding bytes raise
:class:`~repro.errors.XDRError` rather than silently misparsing.
"""

from __future__ import annotations

import struct
from typing import Callable, TypeVar

from repro.errors import XDRError

_U32 = struct.Struct(">I")
_I32 = struct.Struct(">i")
_U64 = struct.Struct(">Q")
_I64 = struct.Struct(">q")

T = TypeVar("T")


class XDREncoder:
    """Append-only XDR writer."""

    def __init__(self) -> None:
        self._buf = bytearray()

    # -- integers ----------------------------------------------------------

    def pack_uint(self, value: int) -> "XDREncoder":
        if not 0 <= value < 1 << 32:
            raise XDRError(f"uint out of range: {value}")
        self._buf += _U32.pack(value)
        return self

    def pack_int(self, value: int) -> "XDREncoder":
        if not -(1 << 31) <= value < 1 << 31:
            raise XDRError(f"int out of range: {value}")
        self._buf += _I32.pack(value)
        return self

    def pack_uhyper(self, value: int) -> "XDREncoder":
        if not 0 <= value < 1 << 64:
            raise XDRError(f"uhyper out of range: {value}")
        self._buf += _U64.pack(value)
        return self

    def pack_hyper(self, value: int) -> "XDREncoder":
        if not -(1 << 63) <= value < 1 << 63:
            raise XDRError(f"hyper out of range: {value}")
        self._buf += _I64.pack(value)
        return self

    def pack_bool(self, value: bool) -> "XDREncoder":
        return self.pack_uint(1 if value else 0)

    def pack_enum(self, value: int) -> "XDREncoder":
        return self.pack_int(int(value))

    # -- byte strings -------------------------------------------------------

    def pack_fixed_opaque(self, data: bytes, size: int) -> "XDREncoder":
        if len(data) != size:
            raise XDRError(f"fixed opaque must be exactly {size} bytes")
        self._buf += data
        self._pad(size)
        return self

    def pack_opaque(self, data: bytes) -> "XDREncoder":
        self.pack_uint(len(data))
        self._buf += data
        self._pad(len(data))
        return self

    def pack_string(self, text: str) -> "XDREncoder":
        return self.pack_opaque(text.encode("utf-8"))

    # -- composites -------------------------------------------------------

    def pack_array(self, items: list[T], pack_item: Callable[["XDREncoder", T], None]) -> "XDREncoder":
        self.pack_uint(len(items))
        for item in items:
            pack_item(self, item)
        return self

    def pack_optional(self, value: T | None, pack_item: Callable[["XDREncoder", T], None]) -> "XDREncoder":
        if value is None:
            return self.pack_bool(False)
        self.pack_bool(True)
        pack_item(self, value)
        return self

    def _pad(self, size: int) -> None:
        if size % 4:
            self._buf += b"\x00" * (4 - size % 4)

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


class XDRDecoder:
    """Cursor-based XDR reader."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise XDRError(
                f"buffer underrun: need {n} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    # -- integers ----------------------------------------------------------

    def unpack_uint(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def unpack_int(self) -> int:
        return _I32.unpack(self._take(4))[0]

    def unpack_uhyper(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def unpack_hyper(self) -> int:
        return _I64.unpack(self._take(8))[0]

    def unpack_bool(self) -> bool:
        value = self.unpack_uint()
        if value not in (0, 1):
            raise XDRError(f"bool must be 0 or 1, got {value}")
        return bool(value)

    def unpack_enum(self) -> int:
        return self.unpack_int()

    # -- byte strings -------------------------------------------------------

    def unpack_fixed_opaque(self, size: int) -> bytes:
        data = self._take(size)
        self._skip_pad(size)
        return data

    def unpack_opaque(self, max_size: int | None = None) -> bytes:
        size = self.unpack_uint()
        if max_size is not None and size > max_size:
            raise XDRError(f"opaque of {size} bytes exceeds maximum {max_size}")
        data = self._take(size)
        self._skip_pad(size)
        return data

    def unpack_string(self, max_size: int | None = None) -> str:
        raw = self.unpack_opaque(max_size)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise XDRError("string is not valid UTF-8") from exc

    # -- composites -------------------------------------------------------

    def unpack_array(self, unpack_item: Callable[["XDRDecoder"], T],
                     max_items: int | None = None) -> list[T]:
        count = self.unpack_uint()
        if max_items is not None and count > max_items:
            raise XDRError(f"array of {count} items exceeds maximum {max_items}")
        return [unpack_item(self) for _ in range(count)]

    def unpack_optional(self, unpack_item: Callable[["XDRDecoder"], T]) -> T | None:
        if self.unpack_bool():
            return unpack_item(self)
        return None

    def _skip_pad(self, size: int) -> None:
        if size % 4:
            pad = self._take(4 - size % 4)
            if pad.strip(b"\x00"):
                raise XDRError("nonzero padding bytes")

    def done(self) -> None:
        """Assert the whole buffer was consumed."""
        if self._pos != len(self._data):
            raise XDRError(
                f"{len(self._data) - self._pos} unconsumed bytes at end of message"
            )

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos
