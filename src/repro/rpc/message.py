"""RPC call/reply message framing (ONC RPC, RFC 5531 subset).

Message layout::

    CALL:  xid, mtype=0, rpcvers=2, prog, vers, proc, cred, verf, args...
    REPLY: xid, mtype=1, reply_stat=ACCEPTED, verf, accept_stat, results...

Authentication flavors: ``AUTH_NONE`` and a DisCFS-specific
``AUTH_CHANNEL`` flavor whose body is empty — the peer identity comes from
the secure channel, not from per-message credentials (the paper's point:
"requests coming over the IPsec link can be safely assumed to come from
the authorized user").

The ``AUTH_NONE`` credential *body* (an XDR opaque, normally empty)
doubles as the optional trace field: tracing clients pack a span
context there (:func:`repro.obs.trace.encode_context`) and servers that
understand it record a child span.  Both directions are NULL-compatible
with peers that predate tracing — the body has always been decoded,
size-capped and otherwise ignored, so an old server skips the context
and an old client simply sends the empty body.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field

from repro.errors import RPCError
from repro.rpc.xdr import XDRDecoder, XDREncoder

RPC_VERSION = 2


class MsgType(enum.IntEnum):
    CALL = 0
    REPLY = 1


class AcceptStat(enum.IntEnum):
    SUCCESS = 0
    PROG_UNAVAIL = 1
    PROG_MISMATCH = 2
    PROC_UNAVAIL = 3
    GARBAGE_ARGS = 4
    SYSTEM_ERR = 5


class AuthFlavor(enum.IntEnum):
    AUTH_NONE = 0
    AUTH_SYS = 1
    #: Identity supplied by the secure channel (DisCFS extension).
    AUTH_CHANNEL = 390000


_xid_counter = itertools.count(1)
_xid_lock = threading.Lock()


def next_xid() -> int:
    with _xid_lock:
        return next(_xid_counter) & 0xFFFFFFFF


@dataclass
class CallMessage:
    prog: int
    vers: int
    proc: int
    args: bytes = b""
    xid: int = field(default_factory=next_xid)
    auth_flavor: AuthFlavor = AuthFlavor.AUTH_NONE
    auth_body: bytes = b""

    def encode(self) -> bytes:
        enc = XDREncoder()
        enc.pack_uint(self.xid)
        enc.pack_enum(MsgType.CALL)
        enc.pack_uint(RPC_VERSION)
        enc.pack_uint(self.prog)
        enc.pack_uint(self.vers)
        enc.pack_uint(self.proc)
        enc.pack_enum(self.auth_flavor)
        enc.pack_opaque(self.auth_body)
        enc.pack_enum(AuthFlavor.AUTH_NONE)  # verifier flavor
        enc.pack_opaque(b"")
        return enc.getvalue() + self.args

    @classmethod
    def decode(cls, data: bytes) -> "CallMessage":
        dec = XDRDecoder(data)
        xid = dec.unpack_uint()
        mtype = dec.unpack_enum()
        if mtype != MsgType.CALL:
            raise RPCError(f"expected CALL, got message type {mtype}")
        rpcvers = dec.unpack_uint()
        if rpcvers != RPC_VERSION:
            raise RPCError(f"unsupported RPC version {rpcvers}")
        prog = dec.unpack_uint()
        vers = dec.unpack_uint()
        proc = dec.unpack_uint()
        flavor = AuthFlavor(dec.unpack_enum())
        auth_body = dec.unpack_opaque(max_size=400)
        dec.unpack_enum()  # verifier flavor (ignored)
        dec.unpack_opaque(max_size=400)
        args = data[len(data) - dec.remaining :]
        return cls(prog=prog, vers=vers, proc=proc, args=args, xid=xid,
                   auth_flavor=flavor, auth_body=auth_body)


@dataclass
class ReplyMessage:
    xid: int
    stat: AcceptStat = AcceptStat.SUCCESS
    results: bytes = b""

    def encode(self) -> bytes:
        enc = XDREncoder()
        enc.pack_uint(self.xid)
        enc.pack_enum(MsgType.REPLY)
        enc.pack_enum(0)  # reply_stat = MSG_ACCEPTED
        enc.pack_enum(AuthFlavor.AUTH_NONE)  # verifier
        enc.pack_opaque(b"")
        enc.pack_enum(self.stat)
        return enc.getvalue() + self.results

    @classmethod
    def decode(cls, data: bytes) -> "ReplyMessage":
        dec = XDRDecoder(data)
        xid = dec.unpack_uint()
        mtype = dec.unpack_enum()
        if mtype != MsgType.REPLY:
            raise RPCError(f"expected REPLY, got message type {mtype}")
        reply_stat = dec.unpack_enum()
        if reply_stat != 0:
            raise RPCError(f"RPC message denied (reply_stat={reply_stat})")
        dec.unpack_enum()  # verifier flavor
        dec.unpack_opaque(max_size=400)
        stat = AcceptStat(dec.unpack_enum())
        results = data[len(data) - dec.remaining :]
        return cls(xid=xid, stat=stat, results=results)
