"""A Sun-RPC-like remote procedure call layer.

NFS runs over ONC RPC with XDR serialization; this package reproduces the
pieces DisCFS needs:

* :mod:`repro.rpc.xdr` — XDR encoding/decoding (RFC 4506 subset),
* :mod:`repro.rpc.message` — call/reply framing with transaction ids and
  accept status codes,
* :mod:`repro.rpc.transport` — pluggable transports: in-process (fast,
  deterministic, used by most tests/benchmarks), TCP sockets with record
  marking (used by the distributed examples), and a latency-injecting
  wrapper that models the paper's 100 Mbps Ethernet for virtual-time
  accounting,
* :mod:`repro.rpc.server` / :mod:`repro.rpc.client` — program dispatch
  and call stubs.

The DisCFS security layer (``repro.ipsec``) wraps a transport, so every
byte of RPC traffic can be authenticated to the client's public key —
exactly how the prototype bound NFS requests to IKE identities.
"""

from repro.rpc.client import RPCClient
from repro.rpc.server import RPCProgram, RPCServer
from repro.rpc.transport import (
    InProcessTransport,
    LatencyModel,
    SimulatedLatencyTransport,
    TCPTransport,
    serve_tcp,
)
from repro.rpc.xdr import XDRDecoder, XDREncoder

__all__ = [
    "RPCClient",
    "RPCProgram",
    "RPCServer",
    "InProcessTransport",
    "TCPTransport",
    "SimulatedLatencyTransport",
    "LatencyModel",
    "serve_tcp",
    "XDREncoder",
    "XDRDecoder",
]
