"""Shared exception hierarchy for the DisCFS reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch at whatever granularity they need.  The NFS layer maps a
subset of these onto wire-level ``nfsstat`` codes (see ``repro.nfs.protocol``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Crypto
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class InvalidSignature(CryptoError):
    """A signature failed to verify."""


class InvalidKey(CryptoError):
    """A key is malformed, of the wrong type, or fails validation."""


# ---------------------------------------------------------------------------
# KeyNote
# ---------------------------------------------------------------------------

class KeyNoteError(ReproError):
    """Base class for KeyNote trust-management errors."""


class AssertionSyntaxError(KeyNoteError):
    """An assertion (policy or credential) could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        loc = ""
        if line is not None:
            loc = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(f"{message}{loc}")


class ExpressionError(KeyNoteError):
    """A condition expression failed to evaluate.

    Per RFC 2704 semantics most evaluation errors make a clause evaluate to
    the minimum compliance value rather than aborting the query; this
    exception is used internally and at API boundaries where strict mode is
    requested.
    """


class SignatureVerificationError(KeyNoteError):
    """A signed assertion's signature did not verify against its authorizer."""


# ---------------------------------------------------------------------------
# Filesystem
# ---------------------------------------------------------------------------

class FSError(ReproError):
    """Base class for local-filesystem errors.  Carries an errno name."""

    errno_name = "EIO"


class FileNotFound(FSError):
    errno_name = "ENOENT"


class FileExists(FSError):
    errno_name = "EEXIST"


class NotADirectory(FSError):
    errno_name = "ENOTDIR"


class IsADirectory(FSError):
    errno_name = "EISDIR"


class DirectoryNotEmpty(FSError):
    errno_name = "ENOTEMPTY"


class NoSpace(FSError):
    errno_name = "ENOSPC"


class PermissionDenied(FSError):
    errno_name = "EACCES"


class StaleHandle(FSError):
    """A file handle refers to a deleted or recycled inode."""

    errno_name = "ESTALE"


class InvalidArgument(FSError):
    errno_name = "EINVAL"


class NameTooLong(FSError):
    errno_name = "ENAMETOOLONG"


class ReadOnlyFilesystem(FSError):
    errno_name = "EROFS"


class StoreUnavailable(FSError):
    """A storage backend (remote node, replica child) cannot be reached."""

    errno_name = "EIO"


class QuorumError(StoreUnavailable):
    """Too few replicas answered to satisfy the read or write quorum."""


class AuthError(FSError):
    """A store session or operation was denied by policy.

    Deliberately *not* a :class:`StoreUnavailable`: a credential the
    server rejects is a caller problem, and ``replica://`` must not
    treat it as a down node and fail over around it.
    """

    errno_name = "EACCES"


class QuotaExceeded(FSError):
    """A tenant exceeded its block-count or byte-budget quota."""

    errno_name = "EDQUOT"


class RateLimited(FSError):
    """A tenant exceeded its token-bucket operation rate limit."""

    errno_name = "EBUSY"


# ---------------------------------------------------------------------------
# RPC / NFS / transport
# ---------------------------------------------------------------------------

class RPCError(ReproError):
    """Base class for RPC-level failures."""


class XDRError(RPCError):
    """Malformed XDR data."""


class TransportError(RPCError):
    """The underlying transport failed (connection closed, timeout...)."""


class ProcedureUnavailable(RPCError):
    """The server does not implement the requested program/procedure."""


class NFSError(ReproError):
    """Wire-level NFS error carrying an ``nfsstat`` code."""

    def __init__(self, status: int, message: str = ""):
        self.status = status
        super().__init__(message or f"NFS error status={status}")


# ---------------------------------------------------------------------------
# IPsec channel
# ---------------------------------------------------------------------------

class ChannelError(ReproError):
    """Base class for secure-channel errors."""


class HandshakeError(ChannelError):
    """IKE-style handshake failed (bad signature, replay, version...)."""


class IntegrityError(ChannelError):
    """A record failed its integrity check."""


class SAExpired(ChannelError):
    """The security association has exceeded its lifetime."""


# ---------------------------------------------------------------------------
# DisCFS core
# ---------------------------------------------------------------------------

class DisCFSError(ReproError):
    """Base class for DisCFS-specific errors."""


class AccessDenied(DisCFSError):
    """Policy evaluation denied the requested operation."""


class CredentialError(DisCFSError):
    """A credential is malformed, expired, revoked, or inapplicable."""


class RevokedError(CredentialError):
    """The credential or one of its keys has been revoked."""


class NotAttached(DisCFSError):
    """Operation requires an attached DisCFS mount."""
