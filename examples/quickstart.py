#!/usr/bin/env python3
"""Quickstart: a DisCFS server, one user, one credential.

Demonstrates the core loop of the paper in ~40 lines:

1. the administrator bootstraps a server (policy trusts only her key),
2. a user connects over the secure channel — identified purely by his
   public key, no account creation,
3. the attached directory shows permissions 000,
4. the administrator's credential (emailed, in the paper's story) is
   submitted, and the files appear.

Run:  python examples/quickstart.py [--backend URI]

``--backend`` picks the storage layer the server's filesystem lives on
(default ``mem://``; try ``sqlite:///tmp/quickstart.db`` or
``cached://shard://4``).
"""

import argparse

from repro.core import Administrator, DisCFSClient, DisCFSServer
from repro.core.admin import identity_of, make_user_keypair


def main(backend: str = "mem://") -> None:
    # --- server bootstrap (one-time administrator involvement) ---------
    admin = Administrator.generate(seed=b"quickstart-admin")
    server = DisCFSServer(admin_identity=admin.identity, backend=backend)
    admin.trust_server(server)
    print(f"server storage backend: {backend}")

    # Seed some content server-side.
    testdir = server.fs.mkdir(server.fs.root_ino, "testdir")
    server.fs.write_file("/testdir/hello.txt", b"hello from DisCFS\n")

    # --- a user, known only by his key ---------------------------------
    bob_key = make_user_keypair(b"quickstart-bob")
    credential = admin.grant_inode(
        identity_of(bob_key), testdir, rights="RWX",
        scheme=server.handle_scheme, subtree=True, comment="testdir",
    )
    print("credential issued by the administrator (first 3 lines):")
    print("\n".join(credential.splitlines()[:3])[:200], "...\n")

    # --- connect (IKE binds bob's key), attach, observe 000 ------------
    bob = DisCFSClient.connect(server, bob_key, secure=True)
    root = bob.attach("/testdir")
    print(f"permissions before credentials: {bob.getattr(root).permission_bits:03o}")

    # --- submit the credential; the directory comes alive --------------
    bob.submit_credential(credential)
    print(f"permissions after credentials:  {bob.getattr(root).permission_bits:03o}")
    print("listing:", [name for _ino, name in bob.readdir(root)])
    print("read:", bob.read_path("/hello.txt").decode().strip())

    # --- create a file; the server returns a creator credential --------
    fh, creator_cred = bob.create(root, "notes.txt")
    bob.write(fh, 0, b"bob's notes\n")
    print("creator credential received:", creator_cred is not None)
    print("wallet size:", len(bob.wallet))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="mem://", metavar="URI",
                        help="storage backend URI (default mem://)")
    main(parser.parse_args().backend)
