#!/usr/bin/env python3
"""Cross-domain sharing: the paper's motivating scenario (section 2).

Bob, a salesman, wants designated clients to see advance product
literature.  Traditionally this means accounts, passwords and sysadmin
tickets.  With DisCFS:

* the administrator delegated the /products subtree to Bob once;
* Bob issues each client a read-only credential himself (and emails it);
* clients are *external users* — the server has never heard of them;
* when a deal falls through, the administrator revokes that client's key
  (or Bob simply issues short-lived credentials that expire on their own).

Run:  python examples/cross_domain_sharing.py
"""

import time

from repro.core import Administrator, DisCFSClient, DisCFSServer
from repro.core.admin import identity_of, make_user_keypair
from repro.errors import ChannelError, NFSError


def main() -> None:
    admin = Administrator.generate(seed=b"corp-admin")
    server = DisCFSServer(admin_identity=admin.identity)
    admin.trust_server(server)

    products = server.fs.mkdir(server.fs.root_ino, "products")
    server.fs.write_file("/products/roadmap.pdf", b"%PDF confidential roadmap")
    server.fs.write_file("/products/specs.txt", b"model X: 42 units of awesome")

    # --- one-time delegation: admin -> Bob ------------------------------
    bob_key = make_user_keypair(b"salesman-bob")
    bob_cred = admin.grant_inode(
        identity_of(bob_key), products, rights="RWX",
        scheme=server.handle_scheme, subtree=True, comment="product literature",
    )
    bob = DisCFSClient.connect(server, bob_key, secure=True)
    bob.attach("/products")
    bob.submit_credential(bob_cred)
    print("Bob sees:", [n for _i, n in bob.readdir(bob.root)])

    # --- Bob invites three clients; no administrator involved ----------
    clients = {}
    for name in ("acme", "initech", "globex"):
        key = make_user_keypair(f"client-{name}".encode())
        # Read-only, expiring in one hour — Bob signs this himself.
        cred = bob.issuer.delegate(
            bob_cred, identity_of(key), rights="RX",
            expires_at=int(time.time()) + 3600,
        )
        client = DisCFSClient.connect(server, key, secure=True)
        client.attach("/products")
        client.submit_credential(cred)
        clients[name] = (client, key)
        print(f"client {name!r} reads:",
              client.read_path("/specs.txt").decode())

    # --- clients cannot write (RX only) --------------------------------
    acme, _ = clients["acme"]
    fh, _ = acme.walk("/specs.txt")
    try:
        acme.write(fh, 0, b"tampered")
        raise AssertionError("write should have been denied")
    except NFSError:
        print("acme's write attempt: denied (read-only credential)")

    # --- the globex deal collapses; admin revokes their key ------------
    globex, globex_key = clients["globex"]
    admin_client = DisCFSClient.connect(server, admin.key, secure=False)
    admin_client.attach("/")
    message = admin_client.nfs.revoke(f"key {identity_of(globex_key)}")
    print("revocation:", message)
    try:
        globex.read_path("/specs.txt")
        raise AssertionError("globex should be locked out")
    except (NFSError, ChannelError):
        # Key revocation tears down globex's security association too, so
        # the very next request dies at the channel layer.
        print("globex: locked out after key revocation (channel torn down)")

    # --- the others are untouched ---------------------------------------
    initech, _ = clients["initech"]
    assert initech.read_path("/roadmap.pdf").startswith(b"%PDF")
    print("initech: still reading fine — revocation is surgical")


if __name__ == "__main__":
    main()
