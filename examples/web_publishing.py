#!/usr/bin/env python3
"""Anonymous web-style publishing (the paper's future-work scenario).

Section 2 observes that "the commonly used information access model on
the Web is that browsers can download pages from Web servers without
prior registration (i.e., anonymously)", and section 7 lists "untrusted
users characteristic of the WWW" as future work.

The trust-management answer: a **guest principal**.  The server maps
unauthenticated requests to the opaque principal ``"GUEST"``; publishing
a directory is just issuing a read-only subtree credential to that name.
No accounts, no sessions, no anonymous-user table — the same compliance
check as everything else.

Run:  python examples/web_publishing.py
"""

from repro.core import Administrator, DisCFSClient, DisCFSServer
from repro.core.admin import identity_of, make_user_keypair
from repro.errors import NFSError
from repro.nfs.client import NFSClient
from repro.nfs.mount import MountClient


def main() -> None:
    admin = Administrator.generate(seed=b"webmaster")
    server = DisCFSServer(admin_identity=admin.identity,
                          guest_principal="GUEST")
    admin.trust_server(server)

    www = server.fs.mkdir(server.fs.root_ino, "www")
    server.fs.write_file("/www/index.html", b"<h1>DisCFS project page</h1>")
    server.fs.write_file("/www/paper.pdf", b"%PDF-1.4 the discfs paper")
    drafts = server.fs.mkdir(server.fs.root_ino, "drafts")
    server.fs.write_file("/drafts/rebuttal.txt", b"not for the public yet")

    # "Publishing" = one credential to the guest name.
    server.accept_credential(admin.grant_inode(
        "GUEST", www, rights="RX", scheme=server.handle_scheme,
        subtree=True, comment="world-readable web root",
    ))
    print("published /www to principal GUEST\n")

    # --- an anonymous visitor: no key, no registration -----------------
    transport = server.in_process_transport(identity=None)
    visitor = NFSClient(transport, MountClient(transport).mount("/www"))
    print("anonymous visitor lists /www:",
          [n for _i, n in visitor.readdir_all(visitor.root)
           if n not in (".", "..")])
    fh, attr = visitor.lookup(visitor.root, "index.html")
    print("anonymous visitor reads:", visitor.read(fh, 0, attr.size).decode())

    for attempt, action in (
        ("write index.html", lambda: visitor.write(fh, 0, b"defaced")),
        ("create spam.html", lambda: visitor.create(visitor.root, "spam.html")),
    ):
        try:
            action()
            raise AssertionError("should be denied")
        except NFSError:
            print(f"anonymous visitor tries to {attempt}: denied")

    # The drafts directory is invisible to guests...
    t2 = server.in_process_transport(identity=None)
    snoop = NFSClient(t2, MountClient(t2).mount("/drafts"))
    try:
        snoop.readdir_all(snoop.root)
        raise AssertionError("should be denied")
    except NFSError:
        print("anonymous visitor tries /drafts: denied")

    # ...but the editor (a real key) works there as usual.
    editor_key = make_user_keypair(b"editor")
    cred = admin.grant_inode(identity_of(editor_key), drafts, rights="RWX",
                             scheme=server.handle_scheme, subtree=True)
    editor = DisCFSClient.connect(server, editor_key, secure=True)
    editor.attach("/drafts")
    editor.submit_credential(cred)
    print("editor reads drafts:", editor.read_path("/rebuttal.txt").decode())
    print("\nanonymity for readers, keys for writers — one mechanism.")


if __name__ == "__main__":
    main()
