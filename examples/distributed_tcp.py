#!/usr/bin/env python3
"""The full distributed configuration: DisCFS over ESP records over TCP.

Reproduces the paper's deployment picture (Figures 2-4) with a real
socket between "Bob" (client host) and "Alice" (server host):

    DisCFS client -> ESP channel -> TCP -> ESP channel -> NFS+KeyNote

Everything on the wire is an encrypted, MACed record; the server
attributes each request to the public key proven in the IKE handshake.

Run:  python examples/distributed_tcp.py
"""

from repro.core import Administrator, DisCFSClient, DisCFSServer
from repro.core.admin import identity_of, make_user_keypair
from repro.ipsec.channel import SecureTransport
from repro.ipsec.ike import IKEInitiator
from repro.rpc.transport import TCPTransport, serve_tcp


def main() -> None:
    # --- "Alice", the server host ---------------------------------------
    admin = Administrator.generate(seed=b"alice-admin")
    server = DisCFSServer(admin_identity=admin.identity)
    admin.trust_server(server)
    share = server.fs.mkdir(server.fs.root_ino, "share")
    server.fs.write_file("/share/dataset.csv", b"id,value\n1,42\n2,17\n")

    tcp = serve_tcp(server.secure_channel().handle)
    host, port = tcp.address
    print(f"server listening on {host}:{port}")

    # --- "Bob", the client host -----------------------------------------
    bob_key = make_user_keypair(b"bob-workstation")
    credential = admin.grant_inode(
        identity_of(bob_key), share, rights="RWX",
        scheme=server.handle_scheme, subtree=True,
    )

    raw = TCPTransport(host, port)
    transport = SecureTransport(raw, IKEInitiator(bob_key))
    sa = transport.handshake()
    print(f"IKE complete: SPI={sa.spi:#010x}, "
          f"server key fingerprint {sa.peer_identity[8:24]}...")

    bob = DisCFSClient(transport, bob_key)
    bob.attach("/share")
    bob.submit_credential(credential)

    print("read over the wire:", bob.read_path("/dataset.csv").decode().strip())

    fh, _cred = bob.create(bob.root, "results.txt")
    bob.write(fh, 0, b"processed 2 rows\n")
    print("wrote results back; server sees:",
          server.fs.read_file("/share/results.txt").decode().strip())

    print(f"RPC payload bytes sent={transport.stats.bytes_sent}, "
          f"received={transport.stats.bytes_received} "
          f"(all encrypted + MACed on the wire)")

    bob.close()
    tcp.close()


if __name__ == "__main__":
    main()
